#ifndef PIPES_SWEEPAREA_MULTIWAY_JOIN_H_
#define PIPES_SWEEPAREA_MULTIWAY_JOIN_H_

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/core/ordered_buffer.h"
#include "src/core/port.h"
#include "src/core/source.h"
#include "src/sweeparea/hash_sweep_area.h"

/// \file
/// Multi-way symmetric join (MJoin, after Viglas/Naughton/Burger):
/// n > 2 streams joined in one operator instead of a binary-join tree. Each
/// arriving element probes the other n-1 SweepAreas, cheapest (smallest)
/// first, extending partial results; no intermediate state is materialized
/// between probes, maximizing output rate for streaming inputs.

namespace pipes::sweeparea {

/// Equi-join of `n` same-typed streams on `key_fn`. The output payload is a
/// vector with one payload per input, indexed by input position; the output
/// interval is the intersection of all n validity intervals.
template <typename T, typename KeyFn>
class MultiwayJoin : public Source<std::vector<T>>, public PortOwner<T> {
 public:
  MultiwayJoin(std::size_t n, KeyFn key_fn, std::string name = "mjoin")
      : Source<std::vector<T>>(std::move(name)), key_fn_(key_fn) {
    PIPES_CHECK_MSG(n >= 2, "MultiwayJoin needs at least two inputs");
    ports_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ports_.push_back(std::make_unique<InputPort<T>>(
          this, this, static_cast<int>(i)));
      areas_.emplace_back(key_fn_, key_fn_);
    }
  }

  std::size_t num_inputs() const { return ports_.size(); }

  InputPort<T>& input(std::size_t i) {
    PIPES_CHECK(i < ports_.size());
    return *ports_[i];
  }

  std::size_t state_size() const {
    std::size_t total = 0;
    for (const auto& area : areas_) total += area.size();
    return total;
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kOperator;
    d.op = "multiway-join";
    d.port_upstreams.reserve(ports_.size());
    for (const auto& port : ports_) {
      d.port_upstreams.push_back(port->num_upstreams());
    }
    d.blocking = true;
    // Each input element is inserted into its own SweepArea exactly once.
    d.dataflow.state_bytes_per_element = sizeof(T) + 48;
    d.dataflow.output_per_pair = true;
    d.dataflow.intersects_validity = true;
    return d;
  }

 protected:
  void PortElement(int port_id, const StreamElement<T>& e) override {
    const auto origin = static_cast<std::size_t>(port_id);
    // Probe order: remaining inputs by ascending SweepArea size — the
    // cheapest probe first prunes candidate combinations earliest.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < areas_.size(); ++i) {
      if (i != origin) order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return areas_[a].size() < areas_[b].size();
    });

    std::vector<const StreamElement<T>*> partial(areas_.size(), nullptr);
    ExtendProbe(e, origin, order, 0, e.interval, partial);
    areas_[origin].Insert(e);
    Flush();
  }

  void PortProgress(int /*port_id*/, Timestamp /*watermark*/) override {
    // An element in area i is dead once its validity ends before every
    // other input's future elements.
    for (std::size_t i = 0; i < areas_.size(); ++i) {
      areas_[i].PurgeBefore(MinWatermarkExcept(i));
    }
    Flush();
  }

  void PortDone(int /*port_id*/) override {
    if (AllDone()) {
      staged_.FlushAll([this](const StreamElement<std::vector<T>>& out) {
        this->Transfer(out);
      });
      this->TransferDone();
    } else {
      PortProgress(0, 0);
    }
  }

 private:
  using Area = HashSweepArea<T, T, KeyFn, KeyFn>;

  /// Depth-first extension of the partial combination: probe the SweepArea
  /// of `order[depth]` with the original element's key and the accumulated
  /// interval; a full assignment emits one result.
  void ExtendProbe(const StreamElement<T>& origin_element,
                   std::size_t origin, const std::vector<std::size_t>& order,
                   std::size_t depth, TimeInterval accumulated,
                   std::vector<const StreamElement<T>*>& partial) {
    if (depth == order.size()) {
      std::vector<T> payloads;
      payloads.reserve(areas_.size());
      for (std::size_t i = 0; i < areas_.size(); ++i) {
        payloads.push_back(i == origin ? origin_element.payload
                                       : partial[i]->payload);
      }
      staged_.Push(
          StreamElement<std::vector<T>>(std::move(payloads), accumulated));
      return;
    }
    const std::size_t target = order[depth];
    const StreamElement<T> probe(origin_element.payload, accumulated);
    areas_[target].Query(probe, [&](const StreamElement<T>& match) {
      partial[target] = &match;
      ExtendProbe(origin_element, origin, order, depth + 1,
                  accumulated.Intersect(match.interval), partial);
      partial[target] = nullptr;
    });
  }

  Timestamp MinWatermark() const {
    Timestamp w = kMaxTimestamp;
    for (const auto& port : ports_) w = std::min(w, port->watermark());
    return w;
  }

  Timestamp MinWatermarkExcept(std::size_t skip) const {
    Timestamp w = kMaxTimestamp;
    for (std::size_t i = 0; i < ports_.size(); ++i) {
      if (i != skip) w = std::min(w, ports_[i]->watermark());
    }
    return w;
  }

  bool AllDone() const {
    for (const auto& port : ports_) {
      if (!port->done()) return false;
    }
    return true;
  }

  void Flush() {
    const Timestamp w = MinWatermark();
    staged_.FlushUpTo(w, [this](const StreamElement<std::vector<T>>& out) {
      this->Transfer(out);
    });
    if (w < kMaxTimestamp) {
      this->TransferHeartbeat(w);
    }
  }

  KeyFn key_fn_;
  std::vector<std::unique_ptr<InputPort<T>>> ports_;
  std::vector<Area> areas_;
  OrderedOutputBuffer<std::vector<T>> staged_;
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_MULTIWAY_JOIN_H_
