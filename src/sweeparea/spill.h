#ifndef PIPES_SWEEPAREA_SPILL_H_
#define PIPES_SWEEPAREA_SPILL_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/cursors/cursor.h"

/// \file
/// External-memory tier for SweepArea state (TPIE-style pipelining): cold
/// state is written to disk as *sequential sorted runs* — one file per run,
/// written once front-to-back, columns stored contiguously so spill rides
/// the same SoA representation as the executor's zero-copy path (DESIGN.md
/// §4f/§4h). Reads are page-granular (three seeks per page, never one per
/// item) and merge-reads across runs go through the demand-driven cursor
/// algebra (`cursors::Cursor`), so downstream consumers cannot tell spilled
/// state from resident state.
///
/// Crash safety: every spill file is unlinked immediately after creation
/// (POSIX unlink-after-open). The data stays reachable through the open
/// handle, and the OS reclaims the space the moment the process exits —
/// cleanly or by crash. There is nothing to garbage-collect on restart.

namespace pipes::sweeparea {

/// Serialization policy for spilled payloads. The default raw-copy format
/// requires trivially copyable payloads; specialize for payload types with
/// external allocations (none of the built-in workloads need it).
template <typename T>
struct SpillTraits {
  static constexpr bool kSpillable = std::is_trivially_copyable_v<T>;
};

/// Directory for spill files: $PIPES_SPILL_DIR, then $TMPDIR, then /tmp.
inline std::string DefaultSpillDir() {
  if (const char* dir = std::getenv("PIPES_SPILL_DIR")) return dir;
  if (const char* dir = std::getenv("TMPDIR")) return dir;
  return "/tmp";
}

/// Knobs for a spillable SweepArea.
struct SpillOptions {
  /// Where run files are created (and immediately unlinked).
  std::string dir = DefaultSpillDir();
  /// Fraction of resident elements kept (the newest ones) when cold state
  /// is paged out; the oldest 1 - keep_fraction go to disk.
  double keep_fraction = 0.5;
};

/// An anonymous on-disk scratch file. The path is removed right after the
/// file is opened, so the only reference is the open handle: a crash (or
/// plain process exit) reclaims the space with no cleanup pass.
class SpillFile {
 public:
  explicit SpillFile(const std::string& dir) {
    static std::atomic<std::uint64_t> counter{0};
#if defined(__unix__) || defined(__APPLE__)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    path_ = dir + "/pipes-spill-" + std::to_string(pid) + "-" +
            std::to_string(counter.fetch_add(1, std::memory_order_relaxed)) +
            ".run";
    file_ = std::fopen(path_.c_str(), "wb+");
    PIPES_CHECK(file_ != nullptr);
    // Unlink-after-open: from here on the file exists only via `file_`.
    std::remove(path_.c_str());
  }

  ~SpillFile() {
    if (file_ != nullptr) std::fclose(file_);
  }

  SpillFile(SpillFile&& other) noexcept
      : file_(other.file_), path_(std::move(other.path_)) {
    other.file_ = nullptr;
  }
  SpillFile& operator=(SpillFile&&) = delete;
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  std::FILE* handle() const { return file_; }

  /// The (already removed) path — useful only for asserting in tests that
  /// the name really is gone from the filesystem.
  const std::string& unlinked_path() const { return path_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

/// One sorted run on disk: `count` elements ordered by non-decreasing
/// start, stored column-wise (all starts, then all ends, then all payloads)
/// exactly like a `ColumnarRun<T>` laid flat. Written once, sequentially.
///
/// The run keeps enough metadata in RAM (count, min start, max end, epoch)
/// that reorganization can drop a whole dead run without reading it.
template <typename T>
class SpilledRun {
 public:
  static_assert(SpillTraits<T>::kSpillable,
                "payload type is not trivially copyable; specialize "
                "pipes::sweeparea::SpillTraits to spill it");

  /// Writes `run` (sorted by start) as one sequential pass. `seq` is the
  /// monotone epoch assigned by the owning area.
  SpilledRun(const ColumnarRun<T>& run, std::uint64_t seq,
             const std::string& dir)
      : file_(dir), seq_(seq), count_(run.size()) {
    PIPES_CHECK(count_ > 0);
    min_start_ = run.starts.front();
    max_end_ = *std::max_element(run.ends.begin(), run.ends.end());
    std::FILE* f = file_.handle();
    PIPES_CHECK(std::fwrite(run.starts.data(), sizeof(Timestamp), count_, f) ==
                count_);
    PIPES_CHECK(std::fwrite(run.ends.data(), sizeof(Timestamp), count_, f) ==
                count_);
    PIPES_CHECK(std::fwrite(run.payloads.data(), sizeof(T), count_, f) ==
                count_);
    std::fflush(f);
  }

  std::size_t size() const { return count_; }
  std::uint64_t seq() const { return seq_; }
  Timestamp min_start() const { return min_start_; }
  /// Exclusive upper bound of every element's validity: once a watermark
  /// passes this, the whole run is dead and can be deleted unread.
  Timestamp max_end() const { return max_end_; }
  std::size_t bytes() const { return count_ * (2 * sizeof(Timestamp) + sizeof(T)); }

  const SpillFile& file() const { return file_; }

  /// Column base offsets inside the file.
  long starts_offset() const { return 0; }
  long ends_offset() const { return static_cast<long>(count_ * sizeof(Timestamp)); }
  long payloads_offset() const {
    return static_cast<long>(count_ * 2 * sizeof(Timestamp));
  }

 private:
  SpillFile file_;
  std::uint64_t seq_;
  std::size_t count_;
  Timestamp min_start_ = 0;
  Timestamp max_end_ = 0;
};

/// Streams one run back in start order. Page-buffered: each refill does
/// three seeks (one per column) and three bulk reads of `kPageElements`,
/// never a per-item seek. At most one reader per run may be open at a time
/// (readers share the run's file handle).
template <typename T>
class RunReader : public cursors::Cursor<StreamElement<T>> {
 public:
  static constexpr std::size_t kPageElements = 1024;

  explicit RunReader(const SpilledRun<T>& run) : run_(&run) {}

  std::optional<StreamElement<T>> Next() override {
    if (page_pos_ >= page_.size() && !LoadPage()) return std::nullopt;
    return page_.ElementAt(page_pos_++);
  }

 private:
  bool LoadPage() {
    if (next_ >= run_->size()) return false;
    const std::size_t n = std::min(kPageElements, run_->size() - next_);
    page_.starts.resize(n);
    page_.ends.resize(n);
    page_.payloads.resize(n);
    std::FILE* f = run_->file().handle();
    const long at = static_cast<long>(next_);
    PIPES_CHECK(std::fseek(f, run_->starts_offset() +
                                  at * static_cast<long>(sizeof(Timestamp)),
                           SEEK_SET) == 0);
    PIPES_CHECK(std::fread(page_.starts.data(), sizeof(Timestamp), n, f) == n);
    PIPES_CHECK(std::fseek(f, run_->ends_offset() +
                                  at * static_cast<long>(sizeof(Timestamp)),
                           SEEK_SET) == 0);
    PIPES_CHECK(std::fread(page_.ends.data(), sizeof(Timestamp), n, f) == n);
    PIPES_CHECK(std::fseek(f, run_->payloads_offset() +
                                  at * static_cast<long>(sizeof(T)),
                           SEEK_SET) == 0);
    PIPES_CHECK(std::fread(page_.payloads.data(), sizeof(T), n, f) == n);
    next_ += n;
    page_pos_ = 0;
    return true;
  }

  const SpilledRun<T>* run_;
  std::size_t next_ = 0;
  ColumnarRun<T> page_;
  std::size_t page_pos_ = 0;
};

/// An element read back from disk, tagged with the epoch of the run it
/// came from — pending probes use the epoch to match exactly the runs that
/// existed when they were staged.
template <typename T>
struct SpillScanItem {
  StreamElement<T> element;
  std::uint64_t run_seq = 0;
};

/// Streamed k-way merge over a set of runs: yields all spilled elements in
/// global (start, run epoch) order through a single `Next()` interface.
/// Each underlying run is still read strictly sequentially; the merge heap
/// holds one element per run.
template <typename T>
class MergedRunCursor : public cursors::Cursor<SpillScanItem<T>> {
 public:
  explicit MergedRunCursor(const std::vector<const SpilledRun<T>*>& runs) {
    readers_.reserve(runs.size());
    for (const SpilledRun<T>* run : runs) {
      readers_.push_back(
          Source{std::make_unique<RunReader<T>>(*run), run->seq()});
    }
    for (std::size_t i = 0; i < readers_.size(); ++i) Refill(i);
  }

  std::optional<SpillScanItem<T>> Next() override {
    if (heap_.empty()) return std::nullopt;
    Entry top = heap_.top();
    heap_.pop();
    Refill(top.source);
    return SpillScanItem<T>{std::move(top.element), top.seq};
  }

 private:
  struct Source {
    std::unique_ptr<RunReader<T>> reader;
    std::uint64_t seq;
  };
  struct Entry {
    Timestamp start;
    std::uint64_t seq;
    std::size_t source;
    StreamElement<T> element;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.start != b.start ? a.start > b.start : a.seq > b.seq;
    }
  };

  void Refill(std::size_t source) {
    if (auto e = readers_[source].reader->Next()) {
      heap_.push(Entry{e->start(), readers_[source].seq, source,
                       std::move(*e)});
    }
  }

  std::vector<Source> readers_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_SPILL_H_
