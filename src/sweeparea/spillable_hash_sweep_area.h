#ifndef PIPES_SWEEPAREA_SPILLABLE_HASH_SWEEP_AREA_H_
#define PIPES_SWEEPAREA_SPILLABLE_HASH_SWEEP_AREA_H_

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/sweeparea/spill.h"
#include "src/sweeparea/sweep_area.h"

/// \file
/// Hash SweepArea with a lossless external-memory tier. The resident (hot)
/// portion is the familiar bucketed hash area; when the owner demands bytes
/// back, the *oldest* elements page out to disk as one sequential sorted
/// run (`spill.h`), never losing state. Probes match the resident portion
/// immediately; probes that could also match spilled state are *staged* as
/// pending probes and answered later in one streamed merge over the runs —
/// deferred, batched, and still exactly-once:
///
///   - Every run carries a monotone epoch `seq`. A pending probe staged at
///     epoch E matches only runs with `seq < E` — exactly the runs that
///     existed when the probe ran against the resident portion. Elements
///     that page out *after* the probe was staged land in runs with
///     `seq >= E`, which the probe skips: it already saw them while they
///     were resident. Elements that *arrive* after the probe find it via
///     their own symmetric probe (the ripple-join invariant: each pair is
///     matched by whichever side arrives second).
///   - The owner must drain pending probes (`ServicePendingProbes`) before
///     purging past the minimum pending start and before emitting output
///     beyond it; `MinPendingStart()` is the fence.
///
/// RAM accounting (`ApproxBytes`) covers the hot portion plus staged
/// probes; disk accounting (`SpilledBytes`) is separate, so a memory
/// manager can arbitrate the two tiers independently (docs/memory.md).
namespace pipes::sweeparea {

template <typename Stored, typename Probe, typename KeyS, typename KeyP,
          typename Residual = TruePredicate>
class SpillableHashSweepArea {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyS, const Stored&>>;

  static constexpr bool kKeyedEquiProbe = true;
  /// Descriptor tag: this area can page state to disk losslessly, so
  /// shedding is never required for bounded memory (lint rule P020).
  static constexpr bool kSpillable = true;
  static constexpr const char* kAreaName = "spill-hash";

  SpillableHashSweepArea(KeyS key_stored, KeyP key_probe,
                         Residual residual = Residual(),
                         SpillOptions options = SpillOptions())
      : key_stored_(std::move(key_stored)),
        key_probe_(std::move(key_probe)),
        residual_(std::move(residual)),
        options_(std::move(options)) {}

  // --- Hot-path SweepArea interface ----------------------------------------

  void Insert(const StreamElement<Stored>& element) {
    hot_bytes_ += ApproxPayloadBytes(element.payload) + kPerElementOverheadBytes;
    Key key = key_stored_(element.payload);
    expiry_.push(Expiry{element.end(), key});
    buckets_[std::move(key)].push_back(element);
    ++hot_count_;
  }

  /// Probes the resident portion immediately; if any spilled run's time
  /// range overlaps the probe, also stages the probe for deferred service.
  template <typename Emit>
  void Query(const StreamElement<Probe>& probe, Emit&& emit) {
    QueryHot(probe.payload, probe.interval,
             [&](const StreamElement<Stored>& s) { emit(s); });
    MaybeStagePending(probe);
  }

  void InsertRun(const ColumnarRun<Stored>& run) {
    for (std::size_t i = 0; i < run.size(); ++i) Insert(run.ElementAt(i));
  }

  template <typename Emit>
  void QueryRun(const ColumnarRun<Probe>& run, Emit&& emit) {
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TimeInterval iv(run.starts[i], run.ends[i]);
      QueryHot(run.payloads[i], iv,
               [&](const StreamElement<Stored>& s) { emit(i, s); });
      if (AnyRunOverlaps(iv)) {
        StagePending(StreamElement<Probe>(run.payloads[i], iv));
      }
    }
  }

  /// Reorganization: purges expired resident elements one heap pop at a
  /// time, and deletes whole runs whose `max_end` the watermark passed —
  /// without reading them. Elements inside a surviving run whose validity
  /// already ended are expired lazily (interval checks keep them from
  /// matching; their bytes are reclaimed when the run dies).
  ///
  /// Contract: the owner must have serviced pending probes whose start is
  /// below `t` (they may need runs this call deletes).
  std::size_t PurgeBefore(Timestamp t) {
    std::size_t removed = PurgeHotBefore(t);
    for (auto it = runs_.begin(); it != runs_.end();) {
      if ((*it)->max_end() <= t) {
        PIPES_DCHECK(pending_.empty() || MinPendingStart() >= t);
        spilled_bytes_ -= (*it)->bytes();
        spilled_count_ -= (*it)->size();
        removed += (*it)->size();
        it = runs_.erase(it);
      } else {
        ++it;
      }
    }
    return removed;
  }

  /// Load shedding (opt-in fallback): evicts one resident element from the
  /// largest bucket. Spilled state is never shed — rewriting a run to drop
  /// elements would cost more than it frees.
  bool EvictOne(StreamElement<Stored>* evicted = nullptr) {
    if (buckets_.empty()) return false;
    auto victim = buckets_.begin();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (it->second.size() > victim->second.size()) victim = it;
    }
    auto& bucket = victim->second;
    hot_bytes_ -= ApproxPayloadBytes(bucket.front().payload) +
                  kPerElementOverheadBytes;
    if (evicted != nullptr) *evicted = std::move(bucket.front());
    bucket.pop_front();
    --hot_count_;
    if (bucket.empty()) buckets_.erase(victim);
    return true;
  }

  /// All stored elements, resident and spilled.
  std::size_t size() const { return hot_count_ + spilled_count_; }

  /// RAM footprint only: resident elements plus staged pending probes.
  /// Disk bytes are reported separately via `SpilledBytes()`.
  std::size_t ApproxBytes() const { return hot_bytes_ + pending_bytes_; }

  // --- Spill tier ----------------------------------------------------------

  /// Pages the oldest `1 - keep_fraction` of the resident elements to disk
  /// as one sequential sorted run. Returns the RAM bytes freed (0 when
  /// there is nothing to spill).
  std::size_t SpillColdest() {
    if (hot_count_ == 0) return 0;
    // Flatten the hot portion in start order; arrival order is already
    // non-decreasing by start, but buckets interleave, so sort explicitly.
    std::vector<StreamElement<Stored>> all;
    all.reserve(hot_count_);
    for (auto& [key, bucket] : buckets_) {
      for (auto& e : bucket) all.push_back(std::move(e));
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const StreamElement<Stored>& a,
                        const StreamElement<Stored>& b) {
                       return a.start() < b.start();
                     });
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(all.size()) * options_.keep_fraction);
    const std::size_t spill_n = all.size() - std::min(keep, all.size() - 1);
    ColumnarRun<Stored> run;
    run.reserve(spill_n);
    for (std::size_t i = 0; i < spill_n; ++i) run.Append(std::move(all[i]));
    runs_.push_back(std::make_unique<SpilledRun<Stored>>(
        run, next_seq_++, options_.dir));
    spilled_bytes_ += runs_.back()->bytes();
    spilled_count_ += spill_n;
    // Rebuild the hot portion from the survivors.
    const std::size_t before = hot_bytes_;
    buckets_.clear();
    expiry_ = {};
    hot_count_ = 0;
    hot_bytes_ = 0;
    for (std::size_t i = spill_n; i < all.size(); ++i) Insert(all[i]);
    return before - hot_bytes_;
  }

  /// Answers every staged probe in one streamed k-way merge over the runs
  /// that existed when each probe was staged. `emit(probe, stored)` fires
  /// per match; order is arbitrary (the join's ordered staging buffer
  /// restores output order). Clears the pending set.
  template <typename Emit>
  void ServicePendingProbes(Emit&& emit) {
    if (pending_.empty()) return;
    if (!runs_.empty()) {
      Timestamp lo = kMaxTimestamp;
      Timestamp hi = kMinTimestamp;
      for (const Pending& p : pending_) {
        lo = std::min(lo, p.probe.start());
        hi = std::max(hi, p.probe.end());
      }
      std::unordered_map<Key, std::vector<const Pending*>> by_key;
      by_key.reserve(pending_.size());
      for (const Pending& p : pending_) {
        by_key[key_probe_(p.probe.payload)].push_back(&p);
      }
      std::vector<const SpilledRun<Stored>*> overlapping;
      for (const auto& run : runs_) {
        if (run->min_start() < hi && lo < run->max_end()) {
          overlapping.push_back(run.get());
        }
      }
      MergedRunCursor<Stored> merge(overlapping);
      while (auto item = merge.Next()) {
        auto it = by_key.find(key_stored_(item->element.payload));
        if (it == by_key.end()) continue;
        for (const Pending* p : it->second) {
          if (item->run_seq < p->epoch &&
              item->element.interval.Overlaps(p->probe.interval) &&
              residual_(item->element.payload, p->probe.payload)) {
            emit(p->probe, item->element);
          }
        }
      }
    }
    pending_.clear();
    pending_bytes_ = 0;
  }

  bool HasPendingProbes() const { return !pending_.empty(); }

  /// Fence for the owner: no output beyond this timestamp may be released
  /// and no purge past it may run until pending probes are serviced.
  /// `kMaxTimestamp` when no probes are staged.
  Timestamp MinPendingStart() const {
    // Probes arrive in stream order (non-decreasing start), so the oldest
    // staged probe is the front.
    return pending_.empty() ? kMaxTimestamp : pending_.front().probe.start();
  }

  std::size_t HotBytes() const { return hot_bytes_; }
  std::size_t PendingBytes() const { return pending_bytes_; }
  std::size_t SpilledBytes() const { return spilled_bytes_; }
  std::size_t SpilledRunCount() const { return runs_.size(); }
  std::size_t hot_size() const { return hot_count_; }
  std::size_t spilled_size() const { return spilled_count_; }

 private:
  struct Expiry {
    Timestamp end;
    Key key;
  };
  struct LaterExpiry {
    bool operator()(const Expiry& a, const Expiry& b) const {
      return a.end > b.end;
    }
  };
  struct Pending {
    StreamElement<Probe> probe;
    /// Number of runs written when this probe was staged; the probe
    /// matches exactly the runs with `seq < epoch`.
    std::uint64_t epoch;
  };

  template <typename Emit>
  void QueryHot(const Probe& payload, const TimeInterval& iv,
                Emit&& emit) const {
    auto it = buckets_.find(key_probe_(payload));
    if (it == buckets_.end()) return;
    for (const StreamElement<Stored>& stored : it->second) {
      if (stored.interval.Overlaps(iv) && residual_(stored.payload, payload)) {
        emit(stored);
      }
    }
  }

  bool AnyRunOverlaps(const TimeInterval& iv) const {
    for (const auto& run : runs_) {
      if (run->min_start() < iv.end && iv.start < run->max_end()) return true;
    }
    return false;
  }

  void MaybeStagePending(const StreamElement<Probe>& probe) {
    if (AnyRunOverlaps(probe.interval)) StagePending(probe);
  }

  void StagePending(StreamElement<Probe> probe) {
    pending_bytes_ +=
        ApproxPayloadBytes(probe.payload) + kPerElementOverheadBytes;
    pending_.push_back(Pending{std::move(probe), next_seq_});
  }

  std::size_t PurgeHotBefore(Timestamp t) {
    std::size_t removed = 0;
    while (!expiry_.empty() && expiry_.top().end <= t) {
      const Key key = expiry_.top().key;
      expiry_.pop();
      auto bucket_it = buckets_.find(key);
      if (bucket_it == buckets_.end()) continue;  // spilled or shed
      auto& bucket = bucket_it->second;
      for (auto it = bucket.begin(); it != bucket.end(); ++it) {
        if (it->end() <= t) {
          hot_bytes_ -=
              ApproxPayloadBytes(it->payload) + kPerElementOverheadBytes;
          bucket.erase(it);
          ++removed;
          --hot_count_;
          break;
        }
      }
      if (bucket.empty()) buckets_.erase(bucket_it);
    }
    return removed;
  }

  KeyS key_stored_;
  KeyP key_probe_;
  Residual residual_;
  SpillOptions options_;

  // Hot (resident) portion — mirrors HashSweepArea.
  std::unordered_map<Key, std::deque<StreamElement<Stored>>> buckets_;
  std::priority_queue<Expiry, std::vector<Expiry>, LaterExpiry> expiry_;
  std::size_t hot_count_ = 0;
  std::size_t hot_bytes_ = 0;

  // Cold (spilled) tier.
  std::vector<std::unique_ptr<SpilledRun<Stored>>> runs_;
  std::uint64_t next_seq_ = 0;
  std::size_t spilled_bytes_ = 0;
  std::size_t spilled_count_ = 0;

  // Probes awaiting deferred service against the cold tier.
  std::deque<Pending> pending_;
  std::size_t pending_bytes_ = 0;
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_SPILLABLE_HASH_SWEEP_AREA_H_
