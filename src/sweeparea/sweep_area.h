#ifndef PIPES_SWEEPAREA_SWEEP_AREA_H_
#define PIPES_SWEEPAREA_SWEEP_AREA_H_

#include <cstddef>

/// \file
/// SweepAreas: status-aware data structures that hold the live portion of a
/// stream for join processing, "providing efficient support for insertion,
/// retrieval and reorganization" (the paper, after [Cammert et al.] and the
/// generalized ripple join of Haas/Hellerstein). A temporal join keeps one
/// SweepArea per input; arriving elements probe the opposite area and are
/// inserted into their own. Reorganization = purging elements whose
/// validity ended before the opposite input's watermark.
///
/// SweepAreas are compile-time exchangeable: `TemporalJoin` is a template
/// over the two SweepArea types (the paper's "join parameterized by
/// exchangeable SweepAreas"). Every implementation provides:
///
///   void Insert(const StreamElement<Stored>&);
///   template <typename Emit>
///   void Query(const StreamElement<Probe>&, Emit&& emit) const;
///       // emit(const StreamElement<Stored>&) for every stored element
///       // whose interval overlaps the probe's and whose payload matches
///   std::size_t PurgeBefore(Timestamp t);   // drop elements with end <= t
///   bool EvictOne(StreamElement<Stored>* evicted);  // load shedding
///   std::size_t size() const;
///   std::size_t ApproxBytes() const;
///
/// This header holds the shared helpers.

namespace pipes::sweeparea {

/// Default payload size estimate for memory accounting. Overload (in
/// namespace pipes::sweeparea) for payloads with external allocations.
template <typename T>
std::size_t ApproxPayloadBytes(const T& /*payload*/) {
  return sizeof(T);
}

/// Fixed per-element bookkeeping overhead assumed by all SweepAreas
/// (container node + interval).
inline constexpr std::size_t kPerElementOverheadBytes = 48;

/// Predicate that accepts every payload pair; the default residual
/// predicate of key-based SweepAreas.
struct TruePredicate {
  template <typename A, typename B>
  bool operator()(const A&, const B&) const {
    return true;
  }
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_SWEEP_AREA_H_
