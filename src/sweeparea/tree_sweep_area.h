#ifndef PIPES_SWEEPAREA_TREE_SWEEP_AREA_H_
#define PIPES_SWEEPAREA_TREE_SWEEP_AREA_H_

#include <algorithm>
#include <map>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/sweeparea/sweep_area.h"

/// \file
/// Ordered (tree-based) SweepArea for band and range joins: stored elements
/// are kept in a multimap over their key; a probe supplies an inclusive key
/// range [lo, hi] and only that range is scanned. The tailored SweepArea
/// for the window band joins of Kang/Naughton/Viglas.

namespace pipes::sweeparea {

/// `KeyS(stored_payload)` gives the stored ordering key;
/// `RangeP(probe_payload)` gives the inclusive probe range as a
/// `std::pair<Key, Key>`.
template <typename Stored, typename Probe, typename KeyS, typename RangeP,
          typename Residual = TruePredicate>
class TreeSweepArea {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyS, const Stored&>>;

  /// Descriptor tag: probes hit a key *range* (band joins), which crosses
  /// hash-partition boundaries, so tree-area joins must not be
  /// key-replicated.
  static constexpr bool kKeyedEquiProbe = false;
  static constexpr const char* kAreaName = "tree";

  TreeSweepArea(KeyS key_stored, RangeP range_probe,
                Residual residual = Residual())
      : key_stored_(std::move(key_stored)),
        range_probe_(std::move(range_probe)),
        residual_(std::move(residual)) {}

  void Insert(const StreamElement<Stored>& element) {
    bytes_ += ApproxPayloadBytes(element.payload) + kPerElementOverheadBytes;
    Key key = key_stored_(element.payload);
    expiry_.push(Expiry{element.end(), key});
    tree_.emplace(std::move(key), element);
  }

  template <typename Emit>
  void Query(const StreamElement<Probe>& probe, Emit&& emit) const {
    const auto [lo, hi] = range_probe_(probe.payload);
    for (auto it = tree_.lower_bound(lo);
         it != tree_.end() && !(hi < it->first); ++it) {
      const StreamElement<Stored>& stored = it->second;
      if (stored.interval.Overlaps(probe.interval) &&
          residual_(stored.payload, probe.payload)) {
        emit(stored);
      }
    }
  }

  /// Columnar bulk insert.
  void InsertRun(const ColumnarRun<Stored>& run) {
    for (std::size_t i = 0; i < run.size(); ++i) {
      Insert(run.ElementAt(i));
    }
  }

  /// Columnar bulk probe: `emit(probe_index, stored)` per match, in probe
  /// order (each probe scans its key range, as in `Query`).
  template <typename Emit>
  void QueryRun(const ColumnarRun<Probe>& run, Emit&& emit) const {
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      const auto [lo, hi] = range_probe_(run.payloads[i]);
      const TimeInterval probe_iv(run.starts[i], run.ends[i]);
      for (auto it = tree_.lower_bound(lo);
           it != tree_.end() && !(hi < it->first); ++it) {
        const StreamElement<Stored>& stored = it->second;
        if (stored.interval.Overlaps(probe_iv) &&
            residual_(stored.payload, run.payloads[i])) {
          emit(i, stored);
        }
      }
    }
  }

  /// Expiry-heap reorganization: cost proportional to the number of
  /// expirations (each pop erases one expired entry under its key).
  std::size_t PurgeBefore(Timestamp t) {
    std::size_t removed = 0;
    while (!expiry_.empty() && expiry_.top().end <= t) {
      const Key key = expiry_.top().key;
      expiry_.pop();
      auto [lo, hi] = tree_.equal_range(key);
      for (auto it = lo; it != hi; ++it) {
        if (it->second.end() <= t) {
          bytes_ -= ApproxPayloadBytes(it->second.payload) +
                    kPerElementOverheadBytes;
          tree_.erase(it);
          ++removed;
          break;
        }
      }
    }
    return removed;
  }

  bool EvictOne(StreamElement<Stored>* evicted = nullptr) {
    if (tree_.empty()) return false;
    auto it = tree_.begin();
    bytes_ -= ApproxPayloadBytes(it->second.payload) +
              kPerElementOverheadBytes;
    if (evicted != nullptr) *evicted = std::move(it->second);
    tree_.erase(it);
    return true;
  }

  std::size_t size() const { return tree_.size(); }
  std::size_t ApproxBytes() const { return bytes_; }

 private:
  struct Expiry {
    Timestamp end;
    Key key;
  };
  struct LaterExpiry {
    bool operator()(const Expiry& a, const Expiry& b) const {
      return a.end > b.end;
    }
  };

  KeyS key_stored_;
  RangeP range_probe_;
  Residual residual_;
  std::multimap<Key, StreamElement<Stored>> tree_;
  // One entry per inserted element; entries of shed elements go stale and
  // are skipped when popped.
  std::priority_queue<Expiry, std::vector<Expiry>, LaterExpiry> expiry_;
  std::size_t bytes_ = 0;
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_TREE_SWEEP_AREA_H_
