#include "src/testing/conformance.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/filter.h"
#include "src/algebra/join.h"
#include "src/algebra/map.h"
#include "src/algebra/parallel.h"
#include "src/algebra/relation_to_stream.h"
#include "src/algebra/union.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/engine/engine.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/physical.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/strategy.h"

namespace pipes::testing::conformance {

namespace {

using optimizer::LogicalOp;
using optimizer::LogicalPlan;
using optimizer::WindowKind;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

// --- Corpus parsing ----------------------------------------------------------

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<ValueType> TypeFromName(const std::string& name) {
  if (name == "int") return ValueType::kInt;
  if (name == "double") return ValueType::kDouble;
  if (name == "bool") return ValueType::kBool;
  if (name == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown corpus field type '" + name + "'");
}

/// Parses "(name:type, name:type, ...)".
Result<Schema> ParseSchemaSpec(const std::string& spec,
                               const std::string& where) {
  const std::string trimmed = Trim(spec);
  if (trimmed.size() < 2 || trimmed.front() != '(' || trimmed.back() != ')') {
    return Status::InvalidArgument(where +
                                   ": expected '(name:type, ...)', got '" +
                                   spec + "'");
  }
  Schema schema;
  std::stringstream body(trimmed.substr(1, trimmed.size() - 2));
  std::string part;
  while (std::getline(body, part, ',')) {
    part = Trim(part);
    const std::size_t colon = part.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument(where + ": bad field spec '" + part +
                                     "'");
    }
    PIPES_ASSIGN_OR_RETURN(ValueType type,
                           TypeFromName(Trim(part.substr(colon + 1))));
    schema.Append({Trim(part.substr(0, colon)), type});
  }
  if (schema.arity() == 0) {
    return Status::InvalidArgument(where + ": empty schema");
  }
  return schema;
}

/// Splits the value side of a row into tokens; single-quoted strings keep
/// their spaces (the quotes are stripped).
Result<std::vector<std::string>> TokenizeValues(const std::string& text,
                                                const std::string& where) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
      continue;
    }
    if (text[i] == '\'') {
      const std::size_t close = text.find('\'', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument(where + ": unterminated string");
      }
      tokens.push_back(text.substr(i + 1, close - i - 1));
      i = close + 1;
    } else {
      std::size_t j = i;
      while (j < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      tokens.push_back(text.substr(i, j - i));
      i = j;
    }
  }
  return tokens;
}

Result<Value> ParseValueToken(const std::string& token, ValueType type,
                              bool quoted_string, const std::string& where) {
  if (!quoted_string && token == "null") return Value::Null();
  try {
    switch (type) {
      case ValueType::kInt:
        return Value(static_cast<std::int64_t>(std::stoll(token)));
      case ValueType::kDouble:
        return Value(std::stod(token));
      case ValueType::kBool:
        if (token == "true") return Value(true);
        if (token == "false") return Value(false);
        return Status::InvalidArgument(where + ": bad bool '" + token + "'");
      case ValueType::kString:
        return Value(token);
      case ValueType::kNull:
        break;
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument(where + ": bad " +
                                   relational::ValueTypeName(type) + " '" +
                                   token + "'");
  }
  return Status::InvalidArgument(where + ": field of type null");
}

/// Parses "<start> <end> | <values>" against `schema`.
Result<TupleElement> ParseRow(const std::string& line, const Schema& schema,
                              const std::string& where) {
  const std::size_t bar = line.find('|');
  if (bar == std::string::npos) {
    return Status::InvalidArgument(where + ": row needs 'start end | values'");
  }
  std::stringstream times(line.substr(0, bar));
  std::string start_tok;
  std::string end_tok;
  std::string extra;
  if (!(times >> start_tok >> end_tok) || (times >> extra)) {
    return Status::InvalidArgument(where + ": expected exactly 'start end'");
  }
  Timestamp start = 0;
  Timestamp end = 0;
  try {
    start = std::stoll(start_tok);
    end = end_tok == "inf" ? kMaxTimestamp : std::stoll(end_tok);
  } catch (const std::exception&) {
    return Status::InvalidArgument(where + ": bad timestamp");
  }
  if (start >= end) {
    return Status::InvalidArgument(where + ": empty interval [" + start_tok +
                                   ", " + end_tok + ")");
  }
  const std::string value_text = line.substr(bar + 1);
  PIPES_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                         TokenizeValues(value_text, where));
  if (tokens.size() != schema.arity()) {
    return Status::InvalidArgument(
        where + ": " + std::to_string(tokens.size()) + " values for " +
        std::to_string(schema.arity()) + " fields");
  }
  std::vector<Value> values;
  values.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // Re-detect quoting: TokenizeValues stripped quotes, so a literal
    // "null" string must have been quoted in the source line.
    const bool quoted = value_text.find('\'' + tokens[i] + '\'') !=
                        std::string::npos;
    PIPES_ASSIGN_OR_RETURN(
        Value v,
        ParseValueToken(tokens[i], schema.field(i).type, quoted, where));
    values.push_back(std::move(v));
  }
  return TupleElement(Tuple(std::move(values)), start, end);
}

}  // namespace

Result<Corpus> ParseCorpus(const std::string& text, const std::string& file) {
  Corpus corpus;
  corpus.file = file;
  std::stringstream in(text);
  std::string raw;
  int line_no = 0;

  enum class Mode { kTop, kStreamRows, kQuery, kExpectRows };
  Mode mode = Mode::kTop;
  CorpusCase current_case;
  bool in_case = false;

  auto where = [&]() { return file + ":" + std::to_string(line_no); };

  auto finish_case = [&]() -> Status {
    if (!in_case) return Status::OK();
    if (current_case.query.empty()) {
      return Status::InvalidArgument(where() + ": case '" +
                                     current_case.name + "' has no query");
    }
    if (current_case.expected.rows.empty() &&
        current_case.expected.schema.arity() == 0) {
      return Status::InvalidArgument(where() + ": case '" +
                                     current_case.name + "' has no expect");
    }
    corpus.cases.push_back(std::move(current_case));
    current_case = {};
    in_case = false;
    return Status::OK();
  };

  while (std::getline(in, raw)) {
    ++line_no;
    const std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;

    if (mode == Mode::kQuery) {
      // The query runs until the `expect` header.
      if (line.rfind("expect", 0) == 0) {
        PIPES_ASSIGN_OR_RETURN(
            current_case.expected.schema,
            ParseSchemaSpec(line.substr(6), where()));
        mode = Mode::kExpectRows;
      } else {
        current_case.query += " " + line;
      }
      continue;
    }

    if (mode == Mode::kStreamRows) {
      if (line == "end") {
        mode = Mode::kTop;
        continue;
      }
      CorpusStream& s = corpus.streams.back();
      PIPES_ASSIGN_OR_RETURN(TupleElement row,
                             ParseRow(line, s.schema, where()));
      if (!s.rows.empty() && row.start() < s.rows.back().start()) {
        return Status::InvalidArgument(
            where() + ": stream rows must be ordered by start");
      }
      s.rows.push_back(std::move(row));
      continue;
    }

    if (mode == Mode::kExpectRows) {
      if (line == "end") {
        PIPES_RETURN_IF_ERROR(finish_case());
        mode = Mode::kTop;
        continue;
      }
      PIPES_ASSIGN_OR_RETURN(
          TupleElement row,
          ParseRow(line, current_case.expected.schema, where()));
      current_case.expected.rows.push_back(std::move(row));
      continue;
    }

    // Mode::kTop.
    std::stringstream header(line);
    std::string keyword;
    header >> keyword;
    if (keyword == "stream") {
      std::string name;
      header >> name;
      if (name.empty()) {
        return Status::InvalidArgument(where() + ": stream needs a name");
      }
      std::string rest;
      std::getline(header, rest);
      CorpusStream stream;
      stream.name = name;
      PIPES_ASSIGN_OR_RETURN(stream.schema, ParseSchemaSpec(rest, where()));
      corpus.streams.push_back(std::move(stream));
      mode = Mode::kStreamRows;
    } else if (keyword == "case") {
      PIPES_RETURN_IF_ERROR(finish_case());
      std::string name;
      header >> name;
      if (name.empty()) {
        return Status::InvalidArgument(where() + ": case needs a name");
      }
      in_case = true;
      current_case = {};
      current_case.name = name;
      current_case.file = file;
    } else if (keyword == "query") {
      if (!in_case) {
        return Status::InvalidArgument(where() + ": query outside a case");
      }
      std::string rest;
      std::getline(header, rest);
      current_case.query = Trim(rest);
      mode = Mode::kQuery;
    } else {
      return Status::InvalidArgument(where() + ": unknown directive '" +
                                     keyword + "'");
    }
  }
  if (mode != Mode::kTop) {
    return Status::InvalidArgument(file + ": unterminated block at EOF");
  }
  PIPES_RETURN_IF_ERROR(finish_case());
  return corpus;
}

Result<Corpus> LoadCorpusFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open corpus file '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCorpus(buffer.str(),
                     std::filesystem::path(path).filename().string());
}

Result<std::vector<Corpus>> LoadCorpusDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".corpus") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::NotFound("cannot list corpus dir '" + dir + "': " +
                            ec.message());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Corpus> corpora;
  for (const std::string& path : paths) {
    PIPES_ASSIGN_OR_RETURN(Corpus corpus, LoadCorpusFile(path));
    corpora.push_back(std::move(corpus));
  }
  if (corpora.empty()) {
    return Status::NotFound("no .corpus files under '" + dir + "'");
  }
  return corpora;
}

// --- Reference evaluation ----------------------------------------------------

namespace {

/// Mirrors SlideWindow::AlignUp.
Timestamp AlignUp(Timestamp t, Timestamp slide) {
  return ((t + slide - 1) / slide) * slide;
}

/// Window application over the raw rows, element-for-element identical to
/// src/algebra/window.h (rows are in arrival order, as CountWindow
/// requires).
std::vector<TupleElement> ApplyWindow(const std::vector<TupleElement>& rows,
                                      const optimizer::WindowSpec& window) {
  std::vector<TupleElement> out;
  switch (window.kind) {
    case WindowKind::kNow:
      return rows;  // no operator: declared intervals pass through
    case WindowKind::kRange:
      out.reserve(rows.size());
      for (const TupleElement& e : rows) {
        out.emplace_back(e.payload, e.start(), e.start() + window.range);
      }
      break;
    case WindowKind::kRangeSlide:
      for (const TupleElement& e : rows) {
        const Timestamp first = AlignUp(e.start(), window.slide);
        const Timestamp last =
            AlignUp(e.start() + window.range, window.slide);
        if (first < last) out.emplace_back(e.payload, first, last);
      }
      break;
    case WindowKind::kRows:
      // Element i expires when its n-th successor arrives; the last n live
      // forever.
      out.reserve(rows.size());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        Timestamp end = kMaxTimestamp;
        if (i + window.rows < rows.size()) {
          end = std::max(rows[i + window.rows].start(), rows[i].start() + 1);
        }
        out.emplace_back(rows[i].payload, rows[i].start(), end);
      }
      break;
    case WindowKind::kUnbounded:
      out.reserve(rows.size());
      for (const TupleElement& e : rows) {
        out.emplace_back(e.payload, e.start(), kMaxTimestamp);
      }
      break;
  }
  return out;
}

Result<std::vector<TupleElement>> EvalNode(const LogicalPlan& plan,
                                           const Corpus& corpus) {
  switch (plan->kind) {
    case LogicalOp::Kind::kStreamScan: {
      for (const CorpusStream& s : corpus.streams) {
        if (s.name == plan->stream_name) {
          return ApplyWindow(s.rows, plan->window);
        }
      }
      return Status::NotFound("corpus has no stream '" + plan->stream_name +
                              "'");
    }

    case LogicalOp::Kind::kFilter: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> in,
                             EvalNode(plan->children[0], corpus));
      std::vector<TupleElement> out;
      for (TupleElement& e : in) {
        if (plan->predicate->Eval(e.payload).Truthy()) {
          out.push_back(std::move(e));
        }
      }
      return out;
    }

    case LogicalOp::Kind::kProject: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> in,
                             EvalNode(plan->children[0], corpus));
      std::vector<TupleElement> out;
      out.reserve(in.size());
      for (const TupleElement& e : in) {
        std::vector<Value> values;
        values.reserve(plan->exprs.size());
        for (const auto& expr : plan->exprs) {
          values.push_back(expr->Eval(e.payload));
        }
        out.emplace_back(Tuple(std::move(values)), e.interval);
      }
      return out;
    }

    case LogicalOp::Kind::kJoin: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> left,
                             EvalNode(plan->children[0], corpus));
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> right,
                             EvalNode(plan->children[1], corpus));
      std::vector<std::size_t> lk;
      std::vector<std::size_t> rk;
      for (const auto& [l, r] : plan->equi_keys) {
        lk.push_back(l);
        rk.push_back(r);
      }
      std::vector<TupleElement> out;
      for (const TupleElement& l : left) {
        for (const TupleElement& r : right) {
          if (!l.interval.Overlaps(r.interval)) continue;
          if (!lk.empty() &&
              !(l.payload.Project(lk) == r.payload.Project(rk))) {
            continue;
          }
          Tuple joined = l.payload.Concat(r.payload);
          if (plan->predicate != nullptr &&
              !plan->predicate->Eval(joined).Truthy()) {
            continue;
          }
          out.emplace_back(std::move(joined),
                           l.interval.Intersect(r.interval));
        }
      }
      return out;
    }

    case LogicalOp::Kind::kGroupAggregate: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> in,
                             EvalNode(plan->children[0], corpus));
      // Per group: segment time at that group's interval endpoints, fold
      // the covering rows (in arrival order) into TupleAggPolicy — the
      // same accumulation order and state the physical sweep line uses,
      // so float results are bit-identical.
      const optimizer::TupleAggPolicy policy(plan->aggs);
      std::map<Tuple, std::vector<const TupleElement*>> groups;
      for (const TupleElement& e : in) {
        groups[e.payload.Project(plan->group_fields)].push_back(&e);
      }
      std::vector<TupleElement> out;
      for (const auto& [key, rows] : groups) {
        std::set<Timestamp> boundary_set;
        for (const TupleElement* e : rows) {
          boundary_set.insert(e->start());
          boundary_set.insert(e->end());
        }
        std::vector<Timestamp> boundaries(boundary_set.begin(),
                                          boundary_set.end());
        for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
          const Timestamp a = boundaries[i];
          const Timestamp b = boundaries[i + 1];
          optimizer::TupleAggPolicy::State state = policy.Init();
          bool any = false;
          for (const TupleElement* e : rows) {
            if (e->start() <= a && b <= e->end()) {
              policy.Add(state, e->payload);
              any = true;
            }
          }
          if (any) {
            out.emplace_back(key.Concat(policy.Result(state)), a, b);
          }
        }
      }
      return out;
    }

    case LogicalOp::Kind::kDistinct: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> in,
                             EvalNode(plan->children[0], corpus));
      // Per distinct payload: maximal coalesced validity intervals.
      std::map<Tuple, std::vector<TimeInterval>> by_payload;
      for (const TupleElement& e : in) {
        by_payload[e.payload].push_back(e.interval);
      }
      std::vector<TupleElement> out;
      for (auto& [payload, intervals] : by_payload) {
        std::sort(intervals.begin(), intervals.end(),
                  [](const TimeInterval& a, const TimeInterval& b) {
                    return a.start < b.start;
                  });
        TimeInterval current = intervals.front();
        for (std::size_t i = 1; i < intervals.size(); ++i) {
          if (intervals[i].start <= current.end) {
            current.end = std::max(current.end, intervals[i].end);
          } else {
            out.emplace_back(payload, current);
            current = intervals[i];
          }
        }
        out.emplace_back(payload, current);
      }
      return out;
    }

    case LogicalOp::Kind::kUnion: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> out,
                             EvalNode(plan->children[0], corpus));
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> right,
                             EvalNode(plan->children[1], corpus));
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }

    case LogicalOp::Kind::kIStream: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> in,
                             EvalNode(plan->children[0], corpus));
      std::vector<TupleElement> out;
      out.reserve(in.size());
      for (const TupleElement& e : in) {
        out.push_back(TupleElement::Point(e.payload, e.start()));
      }
      return out;
    }

    case LogicalOp::Kind::kDStream: {
      PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> in,
                             EvalNode(plan->children[0], corpus));
      std::vector<TupleElement> out;
      for (const TupleElement& e : in) {
        if (e.end() == kMaxTimestamp) continue;  // never expires
        out.push_back(TupleElement::Point(e.payload, e.end()));
      }
      return out;
    }
  }
  return Status::Internal("unhandled logical operator kind");
}

}  // namespace

Result<IntervalTable> ReferenceEval(const LogicalPlan& plan,
                                    const Corpus& corpus) {
  PIPES_ASSIGN_OR_RETURN(std::vector<TupleElement> rows,
                         EvalNode(plan, corpus));
  IntervalTable table;
  table.schema = plan->schema;
  table.rows = std::move(rows);
  return table;
}

// --- Snapshot comparison -----------------------------------------------------

namespace {

constexpr double kRelTolerance = 1e-9;

bool ApproxValueEq(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_numeric() && b.is_numeric()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return std::abs(x - y) <=
           kRelTolerance * std::max({1.0, std::abs(x), std::abs(y)});
  }
  return a.type() == b.type() && a == b;
}

bool ApproxTupleEq(const Tuple& a, const Tuple& b) {
  if (a.arity() != b.arity()) return false;
  for (std::size_t i = 0; i < a.arity(); ++i) {
    if (!ApproxValueEq(a.field(i), b.field(i))) return false;
  }
  return true;
}

/// Payload multiset of `table` valid at instant `t`, sorted.
std::vector<Tuple> SnapshotAt(const IntervalTable& table, Timestamp t) {
  std::vector<Tuple> snapshot;
  for (const TupleElement& e : table.rows) {
    if (e.interval.Contains(t)) snapshot.push_back(e.payload);
  }
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

/// Approximate multiset equality via greedy matching (robust when float
/// jitter perturbs the sort order of near-equal tuples).
bool ApproxMultisetEq(const std::vector<Tuple>& a,
                      const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  std::vector<bool> used(b.size(), false);
  for (const Tuple& t : a) {
    bool matched = false;
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (!used[i] && ApproxTupleEq(t, b[i])) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

std::string RenderSnapshot(const std::vector<Tuple>& snapshot) {
  if (snapshot.empty()) return "{}";
  std::string out = "{";
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) out += ", ";
    out += snapshot[i].ToString();
  }
  return out + "}";
}

bool ElementLess(const TupleElement& a, const TupleElement& b) {
  if (a.start() != b.start()) return a.start() < b.start();
  if (a.end() != b.end()) return a.end() < b.end();
  return a.payload < b.payload;
}

}  // namespace

IntervalTable Canonicalize(const IntervalTable& table) {
  // Per payload, a +1/-1 boundary sweep yields maximal
  // constant-multiplicity segments; multiplicity k renders as k rows.
  std::map<Tuple, std::map<Timestamp, int>> deltas;
  for (const TupleElement& e : table.rows) {
    ++deltas[e.payload][e.start()];
    --deltas[e.payload][e.end()];  // kMaxTimestamp is a fine boundary key
  }
  IntervalTable out;
  out.schema = table.schema;
  for (const auto& [payload, boundary] : deltas) {
    int level = 0;
    Timestamp previous = 0;
    for (const auto& [t, delta] : boundary) {
      if (delta == 0) continue;  // abutting end+start: multiplicity unchanged
      if (level > 0) {
        for (int k = 0; k < level; ++k) {
          out.rows.emplace_back(payload, previous, t);
        }
      }
      level += delta;
      previous = t;
    }
  }
  std::sort(out.rows.begin(), out.rows.end(), ElementLess);
  return out;
}

TableDiff SnapshotDiff(const IntervalTable& expected,
                       const IntervalTable& actual) {
  TableDiff diff;
  if (!expected.rows.empty() && !actual.rows.empty() &&
      expected.rows.front().payload.arity() !=
          actual.rows.front().payload.arity()) {
    diff.equivalent = false;
    diff.message =
        "arity mismatch: expected " +
        std::to_string(expected.rows.front().payload.arity()) + ", actual " +
        std::to_string(actual.rows.front().payload.arity());
    return diff;
  }
  // The snapshot function of either table only changes at its own interval
  // endpoints, so agreeing at the union of endpoints means agreeing
  // everywhere.
  std::set<Timestamp> instants;
  for (const IntervalTable* table : {&expected, &actual}) {
    for (const TupleElement& e : table->rows) {
      instants.insert(e.start());
      if (e.end() != kMaxTimestamp) instants.insert(e.end());
    }
  }
  for (const Timestamp t : instants) {
    const std::vector<Tuple> want = SnapshotAt(expected, t);
    const std::vector<Tuple> got = SnapshotAt(actual, t);
    if (!ApproxMultisetEq(want, got)) {
      diff.equivalent = false;
      diff.message = "snapshots differ at t=" + std::to_string(t) +
                     "\n  expected: " + RenderSnapshot(want) +
                     "\n  actual:   " + RenderSnapshot(got);
      return diff;
    }
  }
  return diff;
}

std::string RenderTable(const IntervalTable& table) {
  const IntervalTable canonical = Canonicalize(table);
  std::string out;
  for (const TupleElement& e : canonical.rows) {
    out += std::to_string(e.start()) + " " +
           (e.end() == kMaxTimestamp ? std::string("inf")
                                     : std::to_string(e.end())) +
           " | " + e.payload.ToString() + "\n";
  }
  return out;
}

// --- Execution arms ----------------------------------------------------------

namespace {

cql::Catalog MakeCatalog(const Corpus& corpus) {
  cql::Catalog catalog;
  for (const CorpusStream& s : corpus.streams) {
    catalog.RegisterStream(s.name, s.schema, nullptr, s.rate_hint);
  }
  return catalog;
}

std::vector<TupleElement> Collected(CollectorSink<Tuple>& sink) {
  return sink.elements();
}

Result<IntervalTable> RunEngineArm(const CorpusCase& c, const Corpus& corpus) {
  engine::Engine eng;
  for (const CorpusStream& s : corpus.streams) {
    auto& src = eng.graph().Add<VectorSource<Tuple>>(
        s.rows, "corpus(" + s.name + ")", /*batch_size=*/8);
    PIPES_RETURN_IF_ERROR(
        eng.BindStream(s.name, s.schema, src, s.rate_hint));
  }
  PIPES_ASSIGN_OR_RETURN(engine::QueryHandle handle, eng.Register(c.query));
  eng.RunToCompletion();
  IntervalTable table;
  table.schema = handle.schema();
  table.rows = handle.Poll();
  return table;
}

/// Shared scaffolding of the scheduler-driven arms: vector sources wired
/// through the catalog, a PlanManager-installed query, a collector sink.
Result<IntervalTable> RunManagedArm(const CorpusCase& c, const Corpus& corpus,
                                    std::size_t source_batch,
                                    bool columnar_executor,
                                    std::size_t drive_batch) {
  QueryGraph graph;
  cql::Catalog catalog;
  for (const CorpusStream& s : corpus.streams) {
    auto& src = graph.Add<VectorSource<Tuple>>(
        s.rows, "corpus(" + s.name + ")", source_batch);
    catalog.RegisterStream(s.name, s.schema, &src, s.rate_hint);
  }
  optimizer::PlanManager manager(&graph, &catalog);
  PIPES_ASSIGN_OR_RETURN(optimizer::PlanManager::InstalledQuery installed,
                         manager.InstallQuery(c.query));
  auto& sink = graph.Add<CollectorSink<Tuple>>("conformance-sink");
  installed.output->AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  if (columnar_executor) {
    scheduler::PipeExecutor executor(graph, strategy, drive_batch);
    executor.RunToCompletion();
  } else {
    scheduler::SingleThreadScheduler scheduler(graph, strategy, drive_batch);
    scheduler.RunToCompletion();
  }
  IntervalTable table;
  table.schema = installed.schema;
  table.rows = Collected(sink);
  return table;
}

struct TupleIdentity {
  const Tuple& operator()(const Tuple& t) const { return t; }
};

/// (group key, agg results) -> flat output tuple, as in PhysicalBuilder.
struct PairConcat {
  Tuple operator()(const std::pair<Tuple, Tuple>& p) const {
    return p.first.Concat(p.second);
  }
};

/// Recursive physical materializer for the keyed-parallel arm: the same
/// lowering as PhysicalBuilder::BuildNode, except every key-partitionable
/// operator (grouped aggregate, distinct, hash equi-join) is replicated
/// across two keyed replicas via MakeKeyedParallel / MakeParallelHashJoin.
Result<Source<Tuple>*> ParallelBuild(QueryGraph& graph,
                                     const cql::Catalog& catalog,
                                     const LogicalPlan& plan) {
  using optimizer::ExprPredicate;
  using optimizer::ExprProjector;
  using optimizer::FieldsKey;
  using optimizer::TupleConcatCombine;
  constexpr std::size_t kReplicas = 2;

  switch (plan->kind) {
    case LogicalOp::Kind::kStreamScan: {
      PIPES_ASSIGN_OR_RETURN(const cql::Catalog::StreamInfo* info,
                             catalog.Lookup(plan->stream_name));
      if (info->source == nullptr) {
        return Status::FailedPrecondition("stream '" + plan->stream_name +
                                          "' has no physical source");
      }
      Source<Tuple>* source = info->source;
      switch (plan->window.kind) {
        case WindowKind::kNow:
          return source;
        case WindowKind::kRange: {
          auto& window = graph.Add<algebra::TimeWindow<Tuple>>(
              plan->window.range, "window(" + plan->stream_name + ")");
          source->AddSubscriber(window.input());
          return &window;
        }
        case WindowKind::kRangeSlide: {
          auto& window = graph.Add<algebra::SlideWindow<Tuple>>(
              plan->window.range, plan->window.slide,
              "slide-window(" + plan->stream_name + ")");
          source->AddSubscriber(window.input());
          return &window;
        }
        case WindowKind::kRows: {
          auto& window = graph.Add<algebra::CountWindow<Tuple>>(
              plan->window.rows, "rows-window(" + plan->stream_name + ")");
          source->AddSubscriber(window.input());
          return &window;
        }
        case WindowKind::kUnbounded: {
          auto& window = graph.Add<algebra::UnboundedWindow<Tuple>>(
              "unbounded-window(" + plan->stream_name + ")");
          source->AddSubscriber(window.input());
          return &window;
        }
      }
      return Status::Internal("unhandled window kind");
    }

    case LogicalOp::Kind::kFilter: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* child,
                             ParallelBuild(graph, catalog, plan->children[0]));
      auto& filter = graph.Add<algebra::Filter<Tuple, ExprPredicate>>(
          ExprPredicate{plan->predicate},
          "filter[" + plan->predicate->ToString() + "]");
      child->AddSubscriber(filter.input());
      return &filter;
    }

    case LogicalOp::Kind::kProject: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* child,
                             ParallelBuild(graph, catalog, plan->children[0]));
      auto& project = graph.Add<algebra::Map<Tuple, Tuple, ExprProjector>>(
          ExprProjector{plan->exprs}, "project");
      child->AddSubscriber(project.input());
      return &project;
    }

    case LogicalOp::Kind::kJoin: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* left,
                             ParallelBuild(graph, catalog, plan->children[0]));
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* right,
                             ParallelBuild(graph, catalog, plan->children[1]));
      if (plan->equi_keys.empty()) {
        auto join = algebra::MakeNestedLoopsJoin<Tuple, Tuple>(
            optimizer::ConcatPredicate{plan->predicate}, TupleConcatCombine{},
            plan->predicate == nullptr ? "cross-join" : "nl-join");
        auto& node = graph.Add(std::move(join));
        left->AddSubscriber(node.left());
        right->AddSubscriber(node.right());
        return &node;
      }
      FieldsKey left_key;
      FieldsKey right_key;
      for (const auto& [l, r] : plan->equi_keys) {
        left_key.fields.push_back(l);
        right_key.fields.push_back(r);
      }
      auto chain = algebra::MakeParallelHashJoin<Tuple, Tuple>(
          graph, kReplicas, left_key, right_key, TupleConcatCombine{},
          "parallel-hash-join");
      left->AddSubscriber(*chain.left);
      right->AddSubscriber(*chain.right);
      Source<Tuple>* out = chain.output;
      if (plan->predicate != nullptr) {
        auto& residual = graph.Add<algebra::Filter<Tuple, ExprPredicate>>(
            ExprPredicate{plan->predicate}, "join-residual");
        out->AddSubscriber(residual.input());
        out = &residual;
      }
      return out;
    }

    case LogicalOp::Kind::kGroupAggregate: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* child,
                             ParallelBuild(graph, catalog, plan->children[0]));
      using Grouped =
          algebra::GroupedAggregate<Tuple, optimizer::TupleAggPolicy,
                                    FieldsKey, TupleIdentity>;
      auto chain = algebra::MakeKeyedParallel<Grouped>(
          graph, kReplicas, FieldsKey{plan->group_fields},
          FieldsKey{plan->group_fields}, TupleIdentity{}, "group-aggregate",
          optimizer::TupleAggPolicy(plan->aggs));
      child->AddSubscriber(*chain.input);
      auto& flatten =
          graph.Add<algebra::Map<std::pair<Tuple, Tuple>, Tuple, PairConcat>>(
              PairConcat{}, "flatten-groups");
      chain.output->AddSubscriber(flatten.input());
      return &flatten;
    }

    case LogicalOp::Kind::kDistinct: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* child,
                             ParallelBuild(graph, catalog, plan->children[0]));
      auto chain = algebra::MakeKeyedParallel<algebra::Distinct<Tuple>>(
          graph, kReplicas, TupleIdentity{}, "distinct");
      child->AddSubscriber(*chain.input);
      return chain.output;
    }

    case LogicalOp::Kind::kUnion: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* left,
                             ParallelBuild(graph, catalog, plan->children[0]));
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* right,
                             ParallelBuild(graph, catalog, plan->children[1]));
      auto& unite = graph.Add<algebra::Union<Tuple>>("union");
      left->AddSubscriber(unite.left());
      right->AddSubscriber(unite.right());
      return &unite;
    }

    case LogicalOp::Kind::kIStream: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* child,
                             ParallelBuild(graph, catalog, plan->children[0]));
      auto& node = graph.Add<algebra::IStream<Tuple>>("istream");
      child->AddSubscriber(node.input());
      return &node;
    }

    case LogicalOp::Kind::kDStream: {
      PIPES_ASSIGN_OR_RETURN(Source<Tuple>* child,
                             ParallelBuild(graph, catalog, plan->children[0]));
      auto& node = graph.Add<algebra::DStream<Tuple>>("dstream");
      child->AddSubscriber(node.input());
      return &node;
    }
  }
  return Status::Internal("unhandled logical operator kind");
}

Result<IntervalTable> RunKeyedParallelArm(const CorpusCase& c,
                                          const Corpus& corpus) {
  QueryGraph graph;
  cql::Catalog catalog;
  for (const CorpusStream& s : corpus.streams) {
    auto& src = graph.Add<VectorSource<Tuple>>(
        s.rows, "corpus(" + s.name + ")", /*batch_size=*/4);
    catalog.RegisterStream(s.name, s.schema, &src, s.rate_hint);
  }
  PIPES_ASSIGN_OR_RETURN(cql::CompiledQuery compiled,
                         cql::Compile(c.query, catalog));
  // Optimize first: equi-key extraction is what turns the analyzer's cross
  // joins into hash joins MakeParallelHashJoin can replicate.
  const optimizer::Optimizer optimizer(&catalog);
  const LogicalPlan plan = optimizer.Optimize(compiled.plan).plan;
  PIPES_ASSIGN_OR_RETURN(Source<Tuple>* output,
                         ParallelBuild(graph, catalog, plan));
  auto& sink = graph.Add<CollectorSink<Tuple>>("conformance-sink");
  output->AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler scheduler(graph, strategy, 8);
  scheduler.RunToCompletion();
  IntervalTable table;
  table.schema = plan->schema;
  table.rows = Collected(sink);
  return table;
}

}  // namespace

const char* ArmName(Arm arm) {
  switch (arm) {
    case Arm::kReference:
      return "reference";
    case Arm::kEngine:
      return "engine";
    case Arm::kPerElement:
      return "per-element";
    case Arm::kColumnar:
      return "columnar";
    case Arm::kKeyedParallel:
      return "keyed-parallel";
  }
  return "?";
}

std::vector<Arm> AllArms() {
  return {Arm::kReference, Arm::kEngine, Arm::kPerElement, Arm::kColumnar,
          Arm::kKeyedParallel};
}

Result<IntervalTable> RunArm(Arm arm, const CorpusCase& c,
                             const Corpus& corpus) {
  switch (arm) {
    case Arm::kReference: {
      const cql::Catalog catalog = MakeCatalog(corpus);
      PIPES_ASSIGN_OR_RETURN(cql::CompiledQuery compiled,
                             cql::Compile(c.query, catalog));
      return ReferenceEval(compiled.plan, corpus);
    }
    case Arm::kEngine:
      return RunEngineArm(c, corpus);
    case Arm::kPerElement:
      return RunManagedArm(c, corpus, /*source_batch=*/1,
                           /*columnar_executor=*/false, /*drive_batch=*/1);
    case Arm::kColumnar:
      return RunManagedArm(c, corpus, /*source_batch=*/16,
                           /*columnar_executor=*/true, /*drive_batch=*/64);
    case Arm::kKeyedParallel:
      return RunKeyedParallelArm(c, corpus);
  }
  return Status::Internal("unknown arm");
}

CaseResult RunCase(const CorpusCase& c, const Corpus& corpus,
                   const std::vector<Arm>& arms) {
  CaseResult result;
  result.name = c.name;
  result.file = c.file;
  for (const Arm arm : arms) {
    Result<IntervalTable> table = RunArm(arm, c, corpus);
    if (!table.ok()) {
      result.passed = false;
      result.failing_arm = ArmName(arm);
      result.message = table.status().ToString();
      result.expected_rendered = RenderTable(c.expected);
      return result;
    }
    const TableDiff diff = SnapshotDiff(c.expected, *table);
    if (!diff.equivalent) {
      result.passed = false;
      result.failing_arm = ArmName(arm);
      result.message = diff.message;
      result.expected_rendered = RenderTable(c.expected);
      result.actual_rendered = RenderTable(*table);
      return result;
    }
  }
  return result;
}

CorpusRunStats RunCorpora(const std::vector<Corpus>& corpora,
                          const std::vector<Arm>& arms, std::ostream* log) {
  CorpusRunStats stats;
  for (const Corpus& corpus : corpora) {
    for (const CorpusCase& c : corpus.cases) {
      CaseResult result = RunCase(c, corpus, arms);
      ++stats.cases_run;
      stats.arms_run += arms.size();
      if (log != nullptr) {
        *log << (result.passed ? "PASS" : "FAIL") << " " << corpus.file << "/"
             << c.name;
        if (!result.passed) *log << " [" << result.failing_arm << "]";
        *log << "\n";
      }
      if (!result.passed) {
        ++stats.cases_failed;
        stats.failures.push_back(std::move(result));
      }
    }
  }
  return stats;
}

}  // namespace pipes::testing::conformance
