#ifndef PIPES_TESTING_CONFORMANCE_H_
#define PIPES_TESTING_CONFORMANCE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/element.h"
#include "src/optimizer/logical_plan.h"
#include "src/relational/schema.h"
#include "src/relational/tuple.h"

/// \file
/// The sequenced-temporal blackbox conformance corpus (docs/workloads.md):
/// declarative files pairing CQL query text with the *expected interval
/// table* — the full temporal relation [start, end) | payload the query
/// must produce over shared fixture streams. A corpus case passes when
/// every execution arm (independent reference evaluator, live `Engine`,
/// per-element scheduler, columnar `PipeExecutor`, keyed-parallel
/// replication) is snapshot-equivalent to the expectation: equal payload
/// multisets at every instant, regardless of how validity is segmented
/// into elements (coalescing-insensitive, exactly the paper's equivalence
/// notion).
///
/// The reference evaluator here is a second, independent implementation of
/// the temporal algebra straight from the logical plan — materialized
/// vectors, no operator code from src/algebra/, no scheduling — so an
/// algebra bug has to be made twice to slip through.

namespace pipes::testing::conformance {

using TupleElement = StreamElement<relational::Tuple>;

/// A materialized temporal relation: rows tagged with validity intervals.
struct IntervalTable {
  relational::Schema schema;
  std::vector<TupleElement> rows;
};

/// One shared fixture stream of a corpus file.
struct CorpusStream {
  std::string name;
  relational::Schema schema;
  /// Arrival order == vector order; starts must be non-decreasing.
  std::vector<TupleElement> rows;
  double rate_hint = 1000.0;
};

/// One conformance case: a query plus its expected interval table.
struct CorpusCase {
  std::string name;
  std::string file;  // source corpus file, for diagnostics
  std::string query;
  IntervalTable expected;
};

/// One parsed corpus file: fixture streams shared by its cases.
struct Corpus {
  std::string file;
  std::vector<CorpusStream> streams;
  std::vector<CorpusCase> cases;
};

// --- Loading ----------------------------------------------------------------

/// Parses the line-oriented corpus format (see docs/workloads.md):
///
///     stream <name> (<field>:<type>, ...)
///       <start> <end> | <value> ...
///     end
///     case <name>
///     query <CQL text (may continue on indented lines)>
///     expect (<field>:<type>, ...)
///       <start> <end> | <value> ...
///     end
///
/// `#` starts a comment; `inf` as an end timestamp means kMaxTimestamp;
/// values are typed by the header (int/double/bool/string) or the literal
/// `null`; strings are single-quoted.
Result<Corpus> ParseCorpus(const std::string& text, const std::string& file);

/// Reads and parses one `.corpus` file.
Result<Corpus> LoadCorpusFile(const std::string& path);

/// Loads every `*.corpus` file under `dir` (sorted by name).
Result<std::vector<Corpus>> LoadCorpusDir(const std::string& dir);

// --- Reference evaluation ---------------------------------------------------

/// Evaluates the (unoptimized) logical plan over the corpus streams,
/// straight from the snapshot semantics of every operator. Window
/// semantics mirror src/algebra/window.h element-for-element; aggregation
/// reuses `optimizer::TupleAggPolicy` so numeric results are bit-identical
/// to the physical sweep-line path.
Result<IntervalTable> ReferenceEval(const optimizer::LogicalPlan& plan,
                                    const Corpus& corpus);

// --- Snapshot comparison ----------------------------------------------------

/// Canonical form: per distinct payload, validity is re-segmented into
/// maximal constant-multiplicity intervals (a multiplicity-k segment
/// renders as k identical rows). Two tables are snapshot-equivalent iff
/// their canonical forms are equal (up to float tolerance). Rows come out
/// sorted by (start, end, payload).
IntervalTable Canonicalize(const IntervalTable& table);

/// Result of a snapshot comparison.
struct TableDiff {
  bool equivalent = true;
  /// Human-readable description of the first differing instant: the
  /// expected and actual snapshots side by side. Empty when equivalent.
  std::string message;
};

/// Coalescing-insensitive comparison: at every critical instant of either
/// table, the payload multisets must match. Doubles compare with relative
/// tolerance 1e-9 (corpus files hold rounded decimals).
TableDiff SnapshotDiff(const IntervalTable& expected,
                       const IntervalTable& actual);

/// Renders the canonical form, one `start end | values` row per line
/// (the failing-case artifact format).
std::string RenderTable(const IntervalTable& table);

// --- Execution arms ---------------------------------------------------------

/// The independent execution paths every case must agree across.
enum class Arm {
  kReference,      ///< materializing evaluator above (no operator code)
  kEngine,         ///< live Engine: optimizer + sharing + PipeExecutor
  kPerElement,     ///< PlanManager + SingleThreadScheduler, batch 1
  kColumnar,       ///< PlanManager + PipeExecutor, batched vector sources
  kKeyedParallel,  ///< partitionable operators replicated via MakeKeyedParallel
};

const char* ArmName(Arm arm);

/// All five arms, in the order above.
std::vector<Arm> AllArms();

/// Compiles and runs `c.query` under one arm, returning the produced
/// interval table (schema = compiled output schema).
Result<IntervalTable> RunArm(Arm arm, const CorpusCase& c,
                             const Corpus& corpus);

/// Outcome of one case across a set of arms.
struct CaseResult {
  std::string name;
  std::string file;
  bool passed = true;
  std::string failing_arm;  // first arm that diverged (or errored)
  std::string message;      // diff message or error text
  std::string expected_rendered;  // canonical expected table (artifact)
  std::string actual_rendered;    // canonical actual table of failing arm
};

/// Runs one case under every requested arm, diffing each against the
/// expectation. Stops at the first failing arm.
CaseResult RunCase(const CorpusCase& c, const Corpus& corpus,
                   const std::vector<Arm>& arms);

/// Aggregate outcome of a corpus run.
struct CorpusRunStats {
  std::size_t cases_run = 0;
  std::size_t cases_failed = 0;
  std::size_t arms_run = 0;
  std::vector<CaseResult> failures;
};

/// Runs every case of every corpus under `arms`. When `log` is non-null,
/// one line per case is written to it.
CorpusRunStats RunCorpora(const std::vector<Corpus>& corpora,
                          const std::vector<Arm>& arms, std::ostream* log);

}  // namespace pipes::testing::conformance

#endif  // PIPES_TESTING_CONFORMANCE_H_
