#include "src/testing/generate.h"

#include <algorithm>
#include <utility>

#include "src/common/macros.h"

namespace pipes::testing {

namespace {

struct KindWeight {
  OpKind kind;
  int weight;
};

// Cheap, common shapes dominate; blocking binaries are rare enough that the
// size estimator rarely has to reroll them.
constexpr KindWeight kKindWeights[] = {
    {OpKind::kFilter, 3},        {OpKind::kMap, 3},
    {OpKind::kTimeWindow, 2},    {OpKind::kSlideWindow, 2},
    {OpKind::kUnboundedWindow, 1}, {OpKind::kCountWindow, 1},
    {OpKind::kPartitionedWindow, 1}, {OpKind::kUnion, 2},
    {OpKind::kHashJoin, 1},      {OpKind::kSum, 1},
    {OpKind::kGroupSum, 1},      {OpKind::kDistinct, 2},
    {OpKind::kDifference, 1},    {OpKind::kIntersect, 1},
    {OpKind::kIStream, 1},       {OpKind::kDStream, 1},
};

OpKind PickKind(Random& rng) {
  int total = 0;
  for (const KindWeight& kw : kKindWeights) total += kw.weight;
  int roll = static_cast<int>(rng.NextBounded(total));
  for (const KindWeight& kw : kKindWeights) {
    roll -= kw.weight;
    if (roll < 0) return kw.kind;
  }
  return OpKind::kFilter;
}

void FillParams(Random& rng, SpecNode& n) {
  switch (n.kind) {
    case OpKind::kFilter:
      n.p0 = rng.UniformInt(1, 7);
      n.p1 = rng.UniformInt(0, 7);
      n.p2 = rng.UniformInt(2, 16);
      n.p3 = rng.UniformInt(1, n.p2 - 1);
      break;
    case OpKind::kMap:
      n.p0 = rng.UniformInt(1, 5);
      n.p1 = rng.UniformInt(0, 999);
      break;
    case OpKind::kTimeWindow:
      n.p0 = rng.UniformInt(1, 64);
      break;
    case OpKind::kSlideWindow:
      n.p0 = rng.UniformInt(1, 48);
      n.p1 = rng.UniformInt(1, 16);
      break;
    case OpKind::kCountWindow:
      n.p0 = rng.UniformInt(1, 8);
      break;
    case OpKind::kPartitionedWindow:
      n.p0 = rng.UniformInt(1, 4);
      n.p1 = rng.UniformInt(2, 8);
      break;
    case OpKind::kHashJoin:
      n.p0 = rng.UniformInt(2, 6);
      break;
    case OpKind::kGroupSum:
      n.p0 = rng.UniformInt(2, 8);
      break;
    default:
      break;
  }
}

/// Upper-bound estimate of a node's output cardinality, used to keep the
/// materializing reference's quadratic sweeps within budget.
std::size_t EstimateSize(const SpecNode& n, std::size_t in0, std::size_t in1) {
  switch (n.kind) {
    case OpKind::kUnion:
      return in0 + in1;
    case OpKind::kHashJoin:
      return in0 * in1 / std::max<std::size_t>(1, n.p0) + 1;
    case OpKind::kSum:
    case OpKind::kGroupSum:
      return 2 * in0 + 1;
    case OpKind::kDifference:
    case OpKind::kIntersect:
      return 2 * (in0 + in1) + 1;
    default:
      return in0;
  }
}

}  // namespace

GeneratedCase GenerateCase(Random& rng, const GenOptions& opts) {
  GeneratedCase out;
  std::vector<std::size_t> est;
  // reseg[i]: node i's subplan contains a resegmenting op, so its interval
  // decomposition is schedule-dependent. Segmentation-sensitive ops
  // (windows, istream/dstream) must not consume such subplans.
  std::vector<bool> reseg;

  const int num_streams = static_cast<int>(rng.UniformInt(1, opts.max_streams));
  for (int s = 0; s < num_streams; ++s) {
    StreamProfile p;
    p.num_elements = static_cast<std::size_t>(rng.UniformInt(
        static_cast<std::int64_t>(opts.min_elements),
        static_cast<std::int64_t>(opts.max_elements)));
    p.domain = rng.UniformInt(8, 200);
    p.zipf_theta = rng.Bernoulli(0.4) ? rng.UniformDouble(0.5, 1.2) : 0.0;
    p.burst_prob = rng.UniformDouble(0.0, 0.5);
    p.lull_prob = rng.UniformDouble(0.0, 0.15);
    p.max_step = rng.UniformInt(1, 8);
    p.lull_step = rng.UniformInt(16, 128);
    p.disorder =
        (opts.allow_disorder && rng.Bernoulli(0.3)) ? rng.UniformInt(1, 12) : 0;
    out.profiles.push_back(p);

    SpecNode src;
    src.kind = OpKind::kSource;
    src.stream = s;
    out.spec.nodes.push_back(src);
    est.push_back(p.num_elements);
    reseg.push_back(false);
  }

  const int num_ops =
      static_cast<int>(rng.UniformInt(opts.min_ops, opts.max_ops));
  for (int k = 0; k < num_ops; ++k) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      SpecNode n;
      n.kind = PickKind(rng);
      FillParams(rng, n);
      const OpTraits& t = TraitsOf(n.kind);
      const int size = static_cast<int>(out.spec.nodes.size());
      if (t.source_attached) {
        n.in0 = static_cast<int>(rng.NextBounded(num_streams));
      } else {
        n.in0 = static_cast<int>(rng.NextBounded(size));
      }
      if (t.arity == 2) n.in1 = static_cast<int>(rng.NextBounded(size));
      if (t.segmentation_sensitive && reseg[n.in0]) continue;  // reroll
      const std::size_t e = EstimateSize(
          n, est[n.in0], n.in1 >= 0 ? est[n.in1] : 0);
      if (e > opts.max_est_size) continue;  // reroll: too expensive
      out.spec.nodes.push_back(n);
      est.push_back(e);
      reseg.push_back(t.resegmenting || reseg[n.in0] ||
                      (n.in1 >= 0 && reseg[n.in1]));
      break;
    }
  }

  // ESPBench-shaped enrichment appendix: stream <-> relation join (the
  // telemetry-x-ERP-dimension mix of the enterprise workload). The relation
  // side is a source held entirely open by an unbounded window — rows stay
  // valid once seen, exactly how the workload feeds dimension relations —
  // and a raw telemetry source probes it through a modular-key hash join.
  // Parameters are folded out of the already-drawn plan instead of the rng,
  // so the rng cursor (and with it every pre-existing seed's operator draws
  // AND input streams) is untouched: old corpus seeds replay byte-for-byte
  // modulo this deterministic appendix.
  if (opts.enrichment) {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const SpecNode& n : out.spec.nodes) {
      h ^= (static_cast<std::uint64_t>(n.kind) + 1) * 0x100000001b3ull;
      h = (h << 7) | (h >> 57);
      h ^= static_cast<std::uint64_t>(n.p0 + 3) +
           static_cast<std::uint64_t>(n.p1 + 7) * 0xbf58476d1ce4e5b9ull;
    }
    for (const StreamProfile& p : out.profiles) {
      h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(p.num_elements);
    }
    if ((h & 3) == 0) {  // ~one case in four carries the enrichment mix
      const int relation =
          static_cast<int>((h >> 2) % static_cast<std::uint64_t>(num_streams));
      const int probe =
          static_cast<int>((h >> 9) % static_cast<std::uint64_t>(num_streams));
      SpecNode rel;
      rel.kind = OpKind::kUnboundedWindow;
      rel.in0 = relation;  // sources occupy indices [0, num_streams)
      SpecNode join;
      join.kind = OpKind::kHashJoin;
      join.p0 = 3 + static_cast<std::int64_t>((h >> 17) % 5);
      join.in0 = probe;
      join.in1 = static_cast<int>(out.spec.nodes.size());
      const std::size_t e = EstimateSize(join, est[probe], est[relation]);
      if (e <= opts.max_est_size) {
        out.spec.nodes.push_back(rel);
        est.push_back(est[relation]);
        reseg.push_back(false);
        out.spec.nodes.push_back(join);
        est.push_back(e);
        reseg.push_back(false);
      }
    }
  }

  // Union dangling subplans until exactly one root remains, so every node is
  // reachable from the root and no generated work is dead.
  std::vector<bool> consumed(out.spec.nodes.size(), false);
  for (const SpecNode& n : out.spec.nodes) {
    if (n.in0 >= 0) consumed[n.in0] = true;
    if (n.in1 >= 0) consumed[n.in1] = true;
  }
  std::vector<int> dangling;
  for (std::size_t i = 0; i < out.spec.nodes.size(); ++i) {
    if (!consumed[i]) dangling.push_back(static_cast<int>(i));
  }
  PIPES_CHECK(!dangling.empty());
  while (dangling.size() > 1) {
    SpecNode u;
    u.kind = OpKind::kUnion;
    u.in1 = dangling.back();
    dangling.pop_back();
    u.in0 = dangling.back();
    dangling.pop_back();
    out.spec.nodes.push_back(u);
    dangling.push_back(static_cast<int>(out.spec.nodes.size()) - 1);
  }
  out.spec.root = dangling.front();

  out.spec.CheckValid();
  return out;
}

namespace {

bool PayloadOnly(OpKind k) {
  return k == OpKind::kFilter || k == OpKind::kMap;
}

/// Operators that transform intervals but never read or write payloads, so
/// they commute with the payload-only ones.
bool IntervalOnly(OpKind k) {
  return k == OpKind::kTimeWindow || k == OpKind::kSlideWindow ||
         k == OpKind::kUnboundedWindow || k == OpKind::kIStream ||
         k == OpKind::kDStream;
}

enum class RewriteKind {
  kSwapPlain,        // parent/child commute verbatim
  kSwapFilterMap,    // filter-over-map -> map-over-(filter ∘ map)
  kFuseMapMap,       // map-over-map -> identity + fused map
  kUnionSwap,        // swap union operands
  kAppendIdentity,   // identity map above the root
  kAppendDistinct,   // distinct idempotence above a distinct root
};

struct RewriteSite {
  RewriteKind kind;
  int parent = -1;  // index of the upper node (or the union / root)
  int child = -1;   // index of the lower node for swaps/fusion
};

constexpr std::uint64_t kMod = static_cast<std::uint64_t>(kValModulus);

/// (a2*x + b2) ∘ (a1*x + b1) folded into [0, kValModulus). Exact because
/// every payload and coefficient is < kValModulus, so no uint64 overflow.
std::pair<std::int64_t, std::int64_t> ComposeAffine(std::int64_t a2,
                                                    std::int64_t b2,
                                                    std::int64_t a1,
                                                    std::int64_t b1) {
  const std::uint64_t ua2 = static_cast<std::uint64_t>(PosMod(a2, kValModulus));
  const std::uint64_t ub2 = static_cast<std::uint64_t>(PosMod(b2, kValModulus));
  const std::uint64_t ua1 = static_cast<std::uint64_t>(PosMod(a1, kValModulus));
  const std::uint64_t ub1 = static_cast<std::uint64_t>(PosMod(b1, kValModulus));
  return {static_cast<std::int64_t>((ua2 * ua1) % kMod),
          static_cast<std::int64_t>((ua2 * ub1 + ub2) % kMod)};
}

std::vector<RewriteSite> CollectSites(const PlanSpec& spec,
                                      bool allow_append) {
  std::vector<int> consumers(spec.nodes.size(), 0);
  for (const SpecNode& n : spec.nodes) {
    if (n.in0 >= 0) ++consumers[n.in0];
    if (n.in1 >= 0) ++consumers[n.in1];
  }
  std::vector<RewriteSite> sites;
  for (std::size_t j = 0; j < spec.nodes.size(); ++j) {
    const SpecNode& p = spec.nodes[j];
    if (p.kind == OpKind::kUnion) {
      sites.push_back({RewriteKind::kUnionSwap, static_cast<int>(j), -1});
    }
    if (TraitsOf(p.kind).arity != 1) continue;
    const int i = p.in0;
    const SpecNode& c = spec.nodes[i];
    if (TraitsOf(c.kind).arity != 1 || consumers[i] != 1) continue;
    const bool commute =
        (p.kind == OpKind::kFilter && c.kind == OpKind::kFilter) ||
        (PayloadOnly(p.kind) && IntervalOnly(c.kind)) ||
        (IntervalOnly(p.kind) && PayloadOnly(c.kind)) ||
        (p.kind == OpKind::kFilter && c.kind == OpKind::kDistinct) ||
        (p.kind == OpKind::kDistinct && c.kind == OpKind::kFilter);
    if (commute) {
      sites.push_back({RewriteKind::kSwapPlain, static_cast<int>(j), i});
    } else if (p.kind == OpKind::kFilter && c.kind == OpKind::kMap) {
      sites.push_back({RewriteKind::kSwapFilterMap, static_cast<int>(j), i});
    } else if (p.kind == OpKind::kMap && c.kind == OpKind::kMap) {
      sites.push_back({RewriteKind::kFuseMapMap, static_cast<int>(j), i});
    }
  }
  if (allow_append) {
    sites.push_back({RewriteKind::kAppendIdentity, spec.root, -1});
    if (spec.nodes[spec.root].kind == OpKind::kDistinct) {
      sites.push_back({RewriteKind::kAppendDistinct, spec.root, -1});
    }
  }
  return sites;
}

void ApplySite(PlanSpec& spec, const RewriteSite& site) {
  switch (site.kind) {
    case RewriteKind::kSwapPlain:
    case RewriteKind::kSwapFilterMap: {
      SpecNode& lower = spec.nodes[site.child];
      SpecNode& upper = spec.nodes[site.parent];
      SpecNode new_lower = upper;   // parent's op moves below...
      SpecNode new_upper = lower;   // ...child's op moves above
      new_lower.in0 = lower.in0;
      new_upper.in0 = site.child;
      if (site.kind == RewriteKind::kSwapFilterMap) {
        // filter(map(x)) == map(filter'(x)) with filter' = pred ∘ affine.
        const auto [a, b] =
            ComposeAffine(upper.p0, upper.p1, lower.p0, lower.p1);
        new_lower.p0 = a;
        new_lower.p1 = b;
      }
      lower = new_lower;
      upper = new_upper;
      break;
    }
    case RewriteKind::kFuseMapMap: {
      SpecNode& lower = spec.nodes[site.child];
      SpecNode& upper = spec.nodes[site.parent];
      const auto [a, b] = ComposeAffine(upper.p0, upper.p1, lower.p0, lower.p1);
      upper.p0 = a;
      upper.p1 = b;
      lower.p0 = 1;  // child degrades to the identity map
      lower.p1 = 0;
      break;
    }
    case RewriteKind::kUnionSwap:
      std::swap(spec.nodes[site.parent].in0, spec.nodes[site.parent].in1);
      break;
    case RewriteKind::kAppendIdentity: {
      SpecNode id;
      id.kind = OpKind::kMap;
      id.p0 = 1;
      id.p1 = 0;
      id.in0 = spec.root;
      spec.nodes.push_back(id);
      spec.root = static_cast<int>(spec.nodes.size()) - 1;
      break;
    }
    case RewriteKind::kAppendDistinct: {
      SpecNode d;
      d.kind = OpKind::kDistinct;
      d.in0 = spec.root;
      spec.nodes.push_back(d);
      spec.root = static_cast<int>(spec.nodes.size()) - 1;
      break;
    }
  }
}

}  // namespace

PlanSpec ApplyRandomRewrites(Random& rng, const PlanSpec& spec,
                             int max_rewrites) {
  PlanSpec out = spec;
  bool appended = false;
  for (int r = 0; r < max_rewrites; ++r) {
    const std::vector<RewriteSite> sites = CollectSites(out, !appended);
    if (sites.empty()) break;
    const RewriteSite& site = sites[rng.NextBounded(sites.size())];
    if (site.kind == RewriteKind::kAppendIdentity ||
        site.kind == RewriteKind::kAppendDistinct) {
      appended = true;
    }
    ApplySite(out, site);
  }
  out.CheckValid();
  return out;
}

}  // namespace pipes::testing
