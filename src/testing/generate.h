#ifndef PIPES_TESTING_GENERATE_H_
#define PIPES_TESTING_GENERATE_H_

#include <vector>

#include "src/common/random.h"
#include "src/testing/spec.h"

/// \file
/// Seeded query-graph generation and semantics-preserving plan rewriting.
///
/// `GenerateCase` composes a random valid `PlanSpec` from the operator
/// catalog — respecting arity, source-attachment, and a per-node output-size
/// estimate that keeps the reference executor's sweeps cheap — together with
/// one `StreamProfile` per input stream (bursts, lulls, Zipf skew, bounded
/// disorder). Everything is derived from the `Random` argument, so a case is
/// fully reproducible from its seed.
///
/// `ApplyRandomRewrites` plays the optimizer's role in the differential
/// setup: it applies randomly chosen algebraic rewrites (filter/map
/// reordering with predicate composition, map fusion, filter–window and
/// filter–distinct commutation, union operand swaps, identity and
/// distinct-idempotence insertions) that must not change snapshot semantics.
/// The harness executes both plans and lets the oracles disagree.

namespace pipes::testing {

struct GenOptions {
  /// Number of non-source operators to grow (before dangling-root unions).
  int min_ops = 2;
  int max_ops = 8;
  int max_streams = 3;
  std::size_t min_elements = 16;
  std::size_t max_elements = 80;
  bool allow_disorder = true;
  /// Estimated output-size cap per node; candidate ops that would exceed it
  /// are rerolled so pathological plans (stacked joins feeding aggregates)
  /// cannot blow up the O(n*m) reference sweeps.
  std::size_t max_est_size = 3000;
  /// Mix in the ESPBench-shaped stream<->relation enrichment appendix (a
  /// hash join probing a source held open by an unbounded window) on ~1/4
  /// of cases. Derived draw-free from the plan already generated, so
  /// toggling it never changes a seed's operator draws or input streams.
  bool enrichment = true;
};

struct GeneratedCase {
  PlanSpec spec;
  std::vector<StreamProfile> profiles;
};

/// Draws a valid plan plus input-stream profiles. The result always passes
/// `PlanSpec::CheckValid`.
GeneratedCase GenerateCase(Random& rng, const GenOptions& opts = {});

/// Applies up to `max_rewrites` randomly selected semantics-preserving
/// rewrites. Returns a plan whose reference snapshots are identical to the
/// input's; the element-level interval decomposition may differ, so
/// rewritten-vs-original comparisons are snapshot-based. Returns the input
/// unchanged if no rewrite site exists.
PlanSpec ApplyRandomRewrites(Random& rng, const PlanSpec& spec,
                             int max_rewrites);

}  // namespace pipes::testing

#endif  // PIPES_TESTING_GENERATE_H_
