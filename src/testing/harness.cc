#include "src/testing/harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "src/analysis/dataflow.h"
#include "src/common/random.h"
#include "src/memory/memory_manager.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/strategy.h"
#include "src/testing/reference.h"

namespace pipes::testing {

namespace {

using scheduler::ChainStrategy;
using scheduler::FifoStrategy;
using scheduler::LongestQueueStrategy;
using scheduler::PipeExecutor;
using scheduler::RandomStrategy;
using scheduler::RateBasedStrategy;
using scheduler::RoundRobinStrategy;
using scheduler::SingleThreadScheduler;
using scheduler::Strategy;

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::unique_ptr<Strategy> MakeStrategy(int id, std::uint64_t seed) {
  switch (id % 6) {
    case 0:
      return std::make_unique<RoundRobinStrategy>();
    case 1:
      return std::make_unique<FifoStrategy>();
    case 2:
      return std::make_unique<LongestQueueStrategy>();
    case 3:
      return std::make_unique<ChainStrategy>();
    case 4:
      return std::make_unique<RateBasedStrategy>();
    default:
      return std::make_unique<RandomStrategy>(seed);
  }
}

bool FaultEnabled(const std::string& mix, const char* fault) {
  if (mix == "none" || mix.empty()) return false;
  if (mix == "all") return true;
  return mix.find(fault) != std::string::npos;
}

/// How the physical output must relate to the reference stream.
enum class CompareMode { kExactMultiset, kSnapshotEqual, kSnapshotSubset,
                         kInvariantsOnly };

struct DriveResult {
  std::vector<Failure> failures;
  bool finished = false;
  /// Per-node peak observed state (RAM / spilled bytes), sampled on a
  /// prime stride plus once after the drain. Only filled when the caller
  /// asked for bound tracking (the static-certificate oracle).
  std::map<std::uint64_t, std::uint64_t> peak_ram;
  std::map<std::uint64_t, std::uint64_t> peak_disk;
};

/// Steps `m`'s graph to completion under `driver` (any type with a
/// `bool Step()`), opening gated sources once the rest of the graph has
/// drained, optionally squeezing the memory budget and capturing metrics
/// snapshots mid-run. Virtual time only — iteration count is the clock.
template <typename Driver>
DriveResult DriveLoop(Materialized& m, Driver& sched,
                      std::uint64_t max_iterations, bool check_snapshots,
                      memory::MemoryManager* manager = nullptr,
                      std::uint64_t squeeze_at = 0,
                      std::size_t squeeze_budget = 0,
                      bool track_bounds = false) {
  DriveResult r;
  bool gates_open = m.gates.empty();
  bool squeezed = manager == nullptr;
  std::uint64_t iterations = 0;
  metadata::MetricsSnapshot prev;
  bool have_prev = false;
  // A prime stride so captures land on varying graph states.
  const std::uint64_t snap_every = 97;
  // Dense prime stride for state-peak sampling (the certificate oracle):
  // sampling can only under-observe the true peak, which keeps the bound
  // check sound — it may miss a violation, never invent one.
  const std::uint64_t bound_every = 7;
  const auto sample_peaks = [&] {
    for (const Node* node : m.graph.nodes()) {
      std::uint64_t& ram = r.peak_ram[node->id()];
      ram = std::max<std::uint64_t>(ram, node->ApproxMemoryBytes());
      std::uint64_t& disk = r.peak_disk[node->id()];
      disk = std::max<std::uint64_t>(disk, node->SpilledBytes());
    }
  };

  while (iterations < max_iterations) {
    if (!sched.Step()) {
      if (!gates_open) {
        m.OpenGates();
        gates_open = true;
        continue;
      }
      break;
    }
    ++iterations;
    if (track_bounds && iterations % bound_every == 0) sample_peaks();
    if (!squeezed && iterations >= squeeze_at) {
      manager->set_budget(squeeze_budget);
      squeezed = true;
    }
    if (check_snapshots && iterations % snap_every == 0) {
      metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(m.graph);
      if (have_prev) {
        if (snap.high_watermark < prev.high_watermark) {
          std::ostringstream out;
          out << "high watermark regressed from " << prev.high_watermark
              << " to " << snap.high_watermark << " between captures";
          r.failures.push_back(Failure{"snapshot-monotone", out.str()});
        }
        for (const metadata::NodeSnapshot& n : snap.nodes) {
          const metadata::NodeSnapshot* p = prev.FindNode(n.id);
          if (p == nullptr) continue;
          if (n.elements_in < p->elements_in ||
              n.elements_out < p->elements_out || n.shed < p->shed) {
            r.failures.push_back(Failure{
                "snapshot-monotone",
                n.name + ": cumulative counters decreased between captures"});
          }
        }
      }
      prev = std::move(snap);
      have_prev = true;
    }
  }
  if (track_bounds) sample_peaks();
  r.finished = m.graph.Finished();
  if (!r.finished) {
    r.failures.push_back(Failure{
        "livelock", "graph not drained after " + std::to_string(iterations) +
                        " scheduling decisions"});
  }
  if (check_snapshots) {
    // Final capture must JSON round-trip exactly (including shed counters).
    metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(m.graph);
    const std::string json = metadata::ToJson(snap);
    auto parsed = metadata::SnapshotFromJson(json);
    if (!parsed.ok()) {
      r.failures.push_back(
          Failure{"snapshot-roundtrip", parsed.status().message()});
    } else if (!(parsed.value() == snap)) {
      r.failures.push_back(Failure{
          "snapshot-roundtrip", "parsed snapshot differs from captured one"});
    }
  }
  return r;
}

/// Drives on the recursive layer-2 scheduler.
DriveResult DriveGraph(Materialized& m, Strategy& strategy,
                       std::size_t batch_size, std::uint64_t max_iterations,
                       bool check_snapshots,
                       memory::MemoryManager* manager = nullptr,
                       std::uint64_t squeeze_at = 0,
                       std::size_t squeeze_budget = 0,
                       bool track_bounds = false) {
  SingleThreadScheduler sched(m.graph, strategy, batch_size);
  return DriveLoop(m, sched, max_iterations, check_snapshots, manager,
                   squeeze_at, squeeze_budget, track_bounds);
}

/// Drives on the executor-polled `PipeExecutor` (DESIGN.md §4f): every
/// generated plan also runs with pipe staging + columnar delivery, checked
/// by the same oracles as the recursive arms. The executor detaches (and
/// drains leftover pipes) before `CheckRun` inspects the graph.
DriveResult DriveGraphOnExecutor(Materialized& m, Strategy& strategy,
                                 std::size_t batch_size,
                                 std::uint64_t max_iterations,
                                 bool check_snapshots,
                                 bool track_bounds = false) {
  PipeExecutor executor(m.graph, strategy, batch_size);
  return DriveLoop(m, executor, max_iterations, check_snapshots, nullptr, 0,
                   0, track_bounds);
}

/// Everything checked after a drained run: build-time descriptor
/// mismatches, sink invariant violations, per-node conservation, source
/// completeness, and the differential comparison against the reference.
void CheckRun(const Materialized& m, const PlanSpec& spec,
              const std::vector<Stream>& raw_inputs, const Stream& expected,
              CompareMode mode, std::vector<Failure>* failures) {
  for (const Failure& f : m.build_failures) failures->push_back(f);
  for (const Failure& f : m.sink->violations()) failures->push_back(f);

  for (const OpHandle& h : m.ops) {
    std::optional<std::string> bad = CheckConservation(
        h.rule, h.node->elements_in(), h.node->elements_out(),
        h.node->ShedCount(), h.node->queue_size(), h.node->name());
    if (bad.has_value()) {
      failures->push_back(Failure{"conservation", *bad});
    }
    if (h.spec_index >= 0 && h.kind == OpKind::kSource) {
      const int stream = spec.nodes[h.spec_index].stream;
      const std::uint64_t fed = h.node->elements_out() + h.node->ShedCount();
      if (fed != raw_inputs[stream].size()) {
        std::ostringstream out;
        out << h.node->name() << ": emitted " << h.node->elements_out()
            << " + shed " << h.node->ShedCount() << " != stream size "
            << raw_inputs[stream].size();
        failures->push_back(Failure{"conservation", out.str()});
      }
    }
  }
  if (m.sink->elements_in() != m.sink->collected().size()) {
    failures->push_back(
        Failure{"conservation", "sink counter disagrees with collected size"});
  }

  std::optional<std::string> diff;
  switch (mode) {
    case CompareMode::kExactMultiset:
      diff = CompareMultisets(m.sink->collected(), expected);
      break;
    case CompareMode::kSnapshotEqual:
      diff = CompareSnapshots(m.sink->collected(), expected, SnapRel::kEqual);
      break;
    case CompareMode::kSnapshotSubset:
      diff = CompareSnapshots(m.sink->collected(), expected, SnapRel::kSubset);
      break;
    case CompareMode::kInvariantsOnly:
      break;
  }
  if (diff.has_value()) {
    failures->push_back(Failure{"differential", *diff});
  }
}

/// The static-vs-runtime differential oracle: on a drained, non-shedding
/// run, no node's observed peak RAM (or spilled bytes) may exceed the
/// bound the dataflow abstract interpretation certified for it before the
/// run. Transient nodes (buffers, staging) and nodes with no static bound
/// are outside the certificate and skipped.
void CheckStateBounds(const analysis::DataflowResult& certified,
                      const DriveResult& drive,
                      std::vector<Failure>* failures) {
  for (const analysis::NodeFacts& nf : certified.nodes) {
    if (nf.state.transient) continue;
    const auto ram_it = drive.peak_ram.find(nf.node_id);
    const std::uint64_t ram =
        ram_it == drive.peak_ram.end() ? 0 : ram_it->second;
    if (nf.state.ram_bytes != analysis::NodeStateBound::kUnknownBytes &&
        ram > nf.state.ram_bytes) {
      std::ostringstream out;
      out << nf.name << ": observed peak RAM " << ram
          << " B exceeds static certificate bound " << nf.state.ram_bytes
          << " B";
      failures->push_back(Failure{"state-bound", out.str()});
    }
    const auto disk_it = drive.peak_disk.find(nf.node_id);
    const std::uint64_t disk =
        disk_it == drive.peak_disk.end() ? 0 : disk_it->second;
    if (nf.state.disk_bytes != analysis::NodeStateBound::kUnknownBytes &&
        disk > nf.state.disk_bytes) {
      std::ostringstream out;
      out << nf.name << ": observed peak spill " << disk
          << " B exceeds static certificate bound " << nf.state.disk_bytes
          << " B";
      failures->push_back(Failure{"state-bound", out.str()});
    }
  }
}

struct ArmPlan {
  std::string name;
  MaterializeOptions mat;
  int strategy_id = 0;
  std::uint64_t strategy_seed = 0;
  std::size_t batch_size = 1;
  bool snapshots = false;
  /// Drive with the executor-polled `PipeExecutor` instead of the
  /// recursive scheduler.
  bool use_executor = false;
  /// Memory fault arm.
  bool squeeze_memory = false;
  /// Lossy arms (bounded buffers, memory squeeze): when anything was
  /// actually shed, downgrade the comparison instead of expecting equality.
  bool lossy = false;
};

}  // namespace

std::string CaseResult::Summary() const {
  if (ok()) return "";
  std::ostringstream out;
  out << "arm=" << failing_arm << " oracle=" << failures.front().oracle << ": "
      << failures.front().detail;
  return out.str();
}

std::uint64_t CaseSeed(std::uint64_t base_seed, std::uint64_t index) {
  return SplitMix64(base_seed ^ SplitMix64(index));
}

CaseResult RunCaseOnSpec(const PlanSpec& spec,
                         const std::vector<Stream>& raw_inputs,
                         const std::vector<StreamProfile>& profiles,
                         std::uint64_t schedule_seed,
                         const HarnessOptions& options,
                         std::uint64_t* arms_run) {
  CaseResult result;
  result.case_seed = schedule_seed;

  std::vector<Stream> canonical;
  canonical.reserve(raw_inputs.size());
  std::uint64_t total_elements = 0;
  for (const Stream& s : raw_inputs) {
    canonical.push_back(Canonicalize(s));
    total_elements += s.size();
  }
  const Stream expected = EvalReference(spec, canonical);
  const bool exact = !spec.Resegmenting();
  const CompareMode strict_mode =
      exact ? CompareMode::kExactMultiset : CompareMode::kSnapshotEqual;
  const std::uint64_t max_iterations = 200000 + 500 * total_elements;
  Random rng(SplitMix64(schedule_seed ^ 0xA5A5A5A5A5A5A5A5ULL));

  std::vector<ArmPlan> arms;
  {
    ArmPlan naive;
    naive.name = "naive";
    naive.batch_size = 1;
    naive.snapshots = options.check_snapshots;
    arms.push_back(naive);
  }
  for (std::size_t batch : {std::size_t{4}, std::size_t{32}}) {
    ArmPlan a;
    a.name = "batched-" + std::to_string(batch);
    a.mat.source_batch = batch;
    a.mat.buffer_seed = rng.Next();
    a.mat.buffer_prob = 0.3;
    a.strategy_id = 1;  // FIFO pushes trains through in arrival order
    a.batch_size = batch;
    arms.push_back(a);
  }
  for (int v = 0; v < options.schedule_variants; ++v) {
    ArmPlan a;
    a.name = "schedule-" + std::to_string(v);
    a.mat.source_batch = rng.Bernoulli(0.5) ? 1 : 8;
    a.mat.buffer_seed = rng.Next();
    a.mat.buffer_prob = 0.4;
    a.strategy_id = static_cast<int>(rng.NextBounded(6));
    a.strategy_seed = rng.Next();
    const std::size_t quanta[] = {1, 8, 64};
    a.batch_size = quanta[rng.NextBounded(3)];
    arms.push_back(a);
  }
  {
    // Executor-polling arms: the same plan on the queue-driven
    // `PipeExecutor`, per-element-staged and batched-columnar.
    ArmPlan a;
    a.name = "executor";
    a.batch_size = 8;
    a.use_executor = true;
    arms.push_back(a);

    ArmPlan b;
    b.name = "executor-batched-32";
    b.mat.source_batch = 32;
    b.mat.buffer_seed = rng.Next();
    b.mat.buffer_prob = 0.3;
    b.strategy_id = static_cast<int>(rng.NextBounded(6));
    b.strategy_seed = rng.Next();
    b.batch_size = 32;
    b.use_executor = true;
    arms.push_back(b);
  }
  bool any_disorder = false;
  for (const StreamProfile& p : profiles) any_disorder |= p.disorder > 0;
  if (any_disorder) {
    ArmPlan a;
    a.name = "reorder";
    a.mat.use_reorder_source = true;
    a.batch_size = 16;
    arms.push_back(a);
  }
  if (options.check_parallel) {
    const std::vector<int> part = spec.PartitionableNodes();
    if (!part.empty()) {
      ArmPlan a;
      a.name = "parallel";
      a.mat.parallel_node = part[rng.NextBounded(part.size())];
      a.mat.parallel_replicas = 2 + rng.NextBounded(2);
      a.batch_size = 8;
      arms.push_back(a);
    }
  }
  if (FaultEnabled(options.fault_mix, "overflow")) {
    ArmPlan a;
    a.name = "fault-overflow";
    a.mat.buffer_seed = rng.Next();
    a.mat.buffer_prob = 0.5;
    a.mat.bounded_capacity = 4 + rng.NextBounded(13);
    a.strategy_id = 2;  // longest-queue maximizes pressure variation
    a.batch_size = 16;
    a.lossy = true;
    arms.push_back(a);
  }
  if (FaultEnabled(options.fault_mix, "memory") &&
      spec.HasKind(OpKind::kHashJoin)) {
    ArmPlan a;
    a.name = "fault-memory";
    a.batch_size = 4;
    a.squeeze_memory = true;
    a.lossy = true;
    arms.push_back(a);

    // The spill arm: the same mid-run budget squeeze, but the joins carry
    // spillable SweepAreas, so pressure resolves to disk runs instead of
    // shedding and the strict (multiset-exact) comparison still applies —
    // a.lossy stays false on purpose.
    ArmPlan s;
    s.name = "fault-spill";
    s.batch_size = 4;
    s.mat.spillable_joins = true;
    s.squeeze_memory = true;
    arms.push_back(s);
  }
  if (FaultEnabled(options.fault_mix, "stall")) {
    ArmPlan a;
    a.name = "fault-stall";
    a.mat.gated_stream = spec.NumStreams() - 1;
    a.batch_size = 8;
    arms.push_back(a);
  }

  for (const ArmPlan& arm : arms) {
    MaterializeOptions mat = arm.mat;
    mat.canary = options.canary;
    std::unique_ptr<Materialized> m =
        Materialize(spec, raw_inputs, profiles, mat);

    // The certificate oracle applies to arms that promise losslessness:
    // the abstract interpretation runs over the physical graph BEFORE any
    // element flows, and the observed per-node peaks must stay under its
    // bounds (skipped post-hoc if the arm shed anything after all).
    const bool bound_oracle =
        !arm.lossy && options.canary == CanaryKind::kNone;
    std::optional<analysis::DataflowResult> certified;
    if (bound_oracle) certified = analysis::AnalyzeDataflow(m->graph);

    std::unique_ptr<memory::MemoryManager> manager;
    std::uint64_t squeeze_at = 0;
    std::size_t squeeze_budget = 0;
    if (arm.squeeze_memory && !m->memory_users.empty()) {
      manager = std::make_unique<memory::MemoryManager>(
          std::size_t{64} << 20, std::make_unique<memory::UniformStrategy>());
      for (memory::MemoryUser* u : m->memory_users) {
        (void)manager->Register(*u);
      }
      squeeze_at = 1 + rng.NextBounded(std::max<std::uint64_t>(
                           total_elements / 2, 1));
      squeeze_budget = 512 + rng.NextBounded(4096);
    }

    std::unique_ptr<Strategy> strategy =
        MakeStrategy(arm.strategy_id, arm.strategy_seed);
    DriveResult drive =
        arm.use_executor
            ? DriveGraphOnExecutor(*m, *strategy, arm.batch_size,
                                   max_iterations, arm.snapshots,
                                   bound_oracle)
            : DriveGraph(*m, *strategy, arm.batch_size, max_iterations,
                         arm.snapshots, manager.get(), squeeze_at,
                         squeeze_budget, bound_oracle);
    if (arms_run != nullptr) ++*arms_run;

    std::vector<Failure> failures = std::move(drive.failures);
    if (drive.finished) {
      CompareMode mode = strict_mode;
      if (arm.lossy && m->TotalShed() > 0) {
        // Loss is only a sub-multiset relation when every operator maps
        // smaller inputs to smaller snapshots; difference/aggregates can
        // amplify loss, so only invariants remain checkable there.
        mode = spec.Monotone() ? CompareMode::kSnapshotSubset
                               : CompareMode::kInvariantsOnly;
      }
      CheckRun(*m, spec, raw_inputs, expected, mode, &failures);
      if (certified.has_value() && m->TotalShed() == 0) {
        CheckStateBounds(*certified, drive, &failures);
      }
    }
    if (!failures.empty()) {
      result.failing_arm = arm.name;
      result.failures = std::move(failures);
      return result;
    }
  }

  // Rewrite arm: the rewritten plan must be snapshot-equivalent to the
  // original at the reference level, and its physical execution must match
  // its own reference.
  if (options.check_rewrites) {
    Random rewrite_rng(SplitMix64(schedule_seed ^ 0x5EED5EED5EED5EEDULL));
    const PlanSpec rewritten = ApplyRandomRewrites(rewrite_rng, spec, 4);
    const Stream rewritten_expected = EvalReference(rewritten, canonical);
    std::optional<std::string> unsound = CompareSnapshots(
        rewritten_expected, expected, SnapRel::kEqual);
    if (unsound.has_value()) {
      result.failing_arm = "rewrite-reference";
      result.failures.push_back(Failure{"rewrite", *unsound});
      return result;
    }
    MaterializeOptions mat;
    mat.canary = options.canary;
    mat.buffer_seed = rng.Next();
    mat.buffer_prob = 0.3;
    std::unique_ptr<Materialized> m =
        Materialize(rewritten, raw_inputs, profiles, mat);
    std::unique_ptr<Strategy> strategy = MakeStrategy(0, 0);
    DriveResult drive = DriveGraph(*m, *strategy, 8, max_iterations, false);
    if (arms_run != nullptr) ++*arms_run;
    std::vector<Failure> failures = std::move(drive.failures);
    if (drive.finished) {
      CheckRun(*m, rewritten, raw_inputs, rewritten_expected,
               rewritten.Resegmenting() ? CompareMode::kSnapshotEqual
                                        : CompareMode::kExactMultiset,
               &failures);
    }
    if (!failures.empty()) {
      result.failing_arm = "rewrite";
      result.failures = std::move(failures);
      return result;
    }
  }

  return result;
}

CaseResult RunCase(std::uint64_t case_seed, const HarnessOptions& options) {
  Random rng(case_seed);
  GeneratedCase gc = GenerateCase(rng, options.gen);
  std::vector<Stream> raw;
  raw.reserve(gc.profiles.size());
  for (const StreamProfile& profile : gc.profiles) {
    raw.push_back(GenerateStream(rng, profile));
  }
  return RunCaseOnSpec(gc.spec, raw, gc.profiles, case_seed, options);
}

FuzzStats RunFuzz(std::uint64_t base_seed, std::uint64_t num_cases,
                  const HarnessOptions& options, std::ostream* log) {
  FuzzStats stats;
  for (std::uint64_t i = 0; i < num_cases; ++i) {
    const std::uint64_t seed = CaseSeed(base_seed, i);
    std::uint64_t arms = 0;
    Random rng(seed);
    GeneratedCase gc = GenerateCase(rng, options.gen);
    std::vector<Stream> raw;
    for (const StreamProfile& profile : gc.profiles) {
      raw.push_back(GenerateStream(rng, profile));
    }
    CaseResult r = RunCaseOnSpec(gc.spec, raw, gc.profiles, seed, options,
                                 &arms);
    ++stats.cases_run;
    stats.arms_run += arms;
    if (!r.ok()) {
      ++stats.failed_cases;
      stats.first_failure = r;
      if (log != nullptr) {
        *log << "FAIL case " << i << " seed " << seed << ": " << r.Summary()
             << "\nplan:\n"
             << gc.spec.ToString();
      }
      return stats;
    }
    if (log != nullptr && (i + 1) % 500 == 0) {
      *log << "  " << (i + 1) << "/" << num_cases << " cases ok ("
           << stats.arms_run << " arms)\n";
    }
  }
  return stats;
}

namespace {

/// Bypasses node `j` (replacing it by its child `target`), pruning
/// unreachable nodes. Returns nullopt when the bypass would violate a
/// structural constraint (source-attached consumers must keep a source
/// child).
std::optional<PlanSpec> BypassNode(const PlanSpec& spec, int j, int target) {
  if (spec.nodes[j].kind == OpKind::kSource) return std::nullopt;
  for (std::size_t c = 0; c < spec.nodes.size(); ++c) {
    const SpecNode& n = spec.nodes[c];
    const bool consumes = n.in0 == j || n.in1 == j;
    if (consumes && TraitsOf(n.kind).source_attached &&
        spec.nodes[target].kind != OpKind::kSource) {
      return std::nullopt;
    }
  }
  PlanSpec out;
  out.root = spec.root == j ? target : spec.root;
  std::vector<SpecNode> rewired = spec.nodes;
  for (SpecNode& n : rewired) {
    if (n.in0 == j) n.in0 = target;
    if (n.in1 == j) n.in1 = target;
  }
  // Prune everything unreachable from the new root, preserving order (the
  // vector stays a topo order).
  std::vector<bool> keep(rewired.size(), false);
  std::vector<int> stack = {out.root};
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    if (keep[i]) continue;
    keep[i] = true;
    if (rewired[i].in0 >= 0) stack.push_back(rewired[i].in0);
    if (rewired[i].in1 >= 0) stack.push_back(rewired[i].in1);
  }
  keep[j] = false;
  std::vector<int> remap(rewired.size(), -1);
  for (std::size_t i = 0; i < rewired.size(); ++i) {
    if (!keep[i]) continue;
    remap[i] = static_cast<int>(out.nodes.size());
    SpecNode n = rewired[i];
    if (n.in0 >= 0) n.in0 = remap[n.in0];
    if (n.in1 >= 0) n.in1 = remap[n.in1];
    out.nodes.push_back(n);
  }
  out.root = remap[out.root];
  out.CheckValid();
  return out;
}

}  // namespace

ShrinkResult Shrink(const PlanSpec& spec, const std::vector<Stream>& raw_inputs,
                    const std::vector<StreamProfile>& profiles,
                    std::uint64_t schedule_seed, const HarnessOptions& options,
                    int max_reruns) {
  ShrinkResult best;
  best.spec = spec;
  best.inputs = raw_inputs;
  best.profiles = profiles;
  best.result = RunCaseOnSpec(spec, raw_inputs, profiles, schedule_seed,
                              options);
  best.reruns = 1;
  if (best.result.ok()) return best;  // nothing to shrink

  auto still_fails = [&](const PlanSpec& s, const std::vector<Stream>& in)
      -> std::optional<CaseResult> {
    if (best.reruns >= max_reruns) return std::nullopt;
    ++best.reruns;
    CaseResult r = RunCaseOnSpec(s, in, profiles, schedule_seed, options);
    if (r.ok()) return std::nullopt;
    return r;
  };

  // Phase 1: greedy node bypassing until no single bypass keeps the
  // failure.
  bool improved = true;
  while (improved && best.reruns < max_reruns) {
    improved = false;
    for (std::size_t j = 0; j < best.spec.nodes.size() && !improved; ++j) {
      const SpecNode& n = best.spec.nodes[j];
      for (int target : {n.in0, n.in1}) {
        if (target < 0) continue;
        std::optional<PlanSpec> candidate =
            BypassNode(best.spec, static_cast<int>(j), target);
        if (!candidate.has_value()) continue;
        std::optional<CaseResult> r = still_fails(*candidate, best.inputs);
        if (r.has_value()) {
          best.spec = *candidate;
          best.result = *r;
          improved = true;
          break;
        }
      }
    }
  }

  // Phase 2: ddmin on each input stream (drop contiguous chunks, halving
  // the chunk size).
  for (std::size_t s = 0; s < best.inputs.size() && best.reruns < max_reruns;
       ++s) {
    std::size_t chunk = (best.inputs[s].size() + 1) / 2;
    while (chunk >= 1 && best.reruns < max_reruns) {
      bool removed = false;
      for (std::size_t at = 0; at < best.inputs[s].size();) {
        std::vector<Stream> candidate = best.inputs;
        Stream& stream = candidate[s];
        const std::size_t take = std::min(chunk, stream.size() - at);
        stream.erase(stream.begin() + static_cast<std::ptrdiff_t>(at),
                     stream.begin() + static_cast<std::ptrdiff_t>(at + take));
        std::optional<CaseResult> r = still_fails(best.spec, candidate);
        if (r.has_value()) {
          best.inputs = std::move(candidate);
          best.result = *r;
          removed = true;
          // `at` now points at the element after the removed chunk.
        } else {
          at += chunk;
        }
        if (best.reruns >= max_reruns) break;
      }
      if (chunk == 1 && !removed) break;
      chunk = std::max<std::size_t>(chunk / 2, 1);
      if (chunk == 1 && !removed && best.inputs[s].empty()) break;
    }
  }
  return best;
}

bool SelfCheck(std::uint64_t seed, std::ostream* log) {
  // Control: clean cases must pass, or detections below mean nothing.
  HarnessOptions clean;
  clean.fault_mix = "none";
  clean.check_rewrites = false;
  clean.schedule_variants = 1;
  for (std::uint64_t i = 0; i < 3; ++i) {
    CaseResult r = RunCase(CaseSeed(seed, i), clean);
    if (!r.ok()) {
      if (log != nullptr) {
        *log << "self-check: clean control case failed: " << r.Summary()
             << "\n";
      }
      return false;
    }
  }

  constexpr CanaryKind kKinds[] = {
      CanaryKind::kDropElement,      CanaryKind::kDuplicateElement,
      CanaryKind::kCorruptPayload,   CanaryKind::kWidenInterval,
      CanaryKind::kStaleReplay,      CanaryKind::kHeartbeatOvershoot,
  };
  bool all_caught = true;
  for (CanaryKind kind : kKinds) {
    HarnessOptions options = clean;
    options.canary = kind;
    bool caught = false;
    std::uint64_t attempts = 0;
    for (; attempts < 25 && !caught; ++attempts) {
      const std::uint64_t case_seed =
          CaseSeed(seed ^ (0x100 + static_cast<std::uint64_t>(kind)),
                   attempts);
      caught = !RunCase(case_seed, options).ok();
    }
    if (log != nullptr) {
      *log << "self-check canary " << CanaryKindName(kind) << ": "
           << (caught ? "caught" : "MISSED") << " (after " << attempts
           << " case(s))\n";
    }
    all_caught &= caught;
  }
  return all_caught;
}

}  // namespace pipes::testing
