#ifndef PIPES_TESTING_HARNESS_H_
#define PIPES_TESTING_HARNESS_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/testing/generate.h"
#include "src/testing/materialize.h"
#include "src/testing/oracles.h"
#include "src/testing/spec.h"

/// \file
/// The schedule explorer: drives every fuzz case through many seeded
/// execution arms — per-element vs batched, randomized scheduling
/// strategies and quanta, disordered sources, algebraic rewrites, keyed
/// parallelism, and injected faults (bounded-buffer overflow, memory-manager
/// budget squeezes, watermark starvation) — and checks each run against the
/// materializing reference executor plus the streaming invariants. All
/// virtual time: no wall-clock sleeps anywhere.

namespace pipes::testing {

struct HarnessOptions {
  /// Extra randomized-schedule arms beyond the fixed ones.
  int schedule_variants = 3;

  /// Comma-separated subset of {overflow, memory, stall}, or "all"/"none".
  std::string fault_mix = "all";

  bool check_rewrites = true;
  bool check_parallel = true;
  /// Capture metrics snapshots mid-run and check counter monotonicity and
  /// JSON round-tripping.
  bool check_snapshots = true;

  /// Planted bug (self-check / shrink tests); applies to every arm.
  CanaryKind canary = CanaryKind::kNone;

  /// Query-graph generator knobs (RunCase / RunFuzz only).
  GenOptions gen;
};

/// Outcome of one case across all arms. Stops at the first failing arm.
struct CaseResult {
  std::uint64_t case_seed = 0;
  std::string failing_arm;
  std::vector<Failure> failures;

  bool ok() const { return failures.empty(); }
  /// One-line human summary of the first failure; empty when ok.
  std::string Summary() const;
};

struct FuzzStats {
  std::uint64_t cases_run = 0;
  std::uint64_t arms_run = 0;
  std::uint64_t failed_cases = 0;
  CaseResult first_failure;
};

/// Derives the per-case seed from a base seed (splitmix64 over the index),
/// so `--replay <case_seed>` reproduces one case without re-running the
/// whole campaign.
std::uint64_t CaseSeed(std::uint64_t base_seed, std::uint64_t index);

/// Generates the case for `case_seed` (plan + input streams) and runs every
/// arm. Fully deterministic in (case_seed, options).
CaseResult RunCase(std::uint64_t case_seed, const HarnessOptions& options = {});

/// Runs every arm on an explicit case — the entry point for corpus replay
/// and shrinking. `raw_inputs[s]` is stream s in generated (possibly
/// disordered) arrival order.
CaseResult RunCaseOnSpec(const PlanSpec& spec,
                         const std::vector<Stream>& raw_inputs,
                         const std::vector<StreamProfile>& profiles,
                         std::uint64_t schedule_seed,
                         const HarnessOptions& options,
                         std::uint64_t* arms_run = nullptr);

/// Runs `num_cases` cases; stops early at the first failure (recorded in
/// `first_failure`). `log`, when non-null, receives progress lines.
FuzzStats RunFuzz(std::uint64_t base_seed, std::uint64_t num_cases,
                  const HarnessOptions& options = {},
                  std::ostream* log = nullptr);

/// A failing case reduced to (near-)minimal form: greedy node bypassing
/// plus per-stream ddmin on the inputs, re-running the harness after each
/// candidate reduction.
struct ShrinkResult {
  PlanSpec spec;
  std::vector<Stream> inputs;
  std::vector<StreamProfile> profiles;
  /// The failure the minimized case still exhibits.
  CaseResult result;
  int reruns = 0;
};

ShrinkResult Shrink(const PlanSpec& spec, const std::vector<Stream>& raw_inputs,
                    const std::vector<StreamProfile>& profiles,
                    std::uint64_t schedule_seed, const HarnessOptions& options,
                    int max_reruns = 300);

/// Plants each canary kind into otherwise-clean cases and verifies some
/// oracle catches every kind (and that clean control cases pass). Returns
/// true when the harness detects everything it claims to detect.
bool SelfCheck(std::uint64_t seed, std::ostream* log = nullptr);

}  // namespace pipes::testing

#endif  // PIPES_TESTING_HARNESS_H_
