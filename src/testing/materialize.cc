#include "src/testing/materialize.h"

#include <cstdint>
#include <optional>
#include <utility>

#include "src/algebra/aggregate.h"
#include "src/algebra/aggregates.h"
#include "src/algebra/difference.h"
#include "src/algebra/distinct.h"
#include "src/algebra/filter.h"
#include "src/algebra/intersect.h"
#include "src/algebra/join.h"
#include "src/algebra/map.h"
#include "src/algebra/parallel.h"
#include "src/algebra/relation_to_stream.h"
#include "src/algebra/reorder.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/common/random.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/pipe.h"

namespace pipes::testing {

namespace {

using algebra::CountWindow;
using algebra::Difference;
using algebra::Distinct;
using algebra::DStream;
using algebra::Filter;
using algebra::GroupedAggregate;
using algebra::Intersect;
using algebra::IStream;
using algebra::MakeHashJoin;
using algebra::MakeSpillableHashJoin;
using algebra::MakeKeyedParallel;
using algebra::MakeParallelHashJoin;
using algebra::Map;
using algebra::PartitionedWindow;
using algebra::ReorderingSource;
using algebra::SlideWindow;
using algebra::SumAgg;
using algebra::TemporalAggregate;
using algebra::TimeWindow;
using algebra::UnboundedWindow;
using algebra::Union;

// --- Canonical scalar functions as copyable functors ------------------------
// MakeKeyedParallel constructs each replica from a copy of the arguments, so
// these must be plain value types (no std::function indirection).

struct PredFn {
  SpecNode n;
  bool operator()(Val x) const { return PredEval(n, x); }
};

struct MapFn {
  SpecNode n;
  Val operator()(Val x) const { return MapEval(n, x); }
};

struct GroupKeyFn {
  Val groups;
  Val operator()(Val x) const { return GroupKey(x, groups); }
};

struct JoinKeyFn {
  Val modulus;
  Val operator()(Val x) const { return JoinKey(x, modulus); }
};

struct CombineFn {
  Val operator()(Val l, Val r) const { return JoinCombine(l, r); }
};

struct IdentityKeyFn {
  Val operator()(Val x) const { return x; }
};

struct ToU64Fn {
  std::uint64_t operator()(Val x) const {
    return static_cast<std::uint64_t>(x);
  }
};

struct EncodeSumFn {
  Val operator()(std::uint64_t sum) const { return BoundSum(sum); }
};

struct EncodeGroupFn {
  Val operator()(const std::pair<Val, std::uint64_t>& p) const {
    return EncodeGroup(p.first, p.second);
  }
};

using GroupSumOp = GroupedAggregate<Val, SumAgg<std::uint64_t>, GroupKeyFn,
                                    ToU64Fn>;
using SumOp = TemporalAggregate<Val, SumAgg<std::uint64_t>, ToU64Fn>;

// --- Canary -----------------------------------------------------------------

/// Identity pipe with a deliberate, deterministic bug. Sits between the
/// plan root and the oracle sink; the self-check asserts every kind is
/// caught by some oracle.
class CanaryPipe : public UnaryPipe<Val, Val> {
 public:
  explicit CanaryPipe(CanaryKind kind)
      : UnaryPipe<Val, Val>(std::string("canary-") + CanaryKindName(kind)),
        kind_(kind) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<Val, Val>::Describe();
    d.op = "canary";
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const Elem& e) override {
    ++n_;
    switch (kind_) {
      case CanaryKind::kDropElement:
        if (n_ % 17 == 0) return;
        break;
      case CanaryKind::kDuplicateElement:
        if (n_ % 13 == 0) this->Transfer(e);
        break;
      case CanaryKind::kCorruptPayload:
        if (n_ % 19 == 0) {
          this->Transfer(Elem(e.payload + 1, e.interval));
          return;
        }
        break;
      case CanaryKind::kWidenInterval:
        if (n_ % 11 == 0 && e.end() != kMaxTimestamp) {
          this->Transfer(Elem(e.payload, TimeInterval(e.start(), e.end() + 5)));
          return;
        }
        break;
      case CanaryKind::kStaleReplay:
        if (n_ % 31 == 0 && stale_.has_value()) {
          this->Transfer(Elem(*stale_, TimeInterval(e.start(), e.start() + 1)));
        }
        stale_ = e.payload;
        break;
      case CanaryKind::kHeartbeatOvershoot:
      case CanaryKind::kNone:
        break;
    }
    this->Transfer(e);
  }

  void PortProgress(int port_id, Timestamp watermark) override {
    if (kind_ == CanaryKind::kHeartbeatOvershoot) {
      // Falsely promise that the next 7 ticks are element-free.
      this->TransferHeartbeat(watermark + 7);
      return;
    }
    UnaryPipe<Val, Val>::PortProgress(port_id, watermark);
  }

 private:
  CanaryKind kind_;
  std::uint64_t n_ = 0;
  std::optional<Val> stale_;
};

/// Registers every node of a replicated stage with the oracle layer:
/// partition/merge are exact relays, the decoupling buffers obey the
/// buffer conservation law, and each replica obeys its operator's own rule
/// (and its Describe() card is cross-checked against the catalog).
void RegisterChain(struct Builder& b, const algebra::ParallelTopology& t,
                   OpKind kind);

ConservationRule RuleFor(OpKind kind) {
  switch (kind) {
    case OpKind::kMap:
    case OpKind::kTimeWindow:
    case OpKind::kUnboundedWindow:
    case OpKind::kCountWindow:
    case OpKind::kPartitionedWindow:
    case OpKind::kUnion:
    case OpKind::kIStream:
      return ConservationRule::kExact;
    case OpKind::kFilter:
    case OpKind::kSlideWindow:  // drops degenerate (first >= last) windows
    case OpKind::kDistinct:
    case OpKind::kDStream:  // skips never-expiring elements
      return ConservationRule::kAtMostIn;
    case OpKind::kSum:
    case OpKind::kGroupSum:
      return ConservationRule::kAtMostDoubleIn;
    case OpKind::kSource:
    case OpKind::kHashJoin:
    case OpKind::kDifference:
    case OpKind::kIntersect:
      return ConservationRule::kNone;
  }
  return ConservationRule::kNone;
}

/// Builder state threaded through the per-node switch.
struct Builder {
  const PlanSpec& spec;
  const MaterializeOptions& options;
  Materialized& out;
  Random buffer_rng;
  int buffer_index = 0;

  explicit Builder(const PlanSpec& s, const MaterializeOptions& o,
                   Materialized& m)
      : spec(s), options(o), out(m), buffer_rng(o.buffer_seed) {}

  void AddHandle(int spec_index, OpKind kind, bool check_descriptor,
                 ConservationRule rule, const Node* node) {
    OpHandle h;
    h.spec_index = spec_index;
    h.kind = kind;
    h.check_descriptor = check_descriptor;
    h.rule = rule;
    h.node = node;
    out.ops.push_back(h);
    if (check_descriptor) {
      std::optional<std::string> mismatch =
          CheckDescriptor(kind, node->Describe(), node->name());
      if (mismatch.has_value()) {
        out.build_failures.push_back(Failure{"descriptor", *mismatch});
      }
    }
  }

  /// Optionally interposes a seeded buffer behind `src`. Buffers are never
  /// placed directly under source-attached (order-sensitive count) windows'
  /// parents — they preserve FIFO order, so that would be safe too, but
  /// the spec keeps those edges direct so the source-attachment invariant
  /// stays visible in the physical graph.
  Source<Val>* MaybeBuffer(Source<Val>* src) {
    if (options.buffer_prob <= 0.0 ||
        !buffer_rng.Bernoulli(options.buffer_prob)) {
      return src;
    }
    auto& buf = out.graph.Add<Buffer<Val>>(
        "fuzz-buffer-" + std::to_string(buffer_index++),
        options.bounded_capacity);
    src->AddSubscriber(buf.input());
    AddHandle(-1, OpKind::kSource, false, ConservationRule::kExactPlusShed,
              &buf);
    return &buf;
  }
};

void RegisterChain(Builder& b, const algebra::ParallelTopology& t,
                   OpKind kind) {
  for (Node* s : t.splitters) {
    b.AddHandle(-1, kind, false, ConservationRule::kExact, s);
  }
  b.AddHandle(-1, kind, false, ConservationRule::kExact, t.merge);
  for (const auto& bufs : t.replica_inputs) {
    for (Node* buf : bufs) {
      b.AddHandle(-1, kind, false, ConservationRule::kExactPlusShed, buf);
    }
  }
  for (Node* buf : t.replica_outputs) {
    b.AddHandle(-1, kind, false, ConservationRule::kExactPlusShed, buf);
  }
  for (Node* r : t.replicas) {
    b.AddHandle(-1, kind, true, RuleFor(kind), r);
  }
}

}  // namespace

const char* CanaryKindName(CanaryKind kind) {
  switch (kind) {
    case CanaryKind::kNone:
      return "none";
    case CanaryKind::kDropElement:
      return "drop-element";
    case CanaryKind::kDuplicateElement:
      return "duplicate-element";
    case CanaryKind::kCorruptPayload:
      return "corrupt-payload";
    case CanaryKind::kWidenInterval:
      return "widen-interval";
    case CanaryKind::kStaleReplay:
      return "stale-replay";
    case CanaryKind::kHeartbeatOvershoot:
      return "heartbeat-overshoot";
  }
  return "unknown";
}

std::uint64_t Materialized::TotalShed() const {
  std::uint64_t total = 0;
  for (const auto& node : graph.nodes()) {
    total += node->ShedCount();
  }
  return total;
}

std::unique_ptr<Materialized> Materialize(
    const PlanSpec& spec, const std::vector<Stream>& raw_inputs,
    const std::vector<StreamProfile>& profiles,
    const MaterializeOptions& options) {
  spec.CheckValid();
  PIPES_CHECK(static_cast<int>(raw_inputs.size()) >= spec.NumStreams());
  PIPES_CHECK(static_cast<int>(profiles.size()) >= spec.NumStreams());

  auto result = std::make_unique<Materialized>();
  Builder b(spec, options, *result);
  QueryGraph& g = result->graph;

  // outputs[i]: the source a consumer of spec node i subscribes to.
  std::vector<Source<Val>*> outputs(spec.nodes.size(), nullptr);

  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const SpecNode& n = spec.nodes[i];
    const int idx = static_cast<int>(i);
    const std::string name =
        std::string(OpKindName(n.kind)) + "-" + std::to_string(i);
    const bool replicate =
        options.parallel_node == idx && TraitsOf(n.kind).key_partitionable &&
        options.parallel_replicas >= 2;

    // in0/in1: child outputs, with optional seeded buffer interposition.
    // Source-attached windows keep a direct edge to their source.
    Source<Val>* in0 = nullptr;
    Source<Val>* in1 = nullptr;
    if (n.in0 >= 0) {
      in0 = TraitsOf(n.kind).source_attached ? outputs[n.in0]
                                             : b.MaybeBuffer(outputs[n.in0]);
    }
    if (n.in1 >= 0) in1 = b.MaybeBuffer(outputs[n.in1]);

    switch (n.kind) {
      case OpKind::kSource: {
        const Stream& raw = raw_inputs[n.stream];
        const StreamProfile& profile = profiles[n.stream];
        if (n.stream == options.gated_stream) {
          auto& src = g.Add<GatedVectorSource>(Canonicalize(raw), name);
          result->gates.push_back(&src);
          outputs[i] = &src;
          b.AddHandle(idx, n.kind, true, ConservationRule::kNone, &src);
        } else if (options.use_reorder_source && profile.disorder > 0) {
          // Replays the raw (disordered) stream through the reordering
          // adapter; slack = the profile's disorder bound, so nothing is
          // dropped and the emitted order equals the canonical order.
          auto generator = [raw, pos = std::size_t{0}]() mutable
              -> std::optional<Elem> {
            if (pos >= raw.size()) return std::nullopt;
            return raw[pos++];
          };
          auto& src = g.Add<ReorderingSource<Val>>(std::move(generator),
                                                   profile.disorder, name);
          // The generator hides the feed from Describe(), so declare the
          // finite total and the raw feed's disorder as per-instance
          // dataflow gauges — the static analysis bounds downstream state
          // with them, and the fuzz bound-oracle holds it to that.
          src.metadata().SetGauge("dataflow.total_elements",
                                  static_cast<double>(raw.size()));
          src.metadata().SetGauge("dataflow.feed_disorder",
                                  static_cast<double>(profile.disorder));
          outputs[i] = &src;
          b.AddHandle(idx, n.kind, true, ConservationRule::kNone, &src);
        } else {
          auto& src = g.Add<VectorSource<Val>>(Canonicalize(raw), name,
                                               options.source_batch);
          outputs[i] = &src;
          b.AddHandle(idx, n.kind, true, ConservationRule::kNone, &src);
        }
        break;
      }
      case OpKind::kFilter: {
        auto& op = g.Add<Filter<Val, PredFn>>(PredFn{n}, name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kMap: {
        auto& op = g.Add<Map<Val, Val, MapFn>>(MapFn{n}, name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kTimeWindow: {
        auto& op = g.Add<TimeWindow<Val>>(n.p0, name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kSlideWindow: {
        auto& op = g.Add<SlideWindow<Val>>(n.p0, n.p1, name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kUnboundedWindow: {
        auto& op = g.Add<UnboundedWindow<Val>>(name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kCountWindow: {
        auto& op = g.Add<CountWindow<Val>>(static_cast<std::size_t>(n.p0),
                                           name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kPartitionedWindow: {
        const GroupKeyFn key{n.p1};
        if (replicate) {
          auto chain = MakeKeyedParallel<PartitionedWindow<Val, GroupKeyFn>>(
              g, options.parallel_replicas, key, key,
              static_cast<std::size_t>(n.p0), name);
          in0->AddSubscriber(*chain.input);
          outputs[i] = chain.output;
          RegisterChain(b, chain, n.kind);
        } else {
          auto& op = g.Add<PartitionedWindow<Val, GroupKeyFn>>(
              key, static_cast<std::size_t>(n.p0), name);
          in0->AddSubscriber(op.input());
          outputs[i] = &op;
          b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        }
        break;
      }
      case OpKind::kUnion: {
        auto& op = g.Add<Union<Val>>(name);
        in0->AddSubscriber(op.left());
        in1->AddSubscriber(op.right());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kHashJoin: {
        const JoinKeyFn key{n.p0};
        if (replicate) {
          auto chain = MakeParallelHashJoin<Val, Val>(
              g, options.parallel_replicas, key, key, CombineFn{}, name);
          in0->AddSubscriber(*chain.left);
          in1->AddSubscriber(*chain.right);
          outputs[i] = chain.output;
          RegisterChain(b, chain, n.kind);
          for (Node* r : chain.replicas) {
            auto* user = dynamic_cast<memory::MemoryUser*>(r);
            PIPES_CHECK(user != nullptr);
            result->memory_users.push_back(user);
          }
        } else if (options.spillable_joins) {
          auto& op = g.Add(MakeSpillableHashJoin<Val, Val>(key, key,
                                                           CombineFn{}, name));
          in0->AddSubscriber(op.left());
          in1->AddSubscriber(op.right());
          outputs[i] = &op;
          b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
          result->memory_users.push_back(&op);
        } else {
          auto& op =
              g.Add(MakeHashJoin<Val, Val>(key, key, CombineFn{}, name));
          in0->AddSubscriber(op.left());
          in1->AddSubscriber(op.right());
          outputs[i] = &op;
          b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
          result->memory_users.push_back(&op);
        }
        break;
      }
      case OpKind::kSum: {
        auto& op = g.Add<SumOp>(ToU64Fn{}, name);
        auto& enc = g.Add<Map<std::uint64_t, Val, EncodeSumFn>>(
            EncodeSumFn{}, name + "-encode");
        in0->AddSubscriber(op.input());
        op.AddSubscriber(enc.input());
        outputs[i] = &enc;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        b.AddHandle(-1, OpKind::kMap, false, ConservationRule::kExact, &enc);
        break;
      }
      case OpKind::kGroupSum: {
        const GroupKeyFn key{n.p0};
        auto& enc = g.Add<Map<std::pair<Val, std::uint64_t>, Val,
                              EncodeGroupFn>>(EncodeGroupFn{},
                                              name + "-encode");
        if (replicate) {
          auto chain = MakeKeyedParallel<GroupSumOp>(
              g, options.parallel_replicas, key, key, ToU64Fn{}, name);
          in0->AddSubscriber(*chain.input);
          chain.output->AddSubscriber(enc.input());
          RegisterChain(b, chain, n.kind);
        } else {
          auto& op = g.Add<GroupSumOp>(key, ToU64Fn{}, name);
          in0->AddSubscriber(op.input());
          op.AddSubscriber(enc.input());
          b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        }
        outputs[i] = &enc;
        b.AddHandle(-1, OpKind::kMap, false, ConservationRule::kExact, &enc);
        break;
      }
      case OpKind::kDistinct: {
        if (replicate) {
          auto chain = MakeKeyedParallel<Distinct<Val>>(
              g, options.parallel_replicas, IdentityKeyFn{}, name);
          in0->AddSubscriber(*chain.input);
          outputs[i] = chain.output;
          RegisterChain(b, chain, n.kind);
        } else {
          auto& op = g.Add<Distinct<Val>>(name);
          in0->AddSubscriber(op.input());
          outputs[i] = &op;
          b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        }
        break;
      }
      case OpKind::kDifference: {
        auto& op = g.Add<Difference<Val>>(name);
        in0->AddSubscriber(op.left());
        in1->AddSubscriber(op.right());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kIntersect: {
        auto& op = g.Add<Intersect<Val>>(name);
        in0->AddSubscriber(op.left());
        in1->AddSubscriber(op.right());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kIStream: {
        auto& op = g.Add<IStream<Val>>(name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
      case OpKind::kDStream: {
        auto& op = g.Add<DStream<Val>>(name);
        in0->AddSubscriber(op.input());
        outputs[i] = &op;
        b.AddHandle(idx, n.kind, true, RuleFor(n.kind), &op);
        break;
      }
    }
  }

  Source<Val>* tail = outputs[spec.root];
  if (options.canary != CanaryKind::kNone) {
    auto& canary = g.Add<CanaryPipe>(options.canary);
    tail->AddSubscriber(canary.input());
    tail = &canary;
  }
  auto& sink = g.Add<OracleSink>();
  tail->AddSubscriber(sink.input());
  result->sink = &sink;
  return result;
}

}  // namespace pipes::testing
