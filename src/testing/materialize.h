#ifndef PIPES_TESTING_MATERIALIZE_H_
#define PIPES_TESTING_MATERIALIZE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/graph.h"
#include "src/core/source.h"
#include "src/memory/memory_user.h"
#include "src/testing/oracles.h"
#include "src/testing/spec.h"

/// \file
/// Turns a `PlanSpec` into a physical `QueryGraph` wired to an `OracleSink`,
/// with the fault-injection hooks the harness arms need: seeded buffer
/// interposition (bounded for the overflow arm), reordering sources over
/// disordered inputs, gated sources for watermark starvation, keyed-parallel
/// replication of one partitionable node, and canary mutations for the
/// harness self-check.

namespace pipes::testing {

/// A deliberate bug planted between the plan root and the sink. The
/// self-check materializes otherwise-correct cases with each canary in turn
/// and asserts that some oracle catches every kind.
enum class CanaryKind {
  kNone,
  kDropElement,         ///< Silently drops every 17th element.
  kDuplicateElement,    ///< Emits every 13th element twice.
  kCorruptPayload,      ///< Adds 1 to every 19th payload.
  kWidenInterval,       ///< Extends every 11th element's validity by 5.
  kStaleReplay,         ///< Re-emits an old payload at the current instant.
  kHeartbeatOvershoot,  ///< Forwards watermarks 7 ticks into the future.
};
inline constexpr int kNumCanaryKinds =
    static_cast<int>(CanaryKind::kHeartbeatOvershoot) + 1;

const char* CanaryKindName(CanaryKind kind);

struct MaterializeOptions {
  /// Batch size of the vector sources (1 = per-element path).
  std::size_t source_batch = 1;

  /// Feed raw (disordered) inputs through `ReorderingSource` with
  /// slack = the stream profile's disorder bound, instead of pre-sorted
  /// canonical inputs through `VectorSource`.
  bool use_reorder_source = false;

  /// When nonzero, interpose a `Buffer<Val>` on each edge with probability
  /// `buffer_prob`, drawn from a Random seeded with `buffer_seed`.
  std::uint64_t buffer_seed = 0;
  double buffer_prob = 0.0;

  /// Capacity of interposed buffers; 0 = unbounded. Small capacities are
  /// the buffer-overflow fault arm (oldest elements shed).
  std::size_t bounded_capacity = 0;

  /// Spec index of a key-partitionable node to replicate via
  /// MakeKeyedParallel / MakeParallelHashJoin; -1 = none.
  int parallel_node = -1;
  std::size_t parallel_replicas = 2;

  /// Stream id whose source is gated shut (emits nothing until
  /// `Materialized::OpenGates`); -1 = none. The watermark-starvation arm.
  int gated_stream = -1;

  /// Build hash joins with spillable SweepAreas (MakeSpillableHashJoin):
  /// a mid-run budget squeeze then pages state to disk losslessly instead
  /// of shedding, so the multiset-exact oracle still applies. The spill
  /// fault arm (docs/memory.md).
  bool spillable_joins = false;

  /// Planted bug for the self-check.
  CanaryKind canary = CanaryKind::kNone;
};

/// One physical node the oracle layer watches.
struct OpHandle {
  /// Index into `PlanSpec::nodes`, or -1 for auxiliary nodes the
  /// materializer added (encoder maps, buffers, partition/merge stages).
  int spec_index = -1;
  OpKind kind = OpKind::kSource;
  /// Whether `kind` is meaningful and the catalog/Describe cross-check
  /// applies (spec nodes and their parallel replicas).
  bool check_descriptor = false;
  ConservationRule rule = ConservationRule::kNone;
  const Node* node = nullptr;
};

/// Source that stays silent (no elements, no heartbeats, no done) until
/// opened — starves downstream watermarks for as long as the harness wants.
class GatedVectorSource : public Source<Val> {
 public:
  explicit GatedVectorSource(Stream elements,
                             std::string name = "gated-source")
      : Source<Val>(std::move(name)), elements_(std::move(elements)) {}

  void Open() { open_ = true; }
  bool open() const { return open_; }

  bool is_active() const override { return true; }
  bool HasWork() const override { return open_ && !done_sent_; }
  bool IsFinished() const override { return done_sent_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kSource;
    d.op = "gated-source";
    // While closed the source provably advances no watermark (lint P022).
    d.emits_heartbeats = open_;
    d.dataflow.total_elements = elements_.size();
    d.notes.push_back(
        "gated source emits nothing until opened; downstream watermarks "
        "starve while it is closed");
    return d;
  }

  std::size_t DoWork(std::size_t max_units) override {
    if (!open_) return 0;
    std::size_t n = 0;
    while (n < max_units && index_ < elements_.size()) {
      this->Transfer(elements_[index_++]);
      ++n;
    }
    if (index_ == elements_.size() && !done_sent_) {
      this->TransferDone();
      done_sent_ = true;
      ++n;
    }
    return n;
  }

 private:
  Stream elements_;
  std::size_t index_ = 0;
  bool open_ = false;
  bool done_sent_ = false;
};

/// The physical realization of one fuzz case.
struct Materialized {
  QueryGraph graph;
  OracleSink* sink = nullptr;
  /// Per-node oracle handles: every spec node's physical operator plus the
  /// auxiliary nodes (encoders, buffers, partition/merge, replicas).
  std::vector<OpHandle> ops;
  /// Load-shedding joins, for MemoryManager registration by the memory
  /// fault arm.
  std::vector<memory::MemoryUser*> memory_users;
  /// Gated sources (watermark-starvation arm).
  std::vector<GatedVectorSource*> gates;
  /// Catalog-vs-Describe mismatches discovered while building.
  std::vector<Failure> build_failures;

  void OpenGates() {
    for (GatedVectorSource* g : gates) g->Open();
  }

  /// Sum of ShedCount over every node (buffers, joins, reorder sources).
  std::uint64_t TotalShed() const;
};

/// Builds the physical graph. `raw_inputs[s]` is stream s as generated
/// (possibly disordered); sources replay the canonicalized form unless
/// `use_reorder_source` is set. `profiles` supplies per-stream disorder
/// slack. The spec must be valid.
std::unique_ptr<Materialized> Materialize(const PlanSpec& spec,
                                          const std::vector<Stream>& raw_inputs,
                                          const std::vector<StreamProfile>& profiles,
                                          const MaterializeOptions& options = {});

}  // namespace pipes::testing

#endif  // PIPES_TESTING_MATERIALIZE_H_
