#include "src/testing/oracles.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/testing/reference.h"

namespace pipes::testing {

namespace {

// Limits how much a misbehaving run can accumulate; the first violation is
// the interesting one anyway.
constexpr std::size_t kMaxRecordedViolations = 8;

std::string FormatElem(const Elem& e) {
  std::ostringstream out;
  out << e.payload << "@[" << e.start() << ", ";
  if (e.end() == kMaxTimestamp) {
    out << "inf";
  } else {
    out << e.end();
  }
  out << ")";
  return out.str();
}

// Multiplicity of `payload` in the snapshot of `s` at instant `t`.
long CountAt(const Stream& s, Val payload, Timestamp t) {
  long n = 0;
  for (const Elem& e : s) {
    if (e.payload == payload && e.start() <= t && t < e.end()) ++n;
  }
  return n;
}

}  // namespace

std::optional<std::string> CompareSnapshots(const Stream& actual,
                                            const Stream& expected,
                                            SnapRel rel) {
  // Per-payload boundary sweep over (actual - expected) multiplicities.
  // Snapshot counts only change at interval endpoints, so checking the
  // running sum at each boundary checks every instant.
  std::map<Val, std::map<Timestamp, long>> delta;
  for (const Elem& e : actual) {
    delta[e.payload][e.start()] += 1;
    if (e.end() != kMaxTimestamp) delta[e.payload][e.end()] -= 1;
  }
  for (const Elem& e : expected) {
    delta[e.payload][e.start()] -= 1;
    if (e.end() != kMaxTimestamp) delta[e.payload][e.end()] += 1;
  }
  for (const auto& [payload, boundaries] : delta) {
    long running = 0;
    for (const auto& [t, d] : boundaries) {
      running += d;
      const bool bad =
          rel == SnapRel::kEqual ? running != 0 : running > 0;
      if (bad) {
        std::ostringstream out;
        out << "snapshot mismatch at t=" << t << ": payload " << payload
            << " has multiplicity " << CountAt(actual, payload, t)
            << ", reference has " << CountAt(expected, payload, t)
            << (rel == SnapRel::kSubset ? " (subset relation required)" : "");
        return out.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> CompareMultisets(const Stream& actual,
                                            const Stream& expected) {
  Stream a = actual;
  Stream e = expected;
  SortCanonical(a);
  SortCanonical(e);
  const std::size_t n = std::min(a.size(), e.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].payload == e[i].payload && a[i].interval == e[i].interval) {
      continue;
    }
    std::ostringstream out;
    out << "multiset mismatch at canonical index " << i << ": got "
        << FormatElem(a[i]) << ", reference has " << FormatElem(e[i]);
    return out.str();
  }
  if (a.size() != e.size()) {
    std::ostringstream out;
    out << "multiset size mismatch: got " << a.size() << " elements, "
        << "reference has " << e.size();
    if (a.size() > e.size()) {
      out << "; first extra element " << FormatElem(a[n]);
    } else {
      out << "; first missing element " << FormatElem(e[n]);
    }
    return out.str();
  }
  return std::nullopt;
}

std::optional<std::string> CheckConservation(ConservationRule rule,
                                             std::uint64_t in,
                                             std::uint64_t out,
                                             std::uint64_t shed,
                                             std::uint64_t queued,
                                             const std::string& node_name) {
  std::ostringstream msg;
  switch (rule) {
    case ConservationRule::kNone:
      return std::nullopt;
    case ConservationRule::kExact:
      if (out == in) return std::nullopt;
      msg << node_name << ": expected out == in, got in=" << in
          << " out=" << out;
      return msg.str();
    case ConservationRule::kAtMostIn:
      if (out <= in) return std::nullopt;
      msg << node_name << ": expected out <= in, got in=" << in
          << " out=" << out;
      return msg.str();
    case ConservationRule::kExactPlusShed:
      if (in == out + shed + queued) return std::nullopt;
      msg << node_name << ": expected in == out + shed + queued, got in="
          << in << " out=" << out << " shed=" << shed
          << " queued=" << queued;
      return msg.str();
    case ConservationRule::kAtMostDoubleIn:
      if (out <= 2 * in + 1) return std::nullopt;
      msg << node_name << ": expected out <= 2*in + 1, got in=" << in
          << " out=" << out;
      return msg.str();
  }
  return std::nullopt;
}

std::optional<std::string> CheckDescriptor(OpKind kind,
                                           const NodeDescriptor& descriptor,
                                           const std::string& node_name) {
  const OpTraits& traits = TraitsOf(kind);
  if (descriptor.blocking != traits.blocking) {
    std::ostringstream out;
    out << node_name << " (" << traits.name << "): catalog says blocking="
        << traits.blocking << " but Describe() reports "
        << descriptor.blocking;
    return out.str();
  }
  if (descriptor.key_partitionable != traits.key_partitionable) {
    std::ostringstream out;
    out << node_name << " (" << traits.name
        << "): catalog says key_partitionable=" << traits.key_partitionable
        << " but Describe() reports " << descriptor.key_partitionable;
    return out.str();
  }
  return std::nullopt;
}

void OracleSink::PortElement(int /*port_id*/, const Elem& e) {
  if (done_seen_) {
    Violate("post-done", "element " + FormatElem(e) + " after end-of-stream");
  }
  if (e.start() < last_start_) {
    std::ostringstream out;
    out << "element " << FormatElem(e)
        << " starts before the previous element (start " << last_start_
        << ")";
    Violate("order", out.str());
  }
  if (max_watermark_ > kMinTimestamp && e.start() < max_watermark_) {
    std::ostringstream out;
    out << "element " << FormatElem(e)
        << " starts behind the notified watermark " << max_watermark_;
    Violate("watermark-element", out.str());
  }
  last_start_ = std::max(last_start_, e.start());
  collected_.push_back(e);
}

void OracleSink::PortProgress(int /*port_id*/, Timestamp watermark) {
  if (done_seen_) {
    std::ostringstream out;
    out << "watermark " << watermark << " after end-of-stream";
    Violate("post-done", out.str());
  }
  if (watermark < max_watermark_) {
    std::ostringstream out;
    out << "watermark regressed from " << max_watermark_ << " to "
        << watermark;
    Violate("watermark-monotone", out.str());
  }
  max_watermark_ = std::max(max_watermark_, watermark);
}

void OracleSink::PortDone(int port_id) {
  done_seen_ = true;
  Sink<Val>::PortDone(port_id);
}

void OracleSink::Violate(const char* oracle, std::string detail) {
  if (violations_.size() >= kMaxRecordedViolations) return;
  violations_.push_back(Failure{oracle, std::move(detail)});
}

}  // namespace pipes::testing
