#ifndef PIPES_TESTING_ORACLES_H_
#define PIPES_TESTING_ORACLES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/sink.h"
#include "src/testing/spec.h"

/// \file
/// The oracle layer of the simulation harness: everything that can declare a
/// run wrong. Differential comparisons (multiset-exact and
/// snapshot-equivalent, the algebra's two correctness granularities), the
/// streaming invariants observed at the sink (ordered output, elements never
/// behind the watermark, nothing after end-of-stream), per-node metrics
/// conservation, and the catalog-vs-`Describe()` contract cross-check.

namespace pipes::testing {

/// One oracle violation. `oracle` is a stable short tag (used by the
/// self-check to assert *which* oracle fired), `detail` is for humans.
struct Failure {
  std::string oracle;
  std::string detail;
};

/// How an arm's output must relate to the reference snapshot-wise.
enum class SnapRel {
  /// Identical snapshot at every instant.
  kEqual,
  /// `actual`'s snapshot is a sub-multiset of `expected`'s at every instant
  /// (the lossy arms: shedding may only ever remove).
  kSubset,
};

/// Compares snapshots at every instant via a per-payload boundary sweep.
/// Returns a description of the first violating (payload, instant) or
/// nullopt when the relation holds.
std::optional<std::string> CompareSnapshots(const Stream& actual,
                                            const Stream& expected,
                                            SnapRel rel);

/// Element-multiset equality under the canonical (start, end, payload)
/// order. Strictly stronger than CompareSnapshots(..., kEqual); only valid
/// for plans without resegmenting operators.
std::optional<std::string> CompareMultisets(const Stream& actual,
                                            const Stream& expected);

/// What the elements-in/out/shed counters of one physical node must satisfy
/// after a fully drained run.
enum class ConservationRule {
  kNone,            // sweep-expanding binaries: no useful linear bound
  kExact,           // out == in (maps, windows, union, istream, merge)
  kAtMostIn,        // out <= in (filter, distinct, dstream, slide < size)
  kExactPlusShed,   // in == out + shed (buffers after drain)
  kAtMostDoubleIn,  // out <= 2*in + 1 (sweep-line aggregates' segments)
};

std::optional<std::string> CheckConservation(ConservationRule rule,
                                             std::uint64_t in,
                                             std::uint64_t out,
                                             std::uint64_t shed,
                                             std::uint64_t queued,
                                             const std::string& node_name);

/// Cross-checks the generator catalog's contract card against the live
/// operator's `Describe()`: blocking and key-partitionability must agree,
/// or the generator is composing plans from stale metadata.
std::optional<std::string> CheckDescriptor(OpKind kind,
                                           const NodeDescriptor& descriptor,
                                           const std::string& node_name);

/// Terminal sink that records the output stream while checking the
/// streaming invariants on the fly:
///   * non-decreasing element starts (per-run ordered output),
///   * no element behind a previously notified watermark,
///   * watermark monotonicity,
///   * silence after end-of-stream.
class OracleSink : public Sink<Val> {
 public:
  explicit OracleSink(std::string name = "oracle-sink")
      : Sink<Val>(std::move(name)) {}

  const Stream& collected() const { return collected_; }
  const std::vector<Failure>& violations() const { return violations_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = Sink<Val>::Describe();
    d.op = "oracle-sink";
    return d;
  }

 protected:
  void PortElement(int port_id, const Elem& e) override;
  void PortProgress(int port_id, Timestamp watermark) override;
  void PortDone(int port_id) override;

 private:
  void Violate(const char* oracle, std::string detail);

  Stream collected_;
  std::vector<Failure> violations_;
  Timestamp last_start_ = kMinTimestamp;
  Timestamp max_watermark_ = kMinTimestamp;
  bool done_seen_ = false;
};

}  // namespace pipes::testing

#endif  // PIPES_TESTING_ORACLES_H_
