#include "src/testing/reference.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "src/common/macros.h"

namespace pipes::testing {

namespace {

bool CanonicalLess(const Elem& a, const Elem& b) {
  return std::tuple(a.start(), a.end(), a.payload) <
         std::tuple(b.start(), b.end(), b.payload);
}

/// Sorted unique endpoint set of `intervals` — the sweep-line boundaries.
std::vector<Timestamp> Boundaries(const std::vector<TimeInterval>& intervals) {
  std::vector<Timestamp> b;
  b.reserve(intervals.size() * 2);
  for (const TimeInterval& iv : intervals) {
    b.push_back(iv.start);
    b.push_back(iv.end);
  }
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  return b;
}

/// Scalar sum sweep: one output element per covered elementary segment,
/// exactly the segmentation the physical SweepLineAggregator produces
/// (boundaries at every input endpoint, gap segments skipped).
Stream SumSweep(const Stream& in) {
  Stream out;
  if (in.empty()) return out;
  std::vector<TimeInterval> ivs;
  ivs.reserve(in.size());
  for (const Elem& e : in) ivs.push_back(e.interval);
  const std::vector<Timestamp> b = Boundaries(ivs);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    const Timestamp a = b[i];
    std::uint64_t sum = 0;
    bool covered = false;
    for (const Elem& e : in) {
      if (e.start() <= a && a < e.end()) {
        sum += static_cast<std::uint64_t>(e.payload);
        covered = true;
      }
    }
    if (covered) out.push_back(Elem(BoundSum(sum), b[i], b[i + 1]));
  }
  return out;
}

Stream GroupSumSweep(const Stream& in, Val groups) {
  std::map<Val, Stream> by_key;
  for (const Elem& e : in) by_key[GroupKey(e.payload, groups)].push_back(e);
  Stream out;
  for (auto& [key, elems] : by_key) {
    std::vector<TimeInterval> ivs;
    ivs.reserve(elems.size());
    for (const Elem& e : elems) ivs.push_back(e.interval);
    const std::vector<Timestamp> b = Boundaries(ivs);
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
      const Timestamp a = b[i];
      std::uint64_t sum = 0;
      bool covered = false;
      for (const Elem& e : elems) {
        if (e.start() <= a && a < e.end()) {
          sum += static_cast<std::uint64_t>(e.payload);
          covered = true;
        }
      }
      if (covered) out.push_back(Elem(EncodeGroup(key, sum), b[i], b[i + 1]));
    }
  }
  return out;
}

Stream DistinctRef(const Stream& in) {
  std::map<Val, std::vector<TimeInterval>> by_payload;
  for (const Elem& e : in) by_payload[e.payload].push_back(e.interval);
  Stream out;
  for (auto& [payload, ivs] : by_payload) {
    std::sort(ivs.begin(), ivs.end(),
              [](const TimeInterval& a, const TimeInterval& b) {
                return a.start < b.start;
              });
    // Coalesce overlapping-or-abutting intervals into maximal pieces.
    TimeInterval cur = ivs.front();
    for (std::size_t i = 1; i < ivs.size(); ++i) {
      if (ivs[i].start <= cur.end) {
        cur.end = std::max(cur.end, ivs[i].end);
      } else {
        out.push_back(Elem(payload, cur));
        cur = ivs[i];
      }
    }
    out.push_back(Elem(payload, cur));
  }
  return out;
}

/// Per-payload coverage-count sweep emitting `mult(cl, cr)` copies of each
/// elementary segment. Shared by difference (max(0, cl-cr)) and intersect
/// (min(cl, cr)).
template <typename MultFn>
Stream CountSweep(const Stream& left, const Stream& right, MultFn&& mult) {
  struct Sides {
    std::vector<TimeInterval> l, r;
  };
  std::map<Val, Sides> by_payload;
  for (const Elem& e : left) by_payload[e.payload].l.push_back(e.interval);
  for (const Elem& e : right) by_payload[e.payload].r.push_back(e.interval);
  Stream out;
  for (auto& [payload, sides] : by_payload) {
    std::vector<TimeInterval> all = sides.l;
    all.insert(all.end(), sides.r.begin(), sides.r.end());
    const std::vector<Timestamp> b = Boundaries(all);
    for (std::size_t i = 0; i + 1 < b.size(); ++i) {
      const Timestamp a = b[i];
      int cl = 0;
      int cr = 0;
      for (const TimeInterval& iv : sides.l) {
        if (iv.start <= a && a < iv.end) ++cl;
      }
      for (const TimeInterval& iv : sides.r) {
        if (iv.start <= a && a < iv.end) ++cr;
      }
      const int copies = mult(cl, cr);
      for (int c = 0; c < copies; ++c) {
        out.push_back(Elem(payload, b[i], b[i + 1]));
      }
    }
  }
  return out;
}

/// ROWS-n expiry over one arrival-ordered sequence: element i stays valid
/// until its n-th successor arrives (at least one instant), forever if it
/// never does — the CountWindow/PartitionedWindow contract.
Stream RowsWindow(const Stream& in, std::size_t rows) {
  Stream out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    Timestamp expiry = kMaxTimestamp;
    if (i + rows < in.size()) {
      expiry = std::max(in[i + rows].start(), in[i].start() + 1);
    }
    out.push_back(Elem(in[i].payload, in[i].start(), expiry));
  }
  return out;
}

Timestamp AlignUp(Timestamp t, Timestamp slide) {
  return ((t + slide - 1) / slide) * slide;
}

}  // namespace

void SortCanonical(Stream& s) {
  std::sort(s.begin(), s.end(), CanonicalLess);
}

Stream EvalReference(const PlanSpec& spec,
                     const std::vector<Stream>& canonical_inputs) {
  spec.CheckValid();
  std::vector<Stream> memo(spec.nodes.size());
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    const SpecNode& n = spec.nodes[i];
    const Stream* in0 = n.in0 >= 0 ? &memo[n.in0] : nullptr;
    const Stream* in1 = n.in1 >= 0 ? &memo[n.in1] : nullptr;
    Stream out;
    switch (n.kind) {
      case OpKind::kSource:
        PIPES_CHECK(n.stream < static_cast<int>(canonical_inputs.size()));
        // Keep arrival order: count/partitioned windows depend on it.
        memo[i] = canonical_inputs[n.stream];
        continue;
      case OpKind::kFilter:
        for (const Elem& e : *in0) {
          if (PredEval(n, e.payload)) out.push_back(e);
        }
        break;
      case OpKind::kMap:
        for (const Elem& e : *in0) {
          out.push_back(Elem(MapEval(n, e.payload), e.interval));
        }
        break;
      case OpKind::kTimeWindow:
        for (const Elem& e : *in0) {
          out.push_back(Elem(e.payload, e.start(), e.start() + n.p0));
        }
        break;
      case OpKind::kSlideWindow:
        for (const Elem& e : *in0) {
          const Timestamp first = AlignUp(e.start(), n.p1);
          const Timestamp last = AlignUp(e.start() + n.p0, n.p1);
          if (first < last) out.push_back(Elem(e.payload, first, last));
        }
        break;
      case OpKind::kUnboundedWindow:
        for (const Elem& e : *in0) {
          out.push_back(Elem(e.payload, e.start(), kMaxTimestamp));
        }
        break;
      case OpKind::kCountWindow:
        out = RowsWindow(*in0, static_cast<std::size_t>(n.p0));
        break;
      case OpKind::kPartitionedWindow: {
        std::map<Val, Stream> parts;
        for (const Elem& e : *in0) {
          parts[GroupKey(e.payload, n.p1)].push_back(e);
        }
        for (const auto& [key, part] : parts) {
          const Stream w = RowsWindow(part, static_cast<std::size_t>(n.p0));
          out.insert(out.end(), w.begin(), w.end());
        }
        break;
      }
      case OpKind::kUnion:
        out = *in0;
        out.insert(out.end(), in1->begin(), in1->end());
        break;
      case OpKind::kHashJoin: {
        std::unordered_map<Val, std::vector<const Elem*>> by_key;
        for (const Elem& l : *in0) {
          by_key[JoinKey(l.payload, n.p0)].push_back(&l);
        }
        for (const Elem& r : *in1) {
          auto it = by_key.find(JoinKey(r.payload, n.p0));
          if (it == by_key.end()) continue;
          for (const Elem* l : it->second) {
            if (l->interval.Overlaps(r.interval)) {
              out.push_back(Elem(JoinCombine(l->payload, r.payload),
                                 l->interval.Intersect(r.interval)));
            }
          }
        }
        break;
      }
      case OpKind::kSum:
        out = SumSweep(*in0);
        break;
      case OpKind::kGroupSum:
        out = GroupSumSweep(*in0, n.p0);
        break;
      case OpKind::kDistinct:
        out = DistinctRef(*in0);
        break;
      case OpKind::kDifference:
        out = CountSweep(*in0, *in1,
                         [](int cl, int cr) { return std::max(0, cl - cr); });
        break;
      case OpKind::kIntersect:
        out = CountSweep(*in0, *in1,
                         [](int cl, int cr) { return std::min(cl, cr); });
        break;
      case OpKind::kIStream:
        for (const Elem& e : *in0) {
          out.push_back(Elem::Point(e.payload, e.start()));
        }
        break;
      case OpKind::kDStream:
        for (const Elem& e : *in0) {
          if (e.end() != kMaxTimestamp) {
            out.push_back(Elem::Point(e.payload, e.end()));
          }
        }
        break;
    }
    SortCanonical(out);
    memo[i] = std::move(out);
  }
  return memo[spec.root];
}

}  // namespace pipes::testing
