#ifndef PIPES_TESTING_REFERENCE_H_
#define PIPES_TESTING_REFERENCE_H_

#include <vector>

#include "src/testing/spec.h"

/// \file
/// The materializing reference executor: evaluates a `PlanSpec` over fully
/// materialized vectors, one node at a time, straight from the logical
/// (snapshot) semantics of each operator — no scheduling, no watermarks, no
/// staging buffers. It shares nothing with the operator implementations in
/// src/algebra/ except the canonical scalar functions in spec.h, which is
/// what gives the differential oracles their power: a bug would have to be
/// made twice, independently, to go unnoticed.
///
/// For operators with a deterministic physical decomposition (everything
/// except the resegmenting ones — see OpTraits) the reference reproduces the
/// exact element multiset the physical operator emits, so plans without
/// resegmenting operators can be compared element-for-element. Resegmenting
/// operators (distinct, difference, intersect, aggregates' per-plan
/// variation) are compared by snapshot equivalence instead.

namespace pipes::testing {

/// Evaluates `spec` over the canonical (arrival-ordered) input streams.
/// Shared nodes are evaluated once. Returns the root's output; all outputs
/// except raw sources are sorted by (start, end, payload).
Stream EvalReference(const PlanSpec& spec,
                     const std::vector<Stream>& canonical_inputs);

/// Sorts by (start, end, payload): the canonical order used for multiset
/// comparison.
void SortCanonical(Stream& s);

}  // namespace pipes::testing

#endif  // PIPES_TESTING_REFERENCE_H_
