#include "src/testing/spec.h"

#include <algorithm>
#include <sstream>

#include "src/common/macros.h"

namespace pipes::testing {

namespace {

// Indexed by OpKind. blocking / key_partitionable mirror the operators'
// NodeDescriptor contract cards and are cross-checked at materialization
// time (Materialize aborts the case on a mismatch).
constexpr OpTraits kTraits[kNumOpKinds] = {
    // name, arity, blocking, partitionable, resegmenting, monotone,
    // src-attached, segmentation-sensitive
    {"source", 0, false, false, false, true, false, false},
    {"filter", 1, false, false, false, true, false, false},
    {"map", 1, false, false, false, true, false, false},
    // All windows, istream, and dstream read interval boundaries (truncate
    // from the start / emit points at start/end), so they are
    // segmentation-sensitive: they may not consume resegmenting subplans.
    {"time-window", 1, false, false, false, true, false, true},
    {"slide-window", 1, false, false, false, true, false, true},
    {"unbounded-window", 1, false, false, false, true, false, true},
    {"count-window", 1, false, false, false, false, true, true},
    {"partitioned-window", 1, false, true, false, false, true, true},
    {"union", 2, false, false, false, true, false, false},
    {"hash-join", 2, true, true, false, true, false, false},
    // The sweep operators (sum, group-sum, difference, intersect) emit one
    // element per elementary boundary segment; the boundary set is fixed by
    // the input multiset alone, so their output multiset is
    // schedule-independent and they are NOT resegmenting. Distinct is: how
    // far intervals coalesce depends on watermark timing at arrival.
    {"sum", 1, true, false, false, false, false, false},
    {"group-sum", 1, true, true, false, false, false, false},
    {"distinct", 1, true, true, true, true, false, false},
    {"difference", 2, true, false, false, false, false, false},
    {"intersect", 2, true, false, false, true, false, false},
    {"istream", 1, false, false, false, true, false, true},
    {"dstream", 1, true, false, false, true, false, true},
};

}  // namespace

const OpTraits& TraitsOf(OpKind kind) {
  const int i = static_cast<int>(kind);
  PIPES_CHECK(i >= 0 && i < kNumOpKinds);
  return kTraits[i];
}

const char* OpKindName(OpKind kind) { return TraitsOf(kind).name; }

bool PlanSpec::HasKind(OpKind kind) const {
  for (const SpecNode& n : nodes) {
    if (n.kind == kind) return true;
  }
  return false;
}

bool PlanSpec::Resegmenting() const {
  for (const SpecNode& n : nodes) {
    if (TraitsOf(n.kind).resegmenting) return true;
  }
  return false;
}

bool PlanSpec::Monotone() const {
  for (const SpecNode& n : nodes) {
    if (!TraitsOf(n.kind).monotone) return false;
  }
  return true;
}

std::vector<int> PlanSpec::PartitionableNodes() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (TraitsOf(nodes[i].kind).key_partitionable) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

int PlanSpec::NumStreams() const {
  int n = 0;
  for (const SpecNode& node : nodes) {
    if (node.kind == OpKind::kSource) n = std::max(n, node.stream + 1);
  }
  return n;
}

std::vector<bool> PlanSpec::ResegmentedSubplans() const {
  std::vector<bool> out(nodes.size(), false);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SpecNode& n = nodes[i];
    bool r = TraitsOf(n.kind).resegmenting;
    // Bounds-guarded so CheckValid can call this before validating indices.
    if (n.in0 >= 0 && n.in0 < static_cast<int>(i)) r = r || out[n.in0];
    if (n.in1 >= 0 && n.in1 < static_cast<int>(i)) r = r || out[n.in1];
    out[i] = r;
  }
  return out;
}

void PlanSpec::CheckValid() const {
  PIPES_CHECK(!nodes.empty());
  PIPES_CHECK(root >= 0 && root < static_cast<int>(nodes.size()));
  const std::vector<bool> resegmented = ResegmentedSubplans();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SpecNode& n = nodes[i];
    const OpTraits& t = TraitsOf(n.kind);
    if (t.segmentation_sensitive && n.in0 >= 0) {
      PIPES_CHECK_MSG(!resegmented[n.in0],
                      "boundary-reading op over a resegmenting subplan: its "
                      "output would be schedule-dependent even for correct "
                      "executions");
    }
    if (t.arity == 0) {
      PIPES_CHECK(n.stream >= 0);
      PIPES_CHECK(n.in0 == -1 && n.in1 == -1);
    } else {
      // Children strictly precede parents: the vector is a topo order.
      PIPES_CHECK(n.in0 >= 0 && n.in0 < static_cast<int>(i));
      if (t.arity == 2) {
        PIPES_CHECK(n.in1 >= 0 && n.in1 < static_cast<int>(i));
      } else {
        PIPES_CHECK(n.in1 == -1);
      }
      if (t.source_attached) {
        PIPES_CHECK_MSG(nodes[n.in0].kind == OpKind::kSource,
                        "order-sensitive window must sit on a source");
      }
    }
  }
  // Every node must be reachable from the root (no dangling work).
  std::vector<bool> reachable(nodes.size(), false);
  std::vector<int> stack = {root};
  while (!stack.empty()) {
    const int i = stack.back();
    stack.pop_back();
    if (reachable[i]) continue;
    reachable[i] = true;
    if (nodes[i].in0 >= 0) stack.push_back(nodes[i].in0);
    if (nodes[i].in1 >= 0) stack.push_back(nodes[i].in1);
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    PIPES_CHECK_MSG(reachable[i], "plan contains a node unreachable from root");
  }
}

std::string PlanSpec::ToString() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const SpecNode& n = nodes[i];
    out << '#' << i << ' ' << OpKindName(n.kind);
    if (n.kind == OpKind::kSource) {
      out << "(stream " << n.stream << ")";
    } else {
      out << "(#" << n.in0;
      if (n.in1 >= 0) out << ", #" << n.in1;
      out << ")";
    }
    switch (n.kind) {
      case OpKind::kFilter:
        out << " pred: mod(" << n.p0 << "*x+" << n.p1 << ", " << n.p2
            << ") < " << n.p3;
        break;
      case OpKind::kMap:
        out << " f: " << n.p0 << "*x+" << n.p1;
        break;
      case OpKind::kTimeWindow:
        out << " size " << n.p0;
        break;
      case OpKind::kSlideWindow:
        out << " size " << n.p0 << " slide " << n.p1;
        break;
      case OpKind::kCountWindow:
        out << " rows " << n.p0;
        break;
      case OpKind::kPartitionedWindow:
        out << " rows " << n.p0 << " groups " << n.p1;
        break;
      case OpKind::kHashJoin:
        out << " key mod " << n.p0;
        break;
      case OpKind::kGroupSum:
        out << " groups " << n.p0;
        break;
      default:
        break;
    }
    if (static_cast<int>(i) == root) out << "  <- root";
    out << '\n';
  }
  return out.str();
}

Stream GenerateStream(Random& rng, const StreamProfile& profile) {
  Stream out;
  out.reserve(profile.num_elements);
  ZipfDistribution zipf(
      static_cast<std::size_t>(std::max<Val>(profile.domain, 1)),
      profile.zipf_theta > 0 ? profile.zipf_theta : 0.5);
  Timestamp t = 0;
  for (std::size_t i = 0; i < profile.num_elements; ++i) {
    Val payload;
    if (profile.zipf_theta > 0) {
      payload = static_cast<Val>(zipf.Sample(rng));
    } else {
      payload = rng.UniformInt(0, std::max<Val>(profile.domain - 1, 0));
    }
    out.push_back(Elem::Point(payload, t));
    const double roll = rng.UniformDouble();
    if (roll < profile.burst_prob) {
      // Burst: stay on (or right next to) the current instant.
      t += rng.UniformInt(0, 1);
    } else if (roll < profile.burst_prob + profile.lull_prob) {
      t += rng.UniformInt(profile.lull_step / 2,
                          std::max<Timestamp>(profile.lull_step, 1));
    } else {
      t += rng.UniformInt(1, std::max<Timestamp>(profile.max_step, 1));
    }
  }
  if (profile.disorder > 0) {
    for (Elem& e : out) {
      const Timestamp back = rng.UniformInt(0, profile.disorder);
      const Timestamp s = std::max<Timestamp>(0, e.start() - back);
      e.interval = TimeInterval(s, s + 1);
    }
  }
  return out;
}

Stream Canonicalize(const Stream& raw) {
  Stream out = raw;
  std::stable_sort(out.begin(), out.end(), [](const Elem& a, const Elem& b) {
    return a.start() < b.start();
  });
  return out;
}

}  // namespace pipes::testing
