#ifndef PIPES_TESTING_SPEC_H_
#define PIPES_TESTING_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/element.h"

/// \file
/// The simulation harness's plan IR: a `PlanSpec` is a tiny, serializable
/// description of a query plan over int64 payloads, independent of the
/// physical operator objects. One spec is materialized many ways (per
/// element, batched, buffered, replicated, rewritten) and evaluated once by
/// the materializing reference executor; the differential oracles compare
/// the results. Keeping the IR separate from `QueryGraph` is what makes
/// shrinking and replay cheap: a case is (spec, inputs), both plain data.

namespace pipes::testing {

using Val = std::int64_t;
using Elem = StreamElement<Val>;
using Stream = std::vector<Elem>;

/// Operator catalog of the generator. Every kind maps 1:1 onto an operator
/// (or operator cluster) in src/algebra/.
enum class OpKind : int {
  kSource = 0,
  kFilter,
  kMap,
  kTimeWindow,
  kSlideWindow,
  kUnboundedWindow,
  kCountWindow,
  kPartitionedWindow,
  kUnion,
  kHashJoin,
  kSum,
  kGroupSum,
  kDistinct,
  kDifference,
  kIntersect,
  kIStream,
  kDStream,
};
inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kDStream) + 1;

/// Static contract card of one catalog entry. The blocking /
/// key_partitionable flags mirror `NodeDescriptor`; the materializer
/// cross-checks them against the live operator's `Describe()` so the
/// generator can never drift from the real contracts.
struct OpTraits {
  const char* name;
  /// 0 = source, 1 = unary, 2 = binary.
  int arity;
  /// Mirrors NodeDescriptor::blocking (results stage until progress).
  bool blocking;
  /// Mirrors NodeDescriptor::key_partitionable (safe under MakeKeyedParallel).
  bool key_partitionable;
  /// The physical output's *interval decomposition* depends on watermark
  /// timing (e.g. Distinct releases coalesced pieces at whatever watermark
  /// happens to arrive). Such plans are compared by snapshot equivalence,
  /// never by element multiset.
  bool resegmenting;
  /// Removing input elements can only remove output (snapshot-subset-safe
  /// under load shedding). False for aggregates, count windows, difference.
  bool monotone;
  /// Must consume a source directly: the operator's semantics depend on
  /// per-stream arrival order (CQL attaches these windows to scans).
  bool source_attached;
  /// The operator reads its input's interval *boundaries*, not just its
  /// snapshots: windows truncate from the start, istream/dstream emit at
  /// boundaries. Such operators are not well-defined over a resegmenting
  /// subplan (two correct schedules of Distinct legitimately produce
  /// different boundaries), so the generator never composes them.
  bool segmentation_sensitive;
};

const OpTraits& TraitsOf(OpKind kind);

/// One plan node. Children precede parents in `PlanSpec::nodes` (topological
/// order); `in0`/`in1` are indices into that vector. Parameter slots:
///
///   kSource:            stream = input-stream index
///   kFilter:            pred(x) = PosMod(p0*x + p1, p2) < p3
///   kMap:               f(x) = p0*x + p1 (wrapping int64)
///   kTimeWindow:        p0 = size
///   kSlideWindow:       p0 = size, p1 = slide
///   kCountWindow:       p0 = rows
///   kPartitionedWindow: p0 = rows, p1 = groups (key = PosMod(x, p1))
///   kHashJoin:          p0 = key modulus (key = PosMod(x, p0))
///   kGroupSum:          p0 = groups (key = PosMod(x, p0))
///   others:             none
struct SpecNode {
  OpKind kind = OpKind::kSource;
  int in0 = -1;
  int in1 = -1;
  int stream = -1;
  std::int64_t p0 = 0;
  std::int64_t p1 = 0;
  std::int64_t p2 = 0;
  std::int64_t p3 = 0;
};

struct PlanSpec {
  std::vector<SpecNode> nodes;
  int root = -1;

  bool HasKind(OpKind kind) const;
  /// Any node whose physical output decomposition is schedule-dependent.
  bool Resegmenting() const;
  /// Every node tolerates input loss with snapshot-subset output.
  bool Monotone() const;
  /// Indices of nodes eligible for keyed replication.
  std::vector<int> PartitionableNodes() const;
  int NumStreams() const;
  /// resegmented[i] = the subplan rooted at node i contains a resegmenting
  /// operator, i.e. its physical interval decomposition is
  /// schedule-dependent and only its snapshots are deterministic.
  std::vector<bool> ResegmentedSubplans() const;
  /// Aborts (PIPES_CHECK) on structural violations: bad indices, wrong
  /// arity, source-attached ops not sitting on a source, unreachable root,
  /// segmentation-sensitive ops consuming resegmenting subplans.
  void CheckValid() const;
  std::string ToString() const;
};

// --- Canonical scalar functions ---------------------------------------------
// Shared by the reference executor and the materialized operators, so both
// sides compute identical payloads. All arithmetic goes through uint64 (wraps,
// never UB) and every payload-producing function bounds its result into
// [0, kValModulus), so stacked maps/joins/sums can never overflow anything —
// in particular the running sums inside aggregates stay far below 2^63.

inline constexpr Val kValModulus = 1'000'003;  // prime

/// Euclidean remainder: always in [0, m).
inline Val PosMod(Val x, Val m) {
  const Val r = x % m;
  return r < 0 ? r + m : r;
}

/// a*x + b wrapped through uint64, folded into [0, kValModulus).
inline Val BoundMulAdd(Val a, Val x, Val b) {
  const std::uint64_t v = static_cast<std::uint64_t>(a) *
                              static_cast<std::uint64_t>(x) +
                          static_cast<std::uint64_t>(b);
  return static_cast<Val>(v % static_cast<std::uint64_t>(kValModulus));
}

inline bool PredEval(const SpecNode& n, Val x) {
  return PosMod(BoundMulAdd(n.p0, x, n.p1), n.p2) < n.p3;
}

inline Val MapEval(const SpecNode& n, Val x) {
  return BoundMulAdd(n.p0, x, n.p1);
}

inline Val JoinKey(Val x, Val modulus) { return PosMod(x, modulus); }

inline Val JoinCombine(Val l, Val r) {
  const std::uint64_t v = static_cast<std::uint64_t>(l) * 31u +
                          static_cast<std::uint64_t>(r) * 131u + 7u;
  return static_cast<Val>(v % static_cast<std::uint64_t>(kValModulus));
}

inline Val GroupKey(Val x, Val groups) { return PosMod(x, groups); }

/// Sums accumulate in uint64 (wrapping, UB-free); this folds a finished sum
/// back into the bounded payload domain.
inline Val BoundSum(std::uint64_t sum) {
  return static_cast<Val>(sum % static_cast<std::uint64_t>(kValModulus));
}

/// Deterministic encoding of a (group key, sum) pair back into one Val so
/// grouped-aggregate outputs stay in the all-int64 algebra.
inline Val EncodeGroup(Val key, std::uint64_t sum) {
  return static_cast<Val>(
      (static_cast<std::uint64_t>(key) * 131071u + sum) %
      static_cast<std::uint64_t>(kValModulus));
}

// --- Input streams ----------------------------------------------------------

/// Shape of one generated input stream: traffic/NEXMark-flavoured integer
/// payloads (Zipf-skewed ids) on a timeline with bursts and lulls, plus
/// bounded disorder.
struct StreamProfile {
  std::size_t num_elements = 64;
  /// Payloads are drawn from [0, domain).
  Val domain = 100;
  /// 0 = uniform payloads; > 0 = Zipf skew (hot keys, like auction ids).
  double zipf_theta = 0.0;
  /// Probability that a step stays at (almost) the same timestamp — bursts.
  double burst_prob = 0.2;
  /// Probability of a large forward jump — lulls between bursts.
  double lull_prob = 0.05;
  Timestamp max_step = 4;
  Timestamp lull_step = 64;
  /// Maximum backward displacement applied after generation (0 = in start
  /// order). Disordered streams are fed through a ReorderingSource with
  /// slack >= disorder, so nothing is ever dropped by the adapter.
  Timestamp disorder = 0;
};

/// Draws a stream with the profile's shape. With disorder = 0 the result is
/// non-decreasing in start; otherwise starts may be displaced backwards by
/// at most `disorder`.
Stream GenerateStream(Random& rng, const StreamProfile& profile);

/// The arrival order every execution arm (and the reference) agrees on:
/// stable sort by start. A ReorderingSource with sufficient slack releases
/// ties in arrival order, which is exactly this.
Stream Canonicalize(const Stream& raw);

const char* OpKindName(OpKind kind);

}  // namespace pipes::testing

#endif  // PIPES_TESTING_SPEC_H_
