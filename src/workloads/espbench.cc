#include "src/workloads/espbench.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace pipes::workloads {

EspbenchGenerator::EspbenchGenerator(EspbenchOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  PIPES_CHECK(options_.num_machines > 0);
  PIPES_CHECK(options_.sensors_per_machine > 0);
  PIPES_CHECK(options_.duration_ms > 0);
  PIPES_CHECK(options_.mean_interarrival_ms > 0);
  PIPES_CHECK(options_.disorder_slack_ms >= 0);
  PIPES_CHECK(options_.late_extra_ms >= 0);
}

double EspbenchGenerator::RateMultiplier(Timestamp t) const {
  if (options_.burst_period_ms <= 0) return 1.0;
  const Timestamp phase = t % options_.burst_period_ms;
  const auto burst_len = static_cast<Timestamp>(
      options_.burst_duty * static_cast<double>(options_.burst_period_ms));
  return phase < burst_len ? options_.burst_intensity : 1.0;
}

bool EspbenchGenerator::OverloadActive(std::int64_t machine, Timestamp t,
                                       double* factor) const {
  for (const OverloadEpisode& episode : options_.overloads) {
    if (episode.machine == machine && t >= episode.begin && t < episode.end) {
      if (factor != nullptr) *factor = episode.power_factor;
      return true;
    }
  }
  return false;
}

MachineEvent EspbenchGenerator::MakeEvent(Timestamp t) {
  MachineEvent e;
  e.machine = static_cast<std::int64_t>(
      rng_.NextBounded(static_cast<std::uint64_t>(options_.num_machines)));
  e.sensor = static_cast<std::int32_t>(
      rng_.NextBounded(static_cast<std::uint64_t>(
          options_.sensors_per_machine)));
  e.timestamp = t;
  // Normal operation: 60-90% of base power plus Gaussian sensor noise;
  // overload episodes multiply the draw past the machine's rated power.
  const double load = 0.6 + 0.3 * rng_.UniformDouble();
  double power = options_.base_power_w * load +
                 rng_.Gaussian() * options_.power_noise_stddev;
  double factor = 1.0;
  if (OverloadActive(e.machine, t, &factor)) power *= factor;
  e.power_w = std::max(0.0, power);
  e.temperature_c = options_.base_temperature_c +
                    10.0 * (e.power_w / options_.base_power_w) +
                    rng_.Gaussian() * options_.temperature_noise_stddev;
  return e;
}

void EspbenchGenerator::Pump() {
  // Any future logical event has arrival >= its timestamp >= clock_, so
  // once clock_ passes the earliest pending arrival that element can be
  // released without violating arrival order.
  while (!exhausted_ &&
         (pending_.empty() || clock_ <= pending_.top().arrival)) {
    const double rate = RateMultiplier(clock_);
    const double gap = rng_.Exponential(rate / options_.mean_interarrival_ms);
    clock_ += std::max<Timestamp>(1, static_cast<Timestamp>(std::llround(gap)));
    if (clock_ >= options_.duration_ms) {
      exhausted_ = true;
      break;
    }
    Pending p;
    p.event = MakeEvent(clock_);
    p.seq = seq_++;
    Timestamp delay = 0;
    if (options_.late_fraction > 0 && rng_.Bernoulli(options_.late_fraction)) {
      // A true straggler: beyond the declared slack by at least 1 ms.
      delay = options_.disorder_slack_ms + 1 +
              static_cast<Timestamp>(rng_.NextBounded(
                  static_cast<std::uint64_t>(options_.late_extra_ms) + 1));
      ++late_injected_;
    } else if (options_.disorder_slack_ms > 0 &&
               rng_.Bernoulli(options_.disorder_fraction)) {
      delay = static_cast<Timestamp>(rng_.NextBounded(
          static_cast<std::uint64_t>(options_.disorder_slack_ms) + 1));
    }
    p.arrival = p.event.timestamp + delay;
    pending_.push(std::move(p));
  }
}

std::optional<MachineEvent> EspbenchGenerator::Next() {
  Pump();
  if (pending_.empty()) return std::nullopt;
  MachineEvent e = pending_.top().event;
  pending_.pop();
  return e;
}

std::vector<MachineInfo> GenerateMachines(const EspbenchOptions& options) {
  // Derived stream: the dimension is reproducible from the seed without
  // perturbing the telemetry draw sequence.
  Random rng(options.seed ^ 0x9e3779b97f4a7c15ull);
  static const char* const kTypes[] = {"press", "mill", "lathe", "oven"};
  std::vector<MachineInfo> machines;
  machines.reserve(static_cast<std::size_t>(options.num_machines));
  for (std::int64_t id = 0; id < options.num_machines; ++id) {
    MachineInfo m;
    m.id = id;
    m.production_group = static_cast<std::int32_t>(rng.NextBounded(4));
    m.rated_power_w = options.base_power_w * rng.UniformDouble(1.15, 1.5);
    m.type = kTypes[id % 4];
    machines.push_back(std::move(m));
  }
  return machines;
}

std::vector<ProductionOrder> GenerateOrders(const EspbenchOptions& options) {
  Random rng(options.seed ^ 0xbf58476d1ce4e5b9ull);
  std::vector<ProductionOrder> orders;
  orders.reserve(static_cast<std::size_t>(options.num_orders));
  for (std::int64_t id = 0; id < options.num_orders; ++id) {
    ProductionOrder o;
    o.id = id;
    o.machine = static_cast<std::int64_t>(
        rng.NextBounded(static_cast<std::uint64_t>(options.num_machines)));
    o.quantity = rng.UniformInt(1, 500);
    o.start = static_cast<Timestamp>(rng.NextBounded(
        static_cast<std::uint64_t>(std::max<Timestamp>(
            1, options.duration_ms * 3 / 4))));
    const Timestamp span =
        options.duration_ms / 8 +
        static_cast<Timestamp>(rng.NextBounded(static_cast<std::uint64_t>(
            std::max<Timestamp>(1, options.duration_ms / 4))));
    o.due = o.start + std::max<Timestamp>(1, span);
    orders.push_back(std::move(o));
  }
  std::sort(orders.begin(), orders.end(),
            [](const ProductionOrder& a, const ProductionOrder& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.id < b.id;
            });
  return orders;
}

}  // namespace pipes::workloads
