#ifndef PIPES_WORKLOADS_ESPBENCH_H_
#define PIPES_WORKLOADS_ESPBENCH_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/time.h"

/// \file
/// Enterprise stream-processing workload modelled on ESPBench (Hesse et
/// al.): machine/sensor power telemetry from a production floor, enriched
/// against ERP-style dimension relations (machine master data, production
/// orders). Unlike the traffic and NEXMark generators this feed is
/// deliberately *imperfect* — tunable bounded disorder, beyond-bound
/// stragglers ("late data"), and load bursts — so it exercises the
/// reordering adapter, the dataflow disorder annotations, and the
/// late-data-sensitive query variants the benchmark is about.

namespace pipes::workloads {

/// One sensor measurement from one machine. `timestamp` is the event time;
/// the generator may *deliver* events out of timestamp order (see
/// `EspbenchOptions`).
struct MachineEvent {
  std::int64_t machine = 0;
  std::int32_t sensor = 0;
  Timestamp timestamp = 0;  // event time, ms since epoch start
  double power_w = 0;
  double temperature_c = 0;

  friend bool operator==(const MachineEvent&, const MachineEvent&) = default;
};

/// ERP dimension: machine master data. A static relation — rows are valid
/// on [0, kMaxTimestamp).
struct MachineInfo {
  std::int64_t id = 0;
  std::int32_t production_group = 0;  // cost-center style grouping
  double rated_power_w = 0;           // nameplate capacity
  std::string type;                   // "press", "mill", ...

  friend bool operator==(const MachineInfo&, const MachineInfo&) = default;
};

/// ERP dimension: a production order occupying one machine. Temporal
/// relation — a row is valid while the order is scheduled, [start, due).
struct ProductionOrder {
  std::int64_t id = 0;
  std::int64_t machine = 0;
  std::int64_t quantity = 0;
  Timestamp start = 0;
  Timestamp due = 0;

  friend bool operator==(const ProductionOrder&,
                         const ProductionOrder&) = default;
};

/// Injected ground truth for the threshold-alerting query: `machine` draws
/// `power_factor` times its normal power during [begin, end).
struct OverloadEpisode {
  Timestamp begin = 0;
  Timestamp end = 0;
  std::int64_t machine = 0;
  double power_factor = 2.0;
};

struct EspbenchOptions {
  std::uint64_t seed = 42;
  std::int64_t num_machines = 12;
  std::int32_t sensors_per_machine = 3;
  Timestamp duration_ms = 60'000;
  /// Mean gap between consecutive events (across all machines), off-burst.
  double mean_interarrival_ms = 2.0;

  // --- Power model ------------------------------------------------------
  double base_power_w = 1000.0;
  double power_noise_stddev = 40.0;
  double base_temperature_c = 60.0;
  double temperature_noise_stddev = 3.0;
  /// Overload episodes (deterministic alerting ground truth).
  std::vector<OverloadEpisode> overloads;

  // --- Burst knob -------------------------------------------------------
  /// When > 0, the arrival rate cycles: the first `burst_duty` fraction of
  /// every period runs at `burst_intensity` times the base rate.
  Timestamp burst_period_ms = 0;
  double burst_duty = 0.2;
  double burst_intensity = 4.0;

  // --- Disorder / late-data knobs ---------------------------------------
  /// Bound on injected delivery delay: an event's arrival is its timestamp
  /// plus a delay in [0, disorder_slack_ms]. 0 = perfectly ordered feed.
  /// Delivered-stream guarantee (pinned by espbench_test): a delivered
  /// timestamp regresses from the running maximum by at most this bound,
  /// so a `ReorderingSource` with exactly this slack drops nothing.
  Timestamp disorder_slack_ms = 0;
  /// Fraction of events delayed at all (the rest ship immediately).
  double disorder_fraction = 0.25;
  /// Fraction of events delayed *beyond* the declared slack — true late
  /// data that a slack-bounded reorderer is expected to drop.
  double late_fraction = 0.0;
  /// How far beyond the slack stragglers arrive (at most).
  Timestamp late_extra_ms = 50;

  // --- ERP dimensions ---------------------------------------------------
  std::int64_t num_orders = 30;
};

/// Deterministic machine-telemetry generator. `Next()` yields events in
/// *arrival* order: timestamps are non-decreasing only when all disorder
/// knobs are zero. Wrap with `algebra::ReorderingSource` (slack =
/// `disorder_slack_ms`) to restore the start-order invariant.
class EspbenchGenerator {
 public:
  explicit EspbenchGenerator(EspbenchOptions options);

  /// Next event in arrival order; nullopt once the feed is drained.
  std::optional<MachineEvent> Next();

  const EspbenchOptions& options() const { return options_; }

  /// Arrival-rate multiplier at event time `t` (burst cycle). Exposed for
  /// tests.
  double RateMultiplier(Timestamp t) const;

  /// True if an overload episode covers `machine` at time `t`; fills
  /// `factor` with its power multiplier.
  bool OverloadActive(std::int64_t machine, Timestamp t,
                      double* factor = nullptr) const;

  /// Events injected with a delay beyond `disorder_slack_ms` so far.
  std::uint64_t late_injected() const { return late_injected_; }

 private:
  struct Pending {
    Timestamp arrival = 0;
    std::uint64_t seq = 0;  // FIFO tie-break: determinism at equal arrivals
    MachineEvent event;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.arrival != b.arrival) return a.arrival > b.arrival;
      return a.seq > b.seq;
    }
  };

  MachineEvent MakeEvent(Timestamp t);
  /// Generates logical events (in timestamp order) until the earliest
  /// pending arrival can no longer be preempted by a future event.
  void Pump();

  EspbenchOptions options_;
  Random rng_;
  Timestamp clock_ = 0;
  bool exhausted_ = false;
  std::uint64_t seq_ = 0;
  std::uint64_t late_injected_ = 0;
  std::priority_queue<Pending, std::vector<Pending>, Later> pending_;
};

/// Machine master data, deterministic from `options.seed`. Rated power sits
/// 15–50% above `base_power_w`, so normal operation stays under it and
/// `OverloadEpisode`s (factor 2) exceed it.
std::vector<MachineInfo> GenerateMachines(const EspbenchOptions& options);

/// `options.num_orders` production orders, deterministic from
/// `options.seed`, sorted by `start` (the relation-as-stream feed order).
std::vector<ProductionOrder> GenerateOrders(const EspbenchOptions& options);

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_ESPBENCH_H_
