#include "src/workloads/espbench_cql.h"

#include <algorithm>
#include <utility>

#include "src/workloads/espbench_queries.h"

namespace pipes::workloads {

using relational::Field;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Schema EspbenchEventSchema() {
  return Schema({Field{"machine", ValueType::kInt},
                 Field{"sensor", ValueType::kInt},
                 Field{"power", ValueType::kDouble},
                 Field{"temp", ValueType::kDouble}});
}

Schema EspbenchMachineSchema() {
  return Schema({Field{"id", ValueType::kInt},
                 Field{"grp", ValueType::kInt},
                 Field{"rated_power", ValueType::kDouble},
                 Field{"mtype", ValueType::kString}});
}

Schema EspbenchOrderSchema() {
  return Schema({Field{"id", ValueType::kInt},
                 Field{"machine", ValueType::kInt},
                 Field{"quantity", ValueType::kInt}});
}

namespace {

Tuple EventTuple(const MachineEvent& e) {
  return Tuple({Value(e.machine), Value(std::int64_t{e.sensor}),
                Value(e.power_w), Value(e.temperature_c)});
}

}  // namespace

std::vector<StreamElement<Tuple>> EspbenchEventRows(
    const EspbenchOptions& options) {
  const Timestamp slack = options.disorder_slack_ms;
  EspbenchGenerator generator(options);
  // Reorder exactly as AddReorderedEspbenchSource would: release an event
  // once nothing earlier than its timestamp can still arrive, drop
  // beyond-slack stragglers.
  std::vector<StreamElement<MachineEvent>> delivered;
  Timestamp max_seen = kMinTimestamp;
  while (auto event = generator.Next()) {
    const Timestamp t = event->timestamp;
    if (max_seen > kMinTimestamp && t < max_seen - slack) continue;
    max_seen = std::max(max_seen, t);
    delivered.push_back(StreamElement<MachineEvent>::Point(*event, t));
  }
  std::stable_sort(delivered.begin(), delivered.end(),
                   [](const StreamElement<MachineEvent>& a,
                      const StreamElement<MachineEvent>& b) {
                     return a.start() < b.start();
                   });
  std::vector<StreamElement<Tuple>> rows;
  rows.reserve(delivered.size());
  for (const StreamElement<MachineEvent>& e : delivered) {
    rows.push_back(StreamElement<Tuple>(EventTuple(e.payload), e.interval));
  }
  return rows;
}

std::vector<StreamElement<Tuple>> EspbenchMachineRows(
    const std::vector<MachineInfo>& machines) {
  std::vector<StreamElement<Tuple>> rows;
  rows.reserve(machines.size());
  for (const MachineInfo& m : machines) {
    rows.push_back(StreamElement<Tuple>(
        Tuple({Value(m.id), Value(std::int64_t{m.production_group}),
               Value(m.rated_power_w), Value(m.type)}),
        0, kMaxTimestamp));
  }
  return rows;
}

std::vector<StreamElement<Tuple>> EspbenchOrderRows(
    const std::vector<ProductionOrder>& orders) {
  OrderValidity validity;
  std::vector<StreamElement<Tuple>> rows;
  rows.reserve(orders.size());
  for (const ProductionOrder& o : orders) {
    rows.push_back(StreamElement<Tuple>(
        Tuple({Value(o.id), Value(o.machine), Value(o.quantity)}),
        validity(o)));
  }
  return rows;
}

const std::vector<EspbenchCqlQuery>& EspbenchCqlCatalog() {
  static const std::vector<EspbenchCqlQuery> kCatalog = {
      {"threshold-alert",
       "SELECT machine, power FROM events WHERE power > 1300.0"},
      {"order-enrichment",
       "SELECT e.machine, o.id, o.quantity FROM events AS e, orders AS o "
       "WHERE e.machine = o.machine"},
      {"machine-power",
       "SELECT machine, AVG(power) AS avg_power FROM events "
       "[RANGE 1000 MILLISECONDS SLIDE 500 MILLISECONDS] GROUP BY machine"},
      {"over-capacity",
       "SELECT e.machine, e.power, m.rated_power FROM events AS e, "
       "machines AS m WHERE e.machine = m.id AND e.power > m.rated_power"},
      {"late-data-audit",
       "SELECT machine, COUNT(power) AS n FROM events "
       "[RANGE 500 MILLISECONDS SLIDE 500 MILLISECONDS] GROUP BY machine"},
  };
  return kCatalog;
}

Status BindEspbenchStreams(engine::Engine& engine,
                           const EspbenchOptions& options,
                           std::size_t batch_size) {
  auto& events = engine.graph().Add<VectorSource<Tuple>>(
      EspbenchEventRows(options), "espbench(events)", batch_size);
  PIPES_RETURN_IF_ERROR(
      engine.BindStream("events", EspbenchEventSchema(), events));
  auto& machines = engine.graph().Add<VectorSource<Tuple>>(
      EspbenchMachineRows(GenerateMachines(options)), "espbench(machines)",
      batch_size);
  PIPES_RETURN_IF_ERROR(
      engine.BindStream("machines", EspbenchMachineSchema(), machines));
  auto& orders = engine.graph().Add<VectorSource<Tuple>>(
      EspbenchOrderRows(GenerateOrders(options)), "espbench(orders)",
      batch_size);
  PIPES_RETURN_IF_ERROR(
      engine.BindStream("orders", EspbenchOrderSchema(), orders));
  return Status::OK();
}

}  // namespace pipes::workloads
