#ifndef PIPES_WORKLOADS_ESPBENCH_CQL_H_
#define PIPES_WORKLOADS_ESPBENCH_CQL_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/element.h"
#include "src/engine/engine.h"
#include "src/relational/schema.h"
#include "src/relational/tuple.h"
#include "src/workloads/espbench.h"

/// \file
/// The relational face of the ESPBench workload: tuple schemas for the
/// telemetry stream and the ERP dimensions, row materializers, a catalog
/// of the canonical queries as CQL text, and a one-call `Engine` binding —
/// so the declarative front end runs the same scenario the typed fragment
/// builders (espbench_queries.h) wire by hand.

namespace pipes::workloads {

/// Telemetry stream `events`: (machine:int, sensor:int, power:double,
/// temp:double). Point rows at event time.
relational::Schema EspbenchEventSchema();

/// Dimension `machines`: (id:int, grp:int, rated_power:double,
/// mtype:string). Rows valid on [0, kMaxTimestamp).
relational::Schema EspbenchMachineSchema();

/// Dimension `orders`: (id:int, machine:int, quantity:int). Rows valid on
/// [start, due).
relational::Schema EspbenchOrderSchema();

/// Drains a (possibly disordered) generator through the reordering adapter
/// and materializes the delivered telemetry as start-ordered tuple rows.
std::vector<StreamElement<relational::Tuple>> EspbenchEventRows(
    const EspbenchOptions& options);

std::vector<StreamElement<relational::Tuple>> EspbenchMachineRows(
    const std::vector<MachineInfo>& machines);

std::vector<StreamElement<relational::Tuple>> EspbenchOrderRows(
    const std::vector<ProductionOrder>& orders);

/// One canonical query of the workload, as registrable CQL text over the
/// streams `BindEspbenchStreams` installs.
struct EspbenchCqlQuery {
  std::string name;
  std::string text;
};

/// The catalog: threshold alerting, order enrichment, windowed machine
/// power, over-capacity enrichment, late-data audit counts. Every entry
/// compiles against the schemas above.
const std::vector<EspbenchCqlQuery>& EspbenchCqlCatalog();

/// Adds the three feeds to `engine.graph()` and binds them as `events`,
/// `machines`, and `orders`, ready for `Register`ing catalog queries.
Status BindEspbenchStreams(engine::Engine& engine,
                           const EspbenchOptions& options,
                           std::size_t batch_size = 8);

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_ESPBENCH_CQL_H_
