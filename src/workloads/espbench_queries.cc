#include "src/workloads/espbench_queries.h"

#include <memory>

#include "src/common/macros.h"

namespace pipes::workloads {

FunctionSource<MachineEvent>& AddEspbenchSource(QueryGraph& graph,
                                                EspbenchOptions options,
                                                std::size_t batch_size) {
  PIPES_CHECK_MSG(options.disorder_slack_ms == 0 && options.late_fraction == 0,
                  "disordered feed needs AddReorderedEspbenchSource");
  auto generator = std::make_shared<EspbenchGenerator>(std::move(options));
  const EspbenchOptions& opts = generator->options();
  auto& source = graph.Add<FunctionSource<MachineEvent>>(
      [generator]() -> std::optional<StreamElement<MachineEvent>> {
        auto event = generator->Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->timestamp;
        return StreamElement<MachineEvent>::Point(std::move(*event), t);
      },
      "espbench", batch_size);
  // Dataflow feed contract: interarrival gaps are clamped to >= 1 ms, and
  // nothing past duration_ms. Bursts raise the short-term rate to
  // burst_intensity events per gap, so declare the peak.
  const double peak = opts.burst_period_ms > 0 ? opts.burst_intensity : 1.0;
  source.DeclareRatePerUnit(peak / opts.mean_interarrival_ms);
  source.DeclareTotalElements(
      static_cast<std::uint64_t>(opts.duration_ms));
  source.DeclareValidityExtent(1);  // point elements
  return source;
}

algebra::ReorderingSource<MachineEvent>& AddReorderedEspbenchSource(
    QueryGraph& graph, EspbenchOptions options) {
  const Timestamp slack = options.disorder_slack_ms;
  auto generator = std::make_shared<EspbenchGenerator>(std::move(options));
  const EspbenchOptions& opts = generator->options();
  auto& source = graph.Add<algebra::ReorderingSource<MachineEvent>>(
      [generator]() -> std::optional<StreamElement<MachineEvent>> {
        auto event = generator->Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->timestamp;
        return StreamElement<MachineEvent>::Point(std::move(*event), t);
      },
      slack, "espbench-reorder");
  // Raw-feed contract, forwarded through the reorderer: gaps clamp to
  // >= 1 ms (at most one event per ms, none past duration_ms), point
  // validity. Bursts raise the short-term rate up to burst_intensity.
  const double peak = opts.burst_period_ms > 0 ? opts.burst_intensity : 1.0;
  source.DeclareRatePerUnit(peak / opts.mean_interarrival_ms);
  source.DeclareTotalElements(static_cast<std::uint64_t>(opts.duration_ms));
  source.DeclareValidityExtent(1);
  return source;
}

VectorSource<MachineInfo>& AddMachineDimensionSource(
    QueryGraph& graph, std::vector<MachineInfo> machines,
    std::size_t batch_size) {
  std::vector<StreamElement<MachineInfo>> rows;
  rows.reserve(machines.size());
  for (MachineInfo& m : machines) {
    rows.push_back(StreamElement<MachineInfo>(std::move(m), 0, kMaxTimestamp));
  }
  return graph.Add<VectorSource<MachineInfo>>(std::move(rows),
                                             "erp-machines", batch_size);
}

VectorSource<ProductionOrder>& AddOrderDimensionSource(
    QueryGraph& graph, const std::vector<ProductionOrder>& orders,
    std::size_t batch_size) {
  OrderValidity validity;
  std::vector<StreamElement<ProductionOrder>> rows;
  rows.reserve(orders.size());
  for (const ProductionOrder& o : orders) {
    rows.push_back(StreamElement<ProductionOrder>(o, validity(o)));
  }
  return graph.Add<VectorSource<ProductionOrder>>(std::move(rows),
                                                 "erp-orders", batch_size);
}

PowerThresholdAlert& BuildPowerThresholdAlertQuery(
    QueryGraph& graph, Source<MachineEvent>& events, double threshold_w,
    Timestamp min_duration, Timestamp avg_window, Timestamp avg_slide) {
  MachinePowerAverage& averages =
      BuildMachinePowerQuery(graph, events, avg_window, avg_slide);
  auto& detector = graph.Add<PowerThresholdAlert>(
      MachineAvgKey{}, AvgPowerAbove{threshold_w}, min_duration,
      "overload-alert");
  averages.AddSubscriber(detector.input());
  return detector;
}

Source<EventWithOrder>& BuildOrderEnrichmentJoin(
    QueryGraph& graph, Source<MachineEvent>& events,
    Source<ProductionOrder>& orders) {
  auto join = algebra::MakeHashJoin<MachineEvent, ProductionOrder>(
      MachineOf{}, OrderMachineOf{}, CombineEventOrder{}, "events-x-orders");
  auto& node = graph.Add(std::move(join));
  events.AddSubscriber(node.left());
  orders.AddSubscriber(node.right());
  return node;
}

MachinePowerAverage& BuildMachinePowerQuery(QueryGraph& graph,
                                            Source<MachineEvent>& events,
                                            Timestamp range,
                                            Timestamp slide) {
  auto& window = graph.Add<algebra::SlideWindow<MachineEvent>>(
      range, slide, "power-window");
  auto& average = graph.Add<MachinePowerAverage>(MachineOf{}, PowerOf{},
                                                 "machine-power");
  events.AddSubscriber(window.input());
  window.AddSubscriber(average.input());
  return average;
}

Source<EventWithMachine>& BuildOverCapacityQuery(
    QueryGraph& graph, Source<MachineEvent>& events,
    Source<MachineInfo>& machines) {
  auto join = algebra::MakeHashJoin<MachineEvent, MachineInfo>(
      MachineOf{}, MachineInfoId{}, CombineEventMachine{},
      "events-x-machines");
  auto& node = graph.Add(std::move(join));
  events.AddSubscriber(node.left());
  machines.AddSubscriber(node.right());
  auto& over = graph.Add<algebra::Filter<EventWithMachine, OverRatedPower>>(
      OverRatedPower{}, "over-capacity");
  node.AddSubscriber(over.input());
  return over;
}

MachineEventCount& BuildLateDataAuditQuery(QueryGraph& graph,
                                           Source<MachineEvent>& events,
                                           Timestamp period) {
  auto& window = graph.Add<algebra::SlideWindow<MachineEvent>>(
      period, period, "audit-window");
  auto& counts = graph.Add<MachineEventCount>(MachineOf{}, PowerOf{},
                                              "late-data-audit");
  events.AddSubscriber(window.input());
  window.AddSubscriber(counts.input());
  return counts;
}

}  // namespace pipes::workloads
