#ifndef PIPES_WORKLOADS_ESPBENCH_QUERIES_H_
#define PIPES_WORKLOADS_ESPBENCH_QUERIES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/aggregate.h"
#include "src/algebra/filter.h"
#include "src/algebra/join.h"
#include "src/algebra/reorder.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/workloads/espbench.h"
#include "src/workloads/traffic_queries.h"  // SustainedConditionDetector

/// \file
/// The ESPBench query library: typed plan fragments for the enterprise
/// scenario's continuous queries —
///
///  * sustained power-threshold alerting (ESPBench "machine power" flavour),
///  * stream <-> ERP enrichment joins (orders, machine master data),
///  * windowed per-machine power aggregation,
///  * a late-data-sensitive tumbling audit count over the reordered feed.
///
/// The raw feed may be disordered (see `EspbenchOptions`), so the canonical
/// entry point is `AddReorderedEspbenchSource`, which restores the
/// start-order invariant with a slack equal to the generator's declared
/// disorder bound.

namespace pipes::workloads {

/// Wraps an `EspbenchGenerator` into an active source of point elements.
/// Only valid for a perfectly ordered feed: requires all disorder knobs to
/// be zero (checked), since downstream operators assume start order.
FunctionSource<MachineEvent>& AddEspbenchSource(QueryGraph& graph,
                                                EspbenchOptions options,
                                                std::size_t batch_size = 1);

/// Wraps a (possibly disordered) `EspbenchGenerator` in a
/// `ReorderingSource` with slack = `options.disorder_slack_ms`: emits in
/// start order, drops beyond-slack stragglers (counted on the node).
algebra::ReorderingSource<MachineEvent>& AddReorderedEspbenchSource(
    QueryGraph& graph, EspbenchOptions options);

// --- ERP dimension feeds -------------------------------------------------------
// Dimensions enter the graph through the relation-as-stream path: each row
// is one element whose validity is the row's temporal scope.

/// Machine master data as a stream of rows valid on [0, kMaxTimestamp).
VectorSource<MachineInfo>& AddMachineDimensionSource(
    QueryGraph& graph, std::vector<MachineInfo> machines,
    std::size_t batch_size = 1);

/// Production orders as a stream of rows valid on [start, due). `orders`
/// must be sorted by `start` (as `GenerateOrders` returns them).
VectorSource<ProductionOrder>& AddOrderDimensionSource(
    QueryGraph& graph, const std::vector<ProductionOrder>& orders,
    std::size_t batch_size = 1);

// --- Named functors ------------------------------------------------------------

struct MachineOf {
  std::int64_t operator()(const MachineEvent& e) const { return e.machine; }
};
struct PowerOf {
  double operator()(const MachineEvent& e) const { return e.power_w; }
};
struct PowerAbove {
  double threshold_w;
  bool operator()(const MachineEvent& e) const {
    return e.power_w > threshold_w;
  }
};
struct MachineInfoId {
  std::int64_t operator()(const MachineInfo& m) const { return m.id; }
};
struct OrderMachineOf {
  std::int64_t operator()(const ProductionOrder& o) const {
    return o.machine;
  }
};
/// Validity of an order row: scheduled span, never empty.
struct OrderValidity {
  TimeInterval operator()(const ProductionOrder& o) const {
    return TimeInterval(o.start, std::max(o.due, o.start + 1));
  }
};

// --- Q1: sustained power-threshold alerting ------------------------------------

/// Predicate/key on the (machine, avg power) pairs of MachinePowerAverage.
struct AvgPowerAbove {
  double threshold_w;
  bool operator()(const std::pair<std::int64_t, double>& p) const {
    return p.second > threshold_w;
  }
};
struct MachineAvgKey {
  std::int64_t operator()(const std::pair<std::int64_t, double>& p) const {
    return p.first;
  }
};

/// Alarm when a machine's windowed average power stays above `threshold_w`
/// contiguously for at least `min_duration` (one alarm per overload
/// episode). Built on the windowed average — raw telemetry points are
/// sparse per machine, so sustained detection needs the window's validity
/// to bridge the gaps (same shape as the traffic congestion query).
using PowerThresholdAlert =
    SustainedConditionDetector<std::pair<std::int64_t, double>,
                               MachineAvgKey, AvgPowerAbove>;
PowerThresholdAlert& BuildPowerThresholdAlertQuery(
    QueryGraph& graph, Source<MachineEvent>& events, double threshold_w,
    Timestamp min_duration, Timestamp avg_window = 1'000,
    Timestamp avg_slide = 500);

// --- Q2: stream <-> orders enrichment join -------------------------------------

/// A telemetry event attributed to the production order occupying its
/// machine at event time.
struct EventWithOrder {
  MachineEvent event;
  ProductionOrder order;

  friend bool operator==(const EventWithOrder&,
                         const EventWithOrder&) = default;
};
struct CombineEventOrder {
  EventWithOrder operator()(const MachineEvent& e,
                            const ProductionOrder& o) const {
    return EventWithOrder{e, o};
  }
};

/// Temporal equi-join on machine id: a (point) event matches an order iff
/// the order is scheduled at event time — the interval semantics replace an
/// explicit "is the order active?" predicate.
Source<EventWithOrder>& BuildOrderEnrichmentJoin(
    QueryGraph& graph, Source<MachineEvent>& events,
    Source<ProductionOrder>& orders);

// --- Q3: windowed per-machine power aggregation --------------------------------

/// (machine, average power) per slide-aligned window of `range`.
using MachinePowerAverage =
    algebra::GroupedAggregate<MachineEvent, algebra::AvgAgg<double>,
                              MachineOf, PowerOf>;
MachinePowerAverage& BuildMachinePowerQuery(QueryGraph& graph,
                                            Source<MachineEvent>& events,
                                            Timestamp range, Timestamp slide);

// --- Q4: over-capacity enrichment against machine master data ------------------

struct EventWithMachine {
  MachineEvent event;
  MachineInfo machine;

  friend bool operator==(const EventWithMachine&,
                         const EventWithMachine&) = default;
};
struct CombineEventMachine {
  EventWithMachine operator()(const MachineEvent& e,
                              const MachineInfo& m) const {
    return EventWithMachine{e, m};
  }
};
struct OverRatedPower {
  bool operator()(const EventWithMachine& em) const {
    return em.event.power_w > em.machine.rated_power_w;
  }
};

/// Events exceeding their machine's nameplate capacity: enrichment join
/// with the machine dimension, then a filter on the joined row.
Source<EventWithMachine>& BuildOverCapacityQuery(
    QueryGraph& graph, Source<MachineEvent>& events,
    Source<MachineInfo>& machines);

// --- Q5: late-data-sensitive tumbling audit count ------------------------------

/// (machine, event count) per tumbling `period`. Counts shift between
/// adjacent buckets when delivery is disordered, so this query is the
/// late-data-sensitive variant: its results over the reordered feed differ
/// from the ordered feed's exactly by the beyond-slack drops.
using MachineEventCount =
    algebra::GroupedAggregate<MachineEvent, algebra::CountAgg<double>,
                              MachineOf, PowerOf>;
MachineEventCount& BuildLateDataAuditQuery(QueryGraph& graph,
                                           Source<MachineEvent>& events,
                                           Timestamp period);

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_ESPBENCH_QUERIES_H_
