#include "src/workloads/nexmark.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace pipes::workloads {

namespace {

constexpr const char* kFirstNames[] = {"Ada",  "Alan", "Edgar", "Grace",
                                       "Jim",  "Mike", "Peter", "Rita",
                                       "Tina", "Walt"};
constexpr const char* kCities[] = {"Portland", "Seattle", "Hayward",
                                   "Oakland",  "Marburg", "Paris"};
constexpr const char* kStates[] = {"OR", "WA", "CA", "HE", "ID"};

}  // namespace

NexmarkGenerator::NexmarkGenerator(NexmarkOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  PIPES_CHECK(options_.mean_interarrival_ms > 0);
  // Seed entities so the very first bids have something to reference.
  MakePerson(0);
  MakeAuction(0);
}

Person NexmarkGenerator::MakePerson(Timestamp t) {
  Person p;
  p.id = next_person_id_++;
  p.name = std::string(kFirstNames[rng_.NextBounded(10)]) + "-" +
           std::to_string(p.id);
  p.city = kCities[rng_.NextBounded(6)];
  p.state = kStates[rng_.NextBounded(5)];
  p.reg_time = t;
  return p;
}

Auction NexmarkGenerator::MakeAuction(Timestamp t) {
  Auction a;
  a.id = next_auction_id_++;
  a.seller = PickPersonId();
  a.category = static_cast<std::int32_t>(
      rng_.NextBounded(static_cast<std::uint64_t>(options_.num_categories)));
  a.initial_price = 1.0 + rng_.UniformDouble() * 99.0;
  a.open_time = t;
  a.expires = t + static_cast<Timestamp>(rng_.Exponential(
                      1.0 / static_cast<double>(
                                options_.mean_auction_duration_ms)));
  current_prices_.push_back(a.initial_price);
  return a;
}

Bid NexmarkGenerator::MakeBid(Timestamp t) {
  Bid b;
  b.auction = PickAuctionId();
  b.bidder = PickPersonId();
  // Bids raise the current price by a small increment.
  double& price = current_prices_[static_cast<std::size_t>(b.auction)];
  price += 0.5 + rng_.UniformDouble() * 0.05 * price;
  b.price = price;
  b.time = t;
  return b;
}

std::int64_t NexmarkGenerator::PickAuctionId() {
  // Skew toward recent auctions: exponent-distributed distance from the
  // newest id (approximates NEXMark's hot-item skew).
  const auto n = static_cast<double>(next_auction_id_);
  const double u = rng_.UniformDouble();
  const double skewed =
      options_.auction_zipf_theta <= 0
          ? u * n
          : n * std::pow(u, 1.0 + options_.auction_zipf_theta);
  const auto offset = static_cast<std::int64_t>(skewed);
  return std::clamp<std::int64_t>(next_auction_id_ - 1 - offset, 0,
                                  next_auction_id_ - 1);
}

std::int64_t NexmarkGenerator::PickPersonId() {
  return static_cast<std::int64_t>(
      rng_.NextBounded(static_cast<std::uint64_t>(next_person_id_)));
}

std::optional<NexmarkEvent> NexmarkGenerator::Next() {
  if (emitted_ >= options_.num_events) return std::nullopt;
  now_ += std::max<Timestamp>(
      1, static_cast<Timestamp>(
             rng_.Exponential(1.0 / options_.mean_interarrival_ms)));

  NexmarkEvent event;
  event.time = now_;
  // Canonical NEXMark mix per 50 events: 1 person, 3 auctions, 46 bids.
  const std::uint64_t slot = emitted_ % 50;
  if (slot == 0) {
    event.kind = NexmarkKind::kPerson;
    event.person = MakePerson(now_);
  } else if (slot <= 3) {
    event.kind = NexmarkKind::kAuction;
    event.auction = MakeAuction(now_);
  } else {
    event.kind = NexmarkKind::kBid;
    event.bid = MakeBid(now_);
  }
  ++emitted_;
  return event;
}

}  // namespace pipes::workloads
