#ifndef PIPES_WORKLOADS_NEXMARK_H_
#define PIPES_WORKLOADS_NEXMARK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/time.h"

/// \file
/// Online-auction workload modelled on NEXMark (Tucker/Tufte/Papadimos/
/// Maier): a configurable generator producing person registrations, auction
/// openings, and bids in the benchmark's canonical event mix (1 person :
/// 3 auctions : 46 bids per 50 events). The original generator emits XML;
/// here events are typed structs — the demonstrated queries depend on
/// content and arrival ratios, not serialization (see DESIGN.md).

namespace pipes::workloads {

struct Person {
  std::int64_t id = 0;
  std::string name;
  std::string city;
  std::string state;
  Timestamp reg_time = 0;

  friend bool operator==(const Person&, const Person&) = default;
};

struct Auction {
  std::int64_t id = 0;
  std::int64_t seller = 0;  // person id
  std::int32_t category = 0;
  double initial_price = 0;
  Timestamp open_time = 0;
  Timestamp expires = 0;

  friend bool operator==(const Auction&, const Auction&) = default;
};

struct Bid {
  std::int64_t auction = 0;  // auction id
  std::int64_t bidder = 0;   // person id
  double price = 0;
  Timestamp time = 0;

  friend bool operator==(const Bid&, const Bid&) = default;
};

enum class NexmarkKind { kPerson, kAuction, kBid };

/// One generated event: `kind` selects which member is meaningful.
struct NexmarkEvent {
  NexmarkKind kind = NexmarkKind::kBid;
  Timestamp time = 0;
  Person person;
  Auction auction;
  Bid bid;
};

struct NexmarkOptions {
  std::uint64_t seed = 42;
  std::size_t num_events = 100000;
  /// Mean event inter-arrival time in ms.
  double mean_interarrival_ms = 10.0;
  std::int32_t num_categories = 10;
  /// Auction popularity skew for bids (0 = uniform).
  double auction_zipf_theta = 0.8;
  /// Auctions stay open for this long on average.
  Timestamp mean_auction_duration_ms = 600000;
};

/// Deterministic NEXMark-style event generator; events come out in
/// timestamp order with the canonical 1:3:46 person/auction/bid mix.
class NexmarkGenerator {
 public:
  explicit NexmarkGenerator(NexmarkOptions options);

  std::optional<NexmarkEvent> Next();

  const NexmarkOptions& options() const { return options_; }
  std::int64_t persons_generated() const { return next_person_id_; }
  std::int64_t auctions_generated() const { return next_auction_id_; }

 private:
  Person MakePerson(Timestamp t);
  Auction MakeAuction(Timestamp t);
  Bid MakeBid(Timestamp t);

  /// Existing id skewed toward recently created entities (NEXMark's "hot
  /// items" behaviour).
  std::int64_t PickAuctionId();
  std::int64_t PickPersonId();

  NexmarkOptions options_;
  Random rng_;
  std::size_t emitted_ = 0;
  Timestamp now_ = 0;
  std::int64_t next_person_id_ = 0;
  std::int64_t next_auction_id_ = 0;
  std::vector<double> current_prices_;  // per auction id
};

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_NEXMARK_H_
