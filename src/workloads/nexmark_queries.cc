#include <algorithm>
#include <memory>

#include "src/workloads/nexmark_queries.h"

namespace pipes::workloads {

FunctionSource<NexmarkEvent>& AddNexmarkSource(QueryGraph& graph,
                                               NexmarkOptions options,
                                               std::size_t batch_size) {
  auto generator = std::make_shared<NexmarkGenerator>(options);
  auto& source = graph.Add<FunctionSource<NexmarkEvent>>(
      [generator]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto event = generator->Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*event), t);
      },
      "nexmark", batch_size);
  // Dataflow feed contract: interarrival gaps are clamped to >= 1 ms and
  // the generator stops after num_events point elements.
  source.DeclareRatePerUnit(1.0);
  source.DeclareTotalElements(generator->options().num_events);
  source.DeclareValidityExtent(1);
  return source;
}

BidStream& BuildBidStream(QueryGraph& graph, Source<NexmarkEvent>& events) {
  auto& filter = graph.Add<algebra::Filter<NexmarkEvent, IsBidEvent>>(
      IsBidEvent{}, "bids-only");
  auto& map = graph.Add<BidStream>(BidOfEvent{}, "bid-stream");
  events.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  return map;
}

AuctionStream& BuildAuctionStream(QueryGraph& graph,
                                  Source<NexmarkEvent>& events) {
  auto& filter = graph.Add<algebra::Filter<NexmarkEvent, IsAuctionEvent>>(
      IsAuctionEvent{}, "auctions-only");
  auto& map = graph.Add<AuctionStream>(AuctionOfEvent{}, "auction-stream");
  events.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  return map;
}

PersonStream& BuildPersonStream(QueryGraph& graph,
                                Source<NexmarkEvent>& events) {
  auto& filter = graph.Add<algebra::Filter<NexmarkEvent, IsPersonEvent>>(
      IsPersonEvent{}, "persons-only");
  auto& map = graph.Add<PersonStream>(PersonOfEvent{}, "person-stream");
  events.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  return map;
}

CurrencyConversion& BuildCurrencyConversion(QueryGraph& graph,
                                            Source<Bid>& bids, double rate) {
  auto& conversion = graph.Add<CurrencyConversion>(ConvertCurrency{rate},
                                                   "currency-conversion");
  bids.AddSubscriber(conversion.input());
  return conversion;
}

BidSelection& BuildBidSelection(QueryGraph& graph, Source<Bid>& bids,
                                std::int64_t modulus) {
  auto& selection = graph.Add<BidSelection>(AuctionIdModulo{modulus},
                                            "bid-selection");
  bids.AddSubscriber(selection.input());
  return selection;
}

HighestBid& BuildHighestBidQuery(QueryGraph& graph, Source<Bid>& bids,
                                 Timestamp period) {
  auto& window = graph.Add<algebra::SlideWindow<Bid>>(period, period,
                                                      "tumbling-window");
  auto& highest = graph.Add<HighestBid>(PriceOf{}, "highest-bid");
  bids.AddSubscriber(window.input());
  window.AddSubscriber(highest.input());
  return highest;
}

namespace {

struct BidAuctionKey {
  std::int64_t operator()(const Bid& b) const { return b.auction; }
};

}  // namespace

Source<BidWithAuction>& BuildOpenAuctionJoin(QueryGraph& graph,
                                             Source<Bid>& bids,
                                             Source<Auction>& open_auctions) {
  auto join = algebra::MakeHashJoin<Bid, Auction>(
      BidAuctionKey{}, AuctionId{}, CombineBidAuction{}, "bids-x-open-auctions");
  auto& node = graph.Add(std::move(join));
  bids.AddSubscriber(node.left());
  open_auctions.AddSubscriber(node.right());
  return node;
}

BidsPerAuction& BuildBidsPerAuctionQuery(QueryGraph& graph,
                                         Source<Bid>& bids, Timestamp range,
                                         Timestamp slide) {
  auto& window = graph.Add<algebra::SlideWindow<Bid>>(range, slide,
                                                      "auction-window");
  auto& counts = graph.Add<BidsPerAuction>(AuctionOfBid{}, PriceOf{},
                                           "bids-per-auction");
  bids.AddSubscriber(window.input());
  window.AddSubscriber(counts.input());
  return counts;
}

}  // namespace pipes::workloads
