#ifndef PIPES_WORKLOADS_NEXMARK_QUERIES_H_
#define PIPES_WORKLOADS_NEXMARK_QUERIES_H_

#include <algorithm>
#include <string>
#include <utility>

#include "src/algebra/aggregate.h"
#include "src/algebra/filter.h"
#include "src/algebra/join.h"
#include "src/algebra/map.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/workloads/nexmark.h"

/// \file
/// The online-auction query library: typed plan fragments for the NEXMark
/// queries the paper demonstrates —
///
///  * event-stream splitting (bids / auctions / persons),
///  * currency conversion (NEXMark query 1),
///  * category-style selection on bids (query 2 flavour),
///  * "every p the highest bid of the recent p" (the paper's showcase),
///  * per-auction bid statistics.

namespace pipes::workloads {

/// Wraps a `NexmarkGenerator` into an active source of point elements.
/// `batch_size` > 1 makes the source emit that many events per
/// `TransferBatch` — the batching knob for the auction workload.
FunctionSource<NexmarkEvent>& AddNexmarkSource(QueryGraph& graph,
                                               NexmarkOptions options,
                                               std::size_t batch_size = 1);

// --- Event-stream splitting ----------------------------------------------------

struct IsBidEvent {
  bool operator()(const NexmarkEvent& e) const {
    return e.kind == NexmarkKind::kBid;
  }
};
struct IsAuctionEvent {
  bool operator()(const NexmarkEvent& e) const {
    return e.kind == NexmarkKind::kAuction;
  }
};
struct IsPersonEvent {
  bool operator()(const NexmarkEvent& e) const {
    return e.kind == NexmarkKind::kPerson;
  }
};
struct BidOfEvent {
  Bid operator()(const NexmarkEvent& e) const { return e.bid; }
};
struct AuctionOfEvent {
  Auction operator()(const NexmarkEvent& e) const { return e.auction; }
};
struct PersonOfEvent {
  Person operator()(const NexmarkEvent& e) const { return e.person; }
};

/// Splits the raw event stream into a typed bid stream (filter + map).
using BidStream = algebra::Map<NexmarkEvent, Bid, BidOfEvent>;
BidStream& BuildBidStream(QueryGraph& graph,
                          Source<NexmarkEvent>& events);

using AuctionStream = algebra::Map<NexmarkEvent, Auction, AuctionOfEvent>;
AuctionStream& BuildAuctionStream(QueryGraph& graph,
                                  Source<NexmarkEvent>& events);

using PersonStream = algebra::Map<NexmarkEvent, Person, PersonOfEvent>;
PersonStream& BuildPersonStream(QueryGraph& graph,
                                Source<NexmarkEvent>& events);

// --- NEXMark query 1: currency conversion -------------------------------------

struct ConvertCurrency {
  double rate;
  Bid operator()(const Bid& b) const {
    Bid converted = b;
    converted.price = b.price * rate;
    return converted;
  }
};
using CurrencyConversion = algebra::Map<Bid, Bid, ConvertCurrency>;
CurrencyConversion& BuildCurrencyConversion(QueryGraph& graph,
                                            Source<Bid>& bids, double rate);

// --- NEXMark query 2 flavour: selection on auction ids ------------------------

struct AuctionIdModulo {
  std::int64_t modulus;
  bool operator()(const Bid& b) const { return b.auction % modulus == 0; }
};
using BidSelection = algebra::Filter<Bid, AuctionIdModulo>;
BidSelection& BuildBidSelection(QueryGraph& graph, Source<Bid>& bids,
                                std::int64_t modulus);

// --- The paper's showcase: tumbling highest bid --------------------------------

struct PriceOf {
  double operator()(const Bid& b) const { return b.price; }
};

/// "Return every `period` the highest bid of the recent `period`."
using HighestBid =
    algebra::TemporalAggregate<Bid, algebra::MaxAgg<double>, PriceOf>;
HighestBid& BuildHighestBidQuery(QueryGraph& graph, Source<Bid>& bids,
                                 Timestamp period);

// --- Open-auction join ----------------------------------------------------------
// A showcase of interval semantics: auction elements are given validity
// [open_time, expires), so a temporal equi-join with the (point) bid stream
// matches a bid if and only if the auction is still open at bid time — no
// explicit "is the auction open?" predicate needed.

struct AuctionValidity {
  TimeInterval operator()(const Auction& a) const {
    return TimeInterval(a.open_time, std::max(a.expires, a.open_time + 1));
  }
};
struct AuctionId {
  std::int64_t operator()(const Auction& a) const { return a.id; }
};

/// (bid, auction) pairs for bids placed while their auction was open.
struct BidWithAuction {
  Bid bid;
  Auction auction;
};
struct CombineBidAuction {
  BidWithAuction operator()(const Bid& b, const Auction& a) const {
    return BidWithAuction{b, a};
  }
};

/// Joins bids against open auctions. Subscribe `bids` (point elements) and
/// an auction stream whose elements carry [open, expires) validity (use
/// `AuctionValidity` when building that source).
Source<BidWithAuction>& BuildOpenAuctionJoin(QueryGraph& graph,
                                             Source<Bid>& bids,
                                             Source<Auction>& open_auctions);

// --- Per-auction statistics ----------------------------------------------------

struct AuctionOfBid {
  std::int64_t operator()(const Bid& b) const { return b.auction; }
};

/// (auction, bid count) over a sliding window.
using BidsPerAuction =
    algebra::GroupedAggregate<Bid, algebra::CountAgg<double>, AuctionOfBid,
                              PriceOf>;
BidsPerAuction& BuildBidsPerAuctionQuery(QueryGraph& graph,
                                         Source<Bid>& bids, Timestamp range,
                                         Timestamp slide);

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_NEXMARK_QUERIES_H_
