#include "src/workloads/traffic.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"

namespace pipes::workloads {

TrafficGenerator::TrafficGenerator(TrafficOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  PIPES_CHECK(options_.num_detectors > 0 && options_.num_lanes > 0);
  PIPES_CHECK(options_.base_rate_per_s > 0);
  for (std::int32_t d = 0; d < options_.num_detectors; ++d) {
    for (std::int32_t lane = 0; lane < options_.num_lanes; ++lane) {
      for (std::int32_t dir = 0; dir < 2; ++dir) {
        ScheduleNext(d, lane, dir, /*after=*/0);
      }
    }
  }
}

double TrafficGenerator::RateMultiplier(Timestamp t) const {
  // Two rush-hour peaks at 8:00 and 17:00 of a 24h day, scaled to the
  // configured duration.
  const double day_fraction =
      static_cast<double>(t) / static_cast<double>(options_.duration_ms);
  const double hour = day_fraction * 24.0;
  auto peak = [&](double center) {
    const double d = (hour - center) / 1.5;
    return std::exp(-d * d);
  };
  return 1.0 + 2.0 * peak(8.0) + 2.0 * peak(17.0);
}

bool TrafficGenerator::IncidentActive(std::int32_t detector,
                                      std::int32_t direction,
                                      Timestamp t) const {
  for (const TrafficIncident& incident : options_.incidents) {
    if (incident.direction != direction) continue;
    if (t < incident.begin || t >= incident.end) continue;
    // The jam backs up over the detectors upstream of the incident.
    const std::int32_t delta = incident.detector - detector;
    const bool affected = direction == 0
                              ? (delta >= 0 && delta <= incident.upstream_reach)
                              : (delta <= 0 && -delta <= incident.upstream_reach);
    if (affected) return true;
  }
  return false;
}

void TrafficGenerator::ScheduleNext(std::int32_t detector, std::int32_t lane,
                                    std::int32_t direction, Timestamp after) {
  // Thinning-free approximation: draw the gap from the rate at `after`.
  const double rate_per_ms =
      options_.base_rate_per_s * RateMultiplier(after) / 1000.0;
  const double gap = rng_.Exponential(rate_per_ms);
  const auto at = after + std::max<Timestamp>(1, static_cast<Timestamp>(gap));
  if (at >= options_.duration_ms) return;  // beyond the measurement window
  arrivals_.push(Arrival{at, detector, lane, direction});
}

std::optional<TrafficReading> TrafficGenerator::Next() {
  if (arrivals_.empty()) return std::nullopt;
  const Arrival arrival = arrivals_.top();
  arrivals_.pop();
  ScheduleNext(arrival.detector, arrival.lane, arrival.direction, arrival.at);

  TrafficReading reading;
  reading.detector = arrival.detector;
  reading.lane = arrival.lane;
  reading.direction = arrival.direction;
  reading.timestamp = arrival.at;

  // Speed model: base (+ HOV bonus), reduced during rush hours, collapsed
  // near active incidents, plus Gaussian noise.
  double speed = options_.base_speed_kmh;
  if (arrival.lane == 0) speed += options_.hov_speed_bonus_kmh;
  const double congestion = RateMultiplier(arrival.at);
  speed /= std::sqrt(congestion);
  // Incidents block the whole carriageway (the HOV lane jams too); apply
  // the strongest active slowdown.
  double incident_factor = 1.0;
  for (const TrafficIncident& incident : options_.incidents) {
    if (incident.direction != arrival.direction) continue;
    if (arrival.at < incident.begin || arrival.at >= incident.end) continue;
    const std::int32_t delta = incident.detector - arrival.detector;
    const bool affected =
        arrival.direction == 0
            ? (delta >= 0 && delta <= incident.upstream_reach)
            : (delta <= 0 && -delta <= incident.upstream_reach);
    if (affected) incident_factor = std::min(incident_factor,
                                             incident.speed_factor);
  }
  speed *= incident_factor;
  speed += rng_.Gaussian() * options_.speed_noise_stddev;
  reading.speed_kmh = std::max(3.0, speed);

  reading.length_m = rng_.Bernoulli(options_.truck_fraction)
                         ? rng_.UniformDouble(12.0, 22.0)
                         : rng_.UniformDouble(3.8, 5.4);
  return reading;
}

}  // namespace pipes::workloads
