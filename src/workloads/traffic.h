#ifndef PIPES_WORKLOADS_TRAFFIC_H_
#define PIPES_WORKLOADS_TRAFFIC_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/time.h"

/// \file
/// Traffic-management workload: synthetic loop-detector streams modelled on
/// the Freeway Service Patrol (FSP) data the paper demonstrates on —
/// detectors along a highway section, five lanes including one HOV lane,
/// and per-vehicle measurements (position, lane, timestamp, speed, length).
/// The original 1993 recordings are not redistributable; this generator
/// reproduces their structure with controllable rush-hour rate ramps and
/// injectable incidents so the demo queries (hourly HOV averages,
/// sustained-congestion detection) have deterministic ground truth
/// (substitution documented in DESIGN.md).

namespace pipes::workloads {

/// One vehicle passing one loop detector.
struct TrafficReading {
  std::int32_t detector = 0;   // position index along the section
  std::int32_t lane = 0;       // 0 = HOV, 1..n = general purpose
  std::int32_t direction = 0;  // 0 or 1
  Timestamp timestamp = 0;     // ms since measurement start
  double speed_kmh = 0;
  double length_m = 0;

  friend bool operator==(const TrafficReading&,
                         const TrafficReading&) = default;
};

/// A blocked-lane incident: vehicles passing `detector` (and the detectors
/// just upstream) during [begin, end) slow down by `speed_factor`.
struct TrafficIncident {
  Timestamp begin = 0;
  Timestamp end = 0;
  std::int32_t detector = 0;
  std::int32_t direction = 0;
  double speed_factor = 0.3;  // fraction of normal speed
  std::int32_t upstream_reach = 3;
};

struct TrafficOptions {
  std::uint64_t seed = 42;
  std::int32_t num_detectors = 20;
  std::int32_t num_lanes = 5;  // lane 0 is HOV
  Timestamp duration_ms = 24ll * 3600 * 1000;
  /// Mean vehicles per lane-detector-direction per second off-peak.
  double base_rate_per_s = 0.2;
  double base_speed_kmh = 100;
  double hov_speed_bonus_kmh = 12;
  double speed_noise_stddev = 8;
  double truck_fraction = 0.12;
  std::vector<TrafficIncident> incidents;
};

/// Merges per-(detector, lane, direction) Poisson arrival processes into a
/// single timestamp-ordered reading stream. Pull-based: wrap it with a
/// `FunctionSource` or `cursors::CursorSource` to feed a query graph.
class TrafficGenerator {
 public:
  explicit TrafficGenerator(TrafficOptions options);

  /// Next reading in timestamp order; nullopt after `duration_ms`.
  std::optional<TrafficReading> Next();

  const TrafficOptions& options() const { return options_; }

  /// Rush-hour intensity multiplier at time `t` (two Gaussian peaks around
  /// 8:00 and 17:00 when the duration covers a day). Exposed for tests.
  double RateMultiplier(Timestamp t) const;

  /// True if an incident affects `detector`/`direction` at time `t`.
  bool IncidentActive(std::int32_t detector, std::int32_t direction,
                      Timestamp t) const;

 private:
  struct Arrival {
    Timestamp at;
    std::int32_t detector;
    std::int32_t lane;
    std::int32_t direction;
  };
  struct Later {
    bool operator()(const Arrival& a, const Arrival& b) const {
      return a.at > b.at;
    }
  };

  void ScheduleNext(std::int32_t detector, std::int32_t lane,
                    std::int32_t direction, Timestamp after);

  TrafficOptions options_;
  Random rng_;
  std::priority_queue<Arrival, std::vector<Arrival>, Later> arrivals_;
};

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_TRAFFIC_H_
