#include "src/workloads/traffic_queries.h"

#include <memory>

namespace pipes::workloads {

FunctionSource<TrafficReading>& AddTrafficSource(QueryGraph& graph,
                                                 TrafficOptions options,
                                                 std::size_t batch_size) {
  auto generator = std::make_shared<TrafficGenerator>(std::move(options));
  const TrafficOptions& opts = generator->options();
  auto& source = graph.Add<FunctionSource<TrafficReading>>(
      [generator]() -> std::optional<StreamElement<TrafficReading>> {
        auto reading = generator->Next();
        if (!reading.has_value()) return std::nullopt;
        const Timestamp t = reading->timestamp;
        return StreamElement<TrafficReading>::Point(std::move(*reading), t);
      },
      "traffic", batch_size);
  // Dataflow feed contract: each (detector, lane, direction) stream emits
  // at most one reading per ms (ScheduleNext clamps gaps to >= 1), and
  // nothing past duration_ms.
  const std::uint64_t streams = static_cast<std::uint64_t>(opts.num_detectors) *
                                static_cast<std::uint64_t>(opts.num_lanes) * 2;
  source.DeclareRatePerUnit(static_cast<double>(streams));
  source.DeclareTotalElements(streams *
                              static_cast<std::uint64_t>(opts.duration_ms));
  source.DeclareValidityExtent(1);  // point elements
  return source;
}

HovAverageSpeed& BuildHovAverageSpeedQuery(QueryGraph& graph,
                                           Source<TrafficReading>& readings,
                                           Timestamp range, Timestamp slide) {
  auto& hov = graph.Add<algebra::Filter<TrafficReading, HovLaneOnly>>(
      HovLaneOnly{}, "hov-only");
  auto& window = graph.Add<algebra::SlideWindow<TrafficReading>>(
      range, slide, "hov-window");
  auto& average = graph.Add<HovAverageSpeed>(
      DirectionOf{}, SpeedOf{}, "hov-average");
  readings.AddSubscriber(hov.input());
  hov.AddSubscriber(window.input());
  window.AddSubscriber(average.input());
  return average;
}

SegmentAverageSpeed& BuildSegmentAverageSpeedQuery(
    QueryGraph& graph, Source<TrafficReading>& readings,
    std::int32_t direction, Timestamp range, Timestamp slide) {
  auto& filtered = graph.Add<algebra::Filter<TrafficReading, InDirection>>(
      InDirection{direction}, "direction-only");
  auto& window = graph.Add<algebra::SlideWindow<TrafficReading>>(
      range, slide, "segment-window");
  auto& average = graph.Add<SegmentAverageSpeed>(
      DetectorOf{}, SpeedOf{}, "segment-average");
  readings.AddSubscriber(filtered.input());
  filtered.AddSubscriber(window.input());
  window.AddSubscriber(average.input());
  return average;
}

CongestionDetector& BuildCongestionQuery(
    QueryGraph& graph, Source<TrafficReading>& readings,
    std::int32_t direction, Timestamp avg_window, Timestamp avg_slide,
    double speed_threshold, Timestamp min_duration) {
  SegmentAverageSpeed& averages = BuildSegmentAverageSpeedQuery(
      graph, readings, direction, avg_window, avg_slide);
  auto& detector = graph.Add<CongestionDetector>(
      PairKey{}, AvgBelow{speed_threshold}, min_duration,
      "congestion-detector");
  averages.AddSubscriber(detector.input());
  return detector;
}

}  // namespace pipes::workloads
