#ifndef PIPES_WORKLOADS_TRAFFIC_QUERIES_H_
#define PIPES_WORKLOADS_TRAFFIC_QUERIES_H_

#include <string>
#include <unordered_map>
#include <utility>

#include "src/algebra/aggregate.h"
#include "src/algebra/filter.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/workloads/traffic.h"

/// \file
/// The traffic-management query library: typed building blocks for the
/// demo scenario's continuous queries (in the spirit of the Linear Road
/// benchmark the paper references):
///
///  * hourly average HOV speed per direction,
///  * per-segment average speed over short windows,
///  * sustained-condition detection ("average speed below a threshold
///    constantly for 15 minutes" — the incident indicator).
///
/// All pieces are ordinary operators of the generic algebra; this header
/// just packages the workload's types and plan fragments for reuse by
/// examples, tests, and benchmarks.

namespace pipes::workloads {

/// Alarm raised when a keyed condition held continuously long enough.
template <typename Key>
struct Sustained {
  Key key{};
  Timestamp since = 0;     // when the run started
  Timestamp duration = 0;  // run length when the alarm fired

  friend bool operator==(const Sustained&, const Sustained&) = default;
};

/// Detects, per key, runs of contiguous (overlapping or abutting) input
/// validity during which `pred(payload)` holds; fires one alarm per run
/// when the run first reaches `min_duration`. The alarm element carries
/// the triggering element's validity, so output order follows input order.
template <typename In, typename KeyFn, typename Pred>
class SustainedConditionDetector
    : public UnaryPipe<
          In, Sustained<std::decay_t<std::invoke_result_t<KeyFn, const In&>>>> {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyFn, const In&>>;
  using Alarm = Sustained<Key>;

  SustainedConditionDetector(KeyFn key_fn, Pred pred,
                             Timestamp min_duration,
                             std::string name = "sustained-condition")
      : UnaryPipe<In, Alarm>(std::move(name)),
        key_fn_(std::move(key_fn)),
        pred_(std::move(pred)),
        min_duration_(min_duration) {
    PIPES_CHECK(min_duration > 0);
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<In, Alarm>::Describe();
    d.op = "sustained-condition";
    // At most one Run entry per key, one key per input element; at most
    // one alarm per run.
    d.dataflow.state_bytes_per_element = sizeof(Key) + 64 + 32;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<In>& e) override {
    const Key key = key_fn_(e.payload);
    Run& run = runs_[key];
    if (!pred_(e.payload)) {
      run.active = false;
      return;
    }
    if (!run.active || e.start() > run.end) {
      // Gap (or first observation): a new run starts.
      run.active = true;
      run.alarmed = false;
      run.start = e.start();
      run.end = e.end();
    } else {
      run.end = std::max(run.end, e.end());
    }
    if (!run.alarmed && run.end - run.start >= min_duration_) {
      run.alarmed = true;
      this->Transfer(StreamElement<Alarm>(
          Alarm{key, run.start, run.end - run.start}, e.interval));
    }
  }

 private:
  struct Run {
    bool active = false;
    bool alarmed = false;
    Timestamp start = 0;
    Timestamp end = 0;
  };

  KeyFn key_fn_;
  Pred pred_;
  Timestamp min_duration_;
  std::unordered_map<Key, Run> runs_;
};

/// Wraps a `TrafficGenerator` into an active source of point elements
/// (validity [timestamp, timestamp+1)). `batch_size` > 1 makes the source
/// emit that many readings per `TransferBatch` — the batching knob for the
/// traffic workload.
FunctionSource<TrafficReading>& AddTrafficSource(QueryGraph& graph,
                                                 TrafficOptions options,
                                                 std::size_t batch_size = 1);

// --- Plan fragments for the demo queries --------------------------------------

/// Named functors so the fragment builders have spellable operator types.
struct HovLaneOnly {
  bool operator()(const TrafficReading& r) const { return r.lane == 0; }
};
struct DirectionOf {
  std::int32_t operator()(const TrafficReading& r) const {
    return r.direction;
  }
};
struct DetectorOf {
  std::int32_t operator()(const TrafficReading& r) const {
    return r.detector;
  }
};
struct SpeedOf {
  double operator()(const TrafficReading& r) const { return r.speed_kmh; }
};
struct InDirection {
  std::int32_t direction;
  bool operator()(const TrafficReading& r) const {
    return r.direction == direction;
  }
};

/// (direction, average HOV speed) per `slide`-aligned window of `range`.
using HovAverageSpeed =
    algebra::GroupedAggregate<TrafficReading, algebra::AvgAgg<double>,
                              DirectionOf, SpeedOf>;

/// Builds: source -> HOV filter -> slide window -> grouped average.
/// Returns the query output (subscribe a sink to it).
HovAverageSpeed& BuildHovAverageSpeedQuery(
    QueryGraph& graph, Source<TrafficReading>& readings, Timestamp range,
    Timestamp slide);

/// (detector, average speed) in one direction per slide-aligned window.
using SegmentAverageSpeed =
    algebra::GroupedAggregate<TrafficReading, algebra::AvgAgg<double>,
                              DetectorOf, SpeedOf>;

SegmentAverageSpeed& BuildSegmentAverageSpeedQuery(
    QueryGraph& graph, Source<TrafficReading>& readings,
    std::int32_t direction, Timestamp range, Timestamp slide);

/// Predicate on the (detector, avg) pairs of SegmentAverageSpeed.
struct AvgBelow {
  double threshold;
  bool operator()(const std::pair<std::int32_t, double>& p) const {
    return p.second < threshold;
  }
};
struct PairKey {
  std::int32_t operator()(const std::pair<std::int32_t, double>& p) const {
    return p.first;
  }
};

/// Congestion detector: segment averages below `speed_threshold` sustained
/// for at least `min_duration` raise one alarm per congestion episode.
using CongestionDetector =
    SustainedConditionDetector<std::pair<std::int32_t, double>, PairKey,
                               AvgBelow>;

CongestionDetector& BuildCongestionQuery(
    QueryGraph& graph, Source<TrafficReading>& readings,
    std::int32_t direction, Timestamp avg_window, Timestamp avg_slide,
    double speed_threshold, Timestamp min_duration);

}  // namespace pipes::workloads

#endif  // PIPES_WORKLOADS_TRAFFIC_QUERIES_H_
