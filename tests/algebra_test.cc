// Unit tests for the temporal operator algebra: windows, union, join,
// aggregation, distinct, difference, coalesce, reordering.

#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/coalesce.h"
#include "src/algebra/difference.h"
#include "src/algebra/distinct.h"
#include "src/algebra/join.h"
#include "src/algebra/reorder.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace pipes {
namespace {

using namespace pipes::algebra;  // NOLINT: test-local convenience

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

template <typename T>
std::vector<StreamElement<T>> Sorted(std::vector<StreamElement<T>> v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const StreamElement<T>& a, const StreamElement<T>& b) {
                     if (a.start() != b.start()) return a.start() < b.start();
                     if (a.end() != b.end()) return a.end() < b.end();
                     return a.payload < b.payload;
                   });
  return v;
}

TEST(Window, TimeWindowWidensIntervals) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2}, /*t0=*/10));
  auto& window = graph.Add<TimeWindow<int>>(100);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(10, 110));
  EXPECT_EQ(sink.elements()[1].interval, TimeInterval(11, 111));
}

TEST(Window, SlideWindowAlignsToGrid) {
  QueryGraph graph;
  // Elements at t = 0, 7, 13; RANGE 10 SLIDE 5.
  std::vector<StreamElement<int>> input = {
      StreamElement<int>::Point(1, 0), StreamElement<int>::Point(2, 7),
      StreamElement<int>::Point(3, 13)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& window = graph.Add<SlideWindow<int>>(10, 5);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 3u);
  // t=0: visible at instants 0, 5 (window (τ-10, τ]) -> [0, 10).
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(0, 10));
  // t=7: visible at instants 10, 15 -> [10, 20).
  EXPECT_EQ(sink.elements()[1].interval, TimeInterval(10, 20));
  // t=13: visible at instants 15, 20 -> [15, 25).
  EXPECT_EQ(sink.elements()[2].interval, TimeInterval(15, 25));
}

TEST(Window, CountWindowExpiresAfterNSuccessors) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input = {
      StreamElement<int>::Point(1, 0), StreamElement<int>::Point(2, 10),
      StreamElement<int>::Point(3, 20), StreamElement<int>::Point(4, 30)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& window = graph.Add<CountWindow<int>>(2);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 4u);
  // Element 1 expires when element 3 (its 2nd successor) arrives.
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(0, 20));
  EXPECT_EQ(sink.elements()[1].interval, TimeInterval(10, 30));
  // The last two never expire.
  EXPECT_EQ(sink.elements()[2].interval, TimeInterval(20, kMaxTimestamp));
  EXPECT_EQ(sink.elements()[3].interval, TimeInterval(30, kMaxTimestamp));
}

TEST(Window, PartitionedWindowKeepsRowsPerKey) {
  QueryGraph graph;
  // Keys alternate 0/1; ROWS 1 per partition.
  std::vector<StreamElement<int>> input = {
      StreamElement<int>::Point(0, 0), StreamElement<int>::Point(1, 10),
      StreamElement<int>::Point(2, 20), StreamElement<int>::Point(3, 30)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto key = [](int v) { return v % 2; };
  auto& window =
      graph.Add<PartitionedWindow<int, decltype(key)>>(key, 1);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  Drain(graph);

  auto out = Sorted(sink.elements());
  ASSERT_EQ(out.size(), 4u);
  // 0 expires when 2 arrives (same partition), 1 when 3 arrives.
  EXPECT_EQ(out[0].interval, TimeInterval(0, 20));
  EXPECT_EQ(out[1].interval, TimeInterval(10, 30));
  EXPECT_EQ(out[2].interval, TimeInterval(20, kMaxTimestamp));
  EXPECT_EQ(out[3].interval, TimeInterval(30, kMaxTimestamp));
}

TEST(Union, MergesInStartOrder) {
  QueryGraph graph;
  auto& a = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 3}, /*t0=*/0));  // starts 0, 1
  auto& b = graph.Add<VectorSource<int>>(std::vector<StreamElement<int>>{
      StreamElement<int>::Point(2, 0), StreamElement<int>::Point(4, 5)});
  auto& u = graph.Add<Union<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  a.AddSubscriber(u.left());
  b.AddSubscriber(u.right());
  u.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 4u);
  for (std::size_t i = 1; i < sink.elements().size(); ++i) {
    EXPECT_LE(sink.elements()[i - 1].start(), sink.elements()[i].start());
  }
  EXPECT_TRUE(sink.done());
}

TEST(Join, HashEquiJoinMatchesOverlappingIntervalsOnly) {
  QueryGraph graph;
  // Left: key 7 valid [0, 10); key 8 valid [5, 15).
  std::vector<StreamElement<int>> left = {StreamElement<int>(7, 0, 10),
                                          StreamElement<int>(8, 5, 15)};
  // Right: key 7 valid [8, 20) -> overlaps; key 8 valid [20, 30) -> no.
  std::vector<StreamElement<int>> right = {StreamElement<int>(7, 8, 20),
                                           StreamElement<int>(8, 20, 30)};
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto identity = [](int v) { return v; };
  auto combine = [](int a, int b) { return std::make_pair(a, b); };
  auto& join = graph.Add(MakeHashJoin<int, int>(identity, identity,
                                                    combine));
  auto& sink = graph.Add<CollectorSink<std::pair<int, int>>>();
  l.AddSubscriber(join.left());
  r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].payload, std::make_pair(7, 7));
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(8, 10));
}

TEST(Join, PurgesStateWithProgress) {
  QueryGraph graph;
  std::vector<StreamElement<int>> left;
  std::vector<StreamElement<int>> right;
  for (int i = 0; i < 100; ++i) {
    left.push_back(StreamElement<int>(i, i * 10, i * 10 + 5));
    right.push_back(StreamElement<int>(i, i * 10, i * 10 + 5));
  }
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto identity = [](int v) { return v; };
  auto combine = [](int a, int b) { return a * 1000 + b; };
  auto& join = graph.Add(MakeHashJoin<int, int>(identity, identity,
                                                    combine));
  auto& sink = graph.Add<CountingSink<int>>();
  l.AddSubscriber(join.left());
  r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  Drain(graph);

  EXPECT_EQ(sink.count(), 100u);
  // With aligned progress on both sides, state must have been purged far
  // below the input size.
  EXPECT_LT(join.left_state_size() + join.right_state_size(), 10u);
}

TEST(Join, BandJoinMatchesWithinBand) {
  QueryGraph graph;
  std::vector<StreamElement<int>> left = {StreamElement<int>(10, 0, 100)};
  std::vector<StreamElement<int>> right = {StreamElement<int>(12, 0, 100),
                                           StreamElement<int>(13, 1, 100),
                                           StreamElement<int>(8, 2, 100)};
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto key = [](int v) { return v; };
  auto combine = [](int a, int b) { return std::make_pair(a, b); };
  auto& join =
      graph.Add(MakeBandJoin<int, int>(key, key, /*band=*/2, combine));
  auto& sink = graph.Add<CollectorSink<std::pair<int, int>>>();
  l.AddSubscriber(join.left());
  r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  Drain(graph);

  // |10-12| <= 2 and |10-8| <= 2 match; |10-13| does not.
  auto out = Sorted(sink.elements());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, std::make_pair(10, 12));
  EXPECT_EQ(out[1].payload, std::make_pair(10, 8));
}

TEST(Join, LoadSheddingRespectsMemoryLimitAndCounts) {
  QueryGraph graph;
  std::vector<StreamElement<int>> left;
  for (int i = 0; i < 1000; ++i) {
    left.push_back(StreamElement<int>(0, i, i + 1000000));  // long validity
  }
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(std::vector<StreamElement<int>>{});
  auto identity = [](int v) { return v; };
  auto combine = [](int a, int b) { return a + b; };
  auto& join = graph.Add(MakeHashJoin<int, int>(identity, identity,
                                                    combine));
  auto& sink = graph.Add<CountingSink<int>>();
  l.AddSubscriber(join.left());
  r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());

  const std::size_t limit = 64 * 52;  // roughly 64 elements worth
  join.SetMemoryLimit(limit);
  // Drive only the left source: the right input never progresses, so no
  // purging happens and state would grow without shedding.
  while (l.HasWork()) l.DoWork(100);

  EXPECT_LE(join.MemoryUsage(), limit);
  EXPECT_GT(join.shed_count(), 0u);
  (void)r;
  (void)sink;
}

TEST(Aggregate, SumOverlappingIntervals) {
  QueryGraph graph;
  // [0,10) value 1; [5,15) value 2 -> segments [0,5)=1, [5,10)=3, [10,15)=2.
  std::vector<StreamElement<int>> input = {StreamElement<int>(1, 0, 10),
                                           StreamElement<int>(2, 5, 15)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto value = [](int v) { return v; };
  auto& agg = graph.Add<TemporalAggregate<int, SumAgg<int>, decltype(value)>>(
      value);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[0],
            StreamElement<int>(1, 0, 5));
  EXPECT_EQ(sink.elements()[1], StreamElement<int>(3, 5, 10));
  EXPECT_EQ(sink.elements()[2], StreamElement<int>(2, 10, 15));
}

TEST(Aggregate, GapsProduceNoOutput) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input = {StreamElement<int>(1, 0, 5),
                                           StreamElement<int>(2, 10, 15)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto value = [](int v) { return v; };
  auto& agg =
      graph.Add<TemporalAggregate<int, CountAgg<int>, decltype(value)>>(
          value);
  auto& sink = graph.Add<CollectorSink<std::uint64_t>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(0, 5));
  EXPECT_EQ(sink.elements()[1].interval, TimeInterval(10, 15));
}

TEST(Aggregate, EmitsIncrementallyWithProgressNotOnlyAtEnd) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input;
  for (int i = 0; i < 10; ++i) {
    input.push_back(StreamElement<int>(1, i * 10, i * 10 + 10));
  }
  auto& source = graph.Add<VectorSource<int>>(input);
  auto value = [](int v) { return v; };
  auto& agg = graph.Add<TemporalAggregate<int, SumAgg<int>, decltype(value)>>(
      value);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());

  // Drive half the input: outputs must already appear (non-blocking).
  source.DoWork(5);
  EXPECT_GE(sink.elements().size(), 3u);
  Drain(graph);
  EXPECT_EQ(sink.elements().size(), 10u);
}

TEST(Aggregate, GroupedAggregatePerKey) {
  QueryGraph graph;
  // Two groups: evens and odds.
  std::vector<StreamElement<int>> input = {
      StreamElement<int>(2, 0, 10), StreamElement<int>(3, 0, 10),
      StreamElement<int>(4, 0, 10)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto key = [](int v) { return v % 2; };
  auto value = [](int v) { return v; };
  auto& agg = graph.Add<
      GroupedAggregate<int, SumAgg<int>, decltype(key), decltype(value)>>(
      key, value);
  auto& sink = graph.Add<CollectorSink<std::pair<int, int>>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  std::map<int, int> results;
  for (const auto& e : sink.elements()) {
    results[e.payload.first] = e.payload.second;
    EXPECT_EQ(e.interval, TimeInterval(0, 10));
  }
  EXPECT_EQ(results[0], 6);  // 2 + 4
  EXPECT_EQ(results[1], 3);
}

TEST(Aggregate, MinMaxAvgVariancePolicies) {
  using State = MinAgg<int>::State;
  State min_state = MinAgg<int>::Init();
  MinAgg<int>::Add(min_state, 5);
  MinAgg<int>::Add(min_state, 3);
  MinAgg<int>::Add(min_state, 9);
  EXPECT_EQ(MinAgg<int>::Result(min_state), 3);

  auto max_state = MaxAgg<int>::Init();
  MaxAgg<int>::Add(max_state, 5);
  MaxAgg<int>::Add(max_state, 9);
  MaxAgg<int>::Add(max_state, 3);
  EXPECT_EQ(MaxAgg<int>::Result(max_state), 9);

  auto avg_state = AvgAgg<int>::Init();
  AvgAgg<int>::Add(avg_state, 1);
  AvgAgg<int>::Add(avg_state, 2);
  AvgAgg<int>::Add(avg_state, 3);
  EXPECT_DOUBLE_EQ(AvgAgg<int>::Result(avg_state), 2.0);

  auto var_state = VarianceAgg<int>::Init();
  for (int v : {2, 4, 4, 4, 5, 5, 7, 9}) VarianceAgg<int>::Add(var_state, v);
  EXPECT_DOUBLE_EQ(VarianceAgg<int>::Result(var_state), 4.0);
}

TEST(Distinct, CollapsesDuplicatesPerSnapshot) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input = {StreamElement<int>(7, 0, 10),
                                           StreamElement<int>(7, 5, 20),
                                           StreamElement<int>(8, 5, 10)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& distinct = graph.Add<Distinct<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(distinct.input());
  distinct.AddSubscriber(sink.input());
  Drain(graph);

  auto out = Sorted(sink.elements());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], StreamElement<int>(7, 0, 20));  // merged
  EXPECT_EQ(out[1], StreamElement<int>(8, 5, 10));
}

TEST(Difference, EmitsSurplusCopies) {
  QueryGraph graph;
  // Left: two copies of 5 on [0,10). Right: one copy of 5 on [5,10).
  std::vector<StreamElement<int>> left = {StreamElement<int>(5, 0, 10),
                                          StreamElement<int>(5, 0, 10)};
  std::vector<StreamElement<int>> right = {StreamElement<int>(5, 5, 10)};
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto& diff = graph.Add<Difference<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  l.AddSubscriber(diff.left());
  r.AddSubscriber(diff.right());
  diff.AddSubscriber(sink.input());
  Drain(graph);

  auto out = Sorted(sink.elements());
  // [0,5): 2-0=2 copies; [5,10): 2-1=1 copy.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], StreamElement<int>(5, 0, 5));
  EXPECT_EQ(out[1], StreamElement<int>(5, 0, 5));
  EXPECT_EQ(out[2], StreamElement<int>(5, 5, 10));
}

TEST(Difference, NegativeSurplusClampsToZero) {
  QueryGraph graph;
  std::vector<StreamElement<int>> left = {StreamElement<int>(5, 0, 10)};
  std::vector<StreamElement<int>> right = {StreamElement<int>(5, 0, 10),
                                           StreamElement<int>(5, 0, 10)};
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto& diff = graph.Add<Difference<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  l.AddSubscriber(diff.left());
  r.AddSubscriber(diff.right());
  diff.AddSubscriber(sink.input());
  Drain(graph);
  EXPECT_TRUE(sink.elements().empty());
}

TEST(Coalesce, MergesAdjacentEqualPayloads) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input = {
      StreamElement<int>(1, 0, 5), StreamElement<int>(1, 5, 10),
      StreamElement<int>(2, 10, 15), StreamElement<int>(1, 15, 20)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& coalesce = graph.Add<Coalesce<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(coalesce.input());
  coalesce.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[0], StreamElement<int>(1, 0, 10));
  EXPECT_EQ(sink.elements()[1], StreamElement<int>(2, 10, 15));
  EXPECT_EQ(sink.elements()[2], StreamElement<int>(1, 15, 20));
  EXPECT_EQ(coalesce.merged_count(), 1u);
}

TEST(Reorder, RestoresOrderWithinSlack) {
  QueryGraph graph;
  std::vector<StreamElement<int>> raw = {
      StreamElement<int>::Point(1, 5), StreamElement<int>::Point(2, 3),
      StreamElement<int>::Point(3, 8), StreamElement<int>::Point(4, 6),
      StreamElement<int>::Point(5, 12)};
  std::size_t next = 0;
  auto& source = graph.Add<ReorderingSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        if (next >= raw.size()) return std::nullopt;
        return raw[next++];
      },
      /*slack=*/4);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 5u);
  for (std::size_t i = 1; i < sink.elements().size(); ++i) {
    EXPECT_LE(sink.elements()[i - 1].start(), sink.elements()[i].start());
  }
  EXPECT_EQ(source.dropped_count(), 0u);
}

TEST(Reorder, DropsElementsBeyondSlack) {
  QueryGraph graph;
  std::vector<StreamElement<int>> raw = {StreamElement<int>::Point(1, 100),
                                         StreamElement<int>::Point(2, 1)};
  std::size_t next = 0;
  auto& source = graph.Add<ReorderingSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        if (next >= raw.size()) return std::nullopt;
        return raw[next++];
      },
      /*slack=*/10);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);

  EXPECT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(source.dropped_count(), 1u);
}

}  // namespace
}  // namespace pipes
