// Tests for the optimizer's alternative plans: (a) every enumerated
// alternative is snapshot-equivalent when executed — the paper's
// "heuristically produces a set of snapshot-equivalent query plans" — and
// (b) the rate hints from the catalog (refreshable via the metadata
// feedback path) steer the chosen join order.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/physical.h"
#include "src/scheduler/scheduler.h"

namespace pipes::optimizer {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Schema KeyValueSchema() {
  return Schema({{"k", ValueType::kInt}, {"v", ValueType::kInt}});
}

std::vector<StreamElement<Tuple>> MakeStream(std::uint64_t seed, int count,
                                             int key_domain) {
  pipes::Random rng(seed);
  std::vector<StreamElement<Tuple>> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(StreamElement<Tuple>::Point(
        Tuple{Value(static_cast<std::int64_t>(rng.NextBounded(
                  static_cast<std::uint64_t>(key_domain)))),
              Value(static_cast<std::int64_t>(i))},
        i * 10));
  }
  return out;
}

/// Executes `plan` against fresh sources and returns the sorted payloads.
std::vector<Tuple> Execute(const LogicalPlan& plan,
                           const std::vector<StreamElement<Tuple>>& a,
                           const std::vector<StreamElement<Tuple>>& b,
                           const std::vector<StreamElement<Tuple>>& c) {
  QueryGraph graph;
  auto& sa = graph.Add<VectorSource<Tuple>>(a, "a");
  auto& sb = graph.Add<VectorSource<Tuple>>(b, "b");
  auto& sc = graph.Add<VectorSource<Tuple>>(c, "c");
  cql::Catalog catalog;
  PIPES_CHECK(catalog.RegisterStream("a", KeyValueSchema(), &sa).ok());
  PIPES_CHECK(catalog.RegisterStream("b", KeyValueSchema(), &sb).ok());
  PIPES_CHECK(catalog.RegisterStream("c", KeyValueSchema(), &sc).ok());

  PhysicalBuilder builder(&graph, &catalog);
  auto output = builder.Build(plan);
  PIPES_CHECK_MSG(output.ok(), output.status().ToString().c_str());
  auto& sink = graph.Add<CollectorSink<Tuple>>();
  (*output)->AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  std::vector<Tuple> payloads;
  for (const auto& e : sink.elements()) payloads.push_back(e.payload);
  std::sort(payloads.begin(), payloads.end());
  return payloads;
}

TEST(Alternatives, AllJoinOrdersProduceTheSameResults) {
  const auto a = MakeStream(1, 60, 6);
  const auto b = MakeStream(2, 60, 6);
  const auto c = MakeStream(3, 60, 6);

  cql::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterStream("a", KeyValueSchema()).ok());
  ASSERT_TRUE(catalog.RegisterStream("b", KeyValueSchema()).ok());
  ASSERT_TRUE(catalog.RegisterStream("c", KeyValueSchema()).ok());
  auto plan = cql::Compile(
      "SELECT a.v, b.v, c.v FROM a [RANGE 1 SECONDS], b [RANGE 1 SECONDS], "
      "c [RANGE 1 SECONDS] WHERE a.k = b.k AND b.k = c.k",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Optimizer optimizer(&catalog);
  const auto alternatives = optimizer.EnumerateAlternatives(plan->plan);
  ASSERT_GE(alternatives.size(), 3u);

  const auto reference = Execute(alternatives[0], a, b, c);
  ASSERT_FALSE(reference.empty());
  for (std::size_t i = 1; i < alternatives.size(); ++i) {
    EXPECT_EQ(Execute(alternatives[i], a, b, c), reference)
        << "alternative " << i << ":\n"
        << alternatives[i]->ToString();
  }
}

TEST(Alternatives, RateHintsSteerTheJoinOrder) {
  cql::Catalog catalog;
  ASSERT_TRUE(
      catalog.RegisterStream("a", KeyValueSchema(), nullptr, 10.0).ok());
  ASSERT_TRUE(
      catalog.RegisterStream("b", KeyValueSchema(), nullptr, 10.0).ok());
  ASSERT_TRUE(
      catalog.RegisterStream("c", KeyValueSchema(), nullptr, 5000.0).ok());

  // Key chain a-b-c: any two adjacent streams can join first, so the cost
  // model is free to push the fattest stream to the top of the chain.
  const char* query =
      "SELECT a.v FROM a [RANGE 1 SECONDS], c [RANGE 1 SECONDS], b [RANGE "
      "1 SECONDS] WHERE a.k = b.k AND b.k = c.k";
  auto plan = cql::Compile(query, catalog);
  ASSERT_TRUE(plan.ok());

  Optimizer optimizer(&catalog);
  auto result = optimizer.Optimize(plan->plan);
  // The fat stream 'c' must not be joined first: the chosen plan joins the
  // two cheap streams (a, b) at the bottom.
  const std::string signature = result.plan->Signature();
  const std::size_t a_pos = signature.find("Scan[a");
  const std::size_t b_pos = signature.find("Scan[b");
  const std::size_t c_pos = signature.find("Scan[c");
  ASSERT_NE(a_pos, std::string::npos);
  ASSERT_NE(b_pos, std::string::npos);
  ASSERT_NE(c_pos, std::string::npos);
  // Left-deep chains nest as Join(Join(x, y), z): the last-joined stream
  // appears rightmost. 'c' must be the outermost (rightmost) scan.
  EXPECT_GT(c_pos, a_pos);
  EXPECT_GT(c_pos, b_pos);

  // Adaptive feedback: making 'a' the fat stream flips the order.
  ASSERT_TRUE(catalog.SetRateHint("a", 5000.0).ok());
  ASSERT_TRUE(catalog.SetRateHint("c", 10.0).ok());
  auto adapted = optimizer.Optimize(plan->plan);
  const std::string adapted_signature = adapted.plan->Signature();
  EXPECT_GT(adapted_signature.find("Scan[a"),
            adapted_signature.find("Scan[c"));
  EXPECT_NE(signature, adapted_signature);
}

TEST(Alternatives, UnknownRateHintFails) {
  cql::Catalog catalog;
  EXPECT_EQ(catalog.SetRateHint("nope", 1.0).code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace pipes::optimizer
