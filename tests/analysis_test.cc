#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/join.h"
#include "src/algebra/parallel.h"
#include "src/algebra/window.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/fixtures.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/optimizer/logical_plan.h"
#include "src/optimizer/plan_xml.h"
#include "src/relational/expression.h"
#include "src/relational/schema.h"
#include "src/sweeparea/hash_sweep_area.h"
#include "src/sweeparea/list_sweep_area.h"
#include "src/sweeparea/tree_sweep_area.h"

namespace pipes::analysis {
namespace {

using optimizer::WindowKind;
using optimizer::WindowSpec;
using relational::MakeBinary;
using relational::MakeField;
using relational::MakeLiteral;
using relational::Schema;
using relational::Value;
using relational::ValueType;

std::vector<Diagnostic> OfRule(const std::vector<Diagnostic>& diags,
                               const std::string& rule) {
  std::vector<Diagnostic> out;
  for (const Diagnostic& d : diags) {
    if (d.rule_id == rule) out.push_back(d);
  }
  return out;
}

// --- The broken-graph corpus -------------------------------------------------

/// Every rule of the catalog has at least one fixture, and every fixture
/// produces its expected diagnostic (exact rule, severity, node, path).
TEST(Fixtures, EveryRuleCoveredAndFires) {
  std::vector<std::string> covered;
  for (const LintFixture& fixture : BrokenGraphFixtures()) {
    EXPECT_EQ(CheckFixture(fixture), "") << fixture.name;
    covered.push_back(fixture.rule_id);
  }
  for (const RuleInfo& rule : RuleCatalog()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), rule.id),
              covered.end())
        << "rule " << rule.id << " has no fixture";
  }
}

/// Fixture severities match the catalog's declared severity per rule.
TEST(Fixtures, SeveritiesMatchCatalog) {
  for (const LintFixture& fixture : BrokenGraphFixtures()) {
    const auto& catalog = RuleCatalog();
    const auto it = std::find_if(
        catalog.begin(), catalog.end(),
        [&](const RuleInfo& r) { return fixture.rule_id == r.id; });
    ASSERT_NE(it, catalog.end()) << fixture.rule_id;
    EXPECT_EQ(static_cast<int>(fixture.severity),
              static_cast<int>(it->severity))
        << fixture.rule_id;
  }
}

/// Catalog <-> fixture parity is a bijection: every rule has EXACTLY one
/// firing fixture and every fixture names a cataloged rule. The lint CLI's
/// `--fixtures` self-check iterates this same corpus, so this test fails
/// on any drift between the catalog, the fixtures, and the CLI gate.
TEST(Fixtures, ExactlyOneFixturePerRule) {
  const auto& catalog = RuleCatalog();
  for (const RuleInfo& rule : catalog) {
    int hits = 0;
    for (const LintFixture& fixture : BrokenGraphFixtures()) {
      if (fixture.rule_id == rule.id) ++hits;
    }
    EXPECT_EQ(hits, 1) << "rule " << rule.id << " must have exactly one "
                       << "fixture, found " << hits;
  }
  for (const LintFixture& fixture : BrokenGraphFixtures()) {
    const auto it = std::find_if(
        catalog.begin(), catalog.end(),
        [&](const RuleInfo& r) { return fixture.rule_id == r.id; });
    EXPECT_NE(it, catalog.end())
        << "fixture " << fixture.name << " names unknown rule "
        << fixture.rule_id;
  }
  EXPECT_EQ(BrokenGraphFixtures().size(), catalog.size());
}

// --- Per-rule exactness beyond the corpus ------------------------------------

TEST(Lint, CleanLinearChainIsSilent) {
  QueryGraph graph;
  auto& src = graph.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& window = graph.Add<algebra::TimeWindow<int>>(100, "window");
  auto& sink = graph.Add<CountingSink<int>>("sink");
  src.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  EXPECT_TRUE(Lint(graph).empty()) << ToText(Lint(graph));
}

TEST(Lint, CycleReportIsSingleAndNamesAllMembers) {
  const auto& fixtures = BrokenGraphFixtures();
  const auto it = std::find_if(
      fixtures.begin(), fixtures.end(),
      [](const LintFixture& f) { return f.name == "cycle"; });
  ASSERT_NE(it, fixtures.end());
  const auto diags = it->build().LintAll();
  ASSERT_EQ(diags.size(), 1u) << ToText(diags);
  EXPECT_EQ(diags[0].rule_id, "P001");
  EXPECT_NE(diags[0].message.find("loop-a"), std::string::npos);
  EXPECT_NE(diags[0].message.find("loop-b"), std::string::npos);
}

/// A window between the unbounded window and the blocking operator
/// re-bounds validity: P006 must NOT fire.
TEST(Lint, WindowDownstreamOfUnboundedSuppressesP006) {
  QueryGraph graph;
  auto& src = graph.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& unbounded = graph.Add<algebra::UnboundedWindow<int>>("unbounded");
  auto& rebound = graph.Add<algebra::TimeWindow<int>>(100, "rebound");
  auto& distinct = graph.Add<algebra::Distinct<int>>("distinct");
  auto& sink = graph.Add<CountingSink<int>>("sink");
  src.AddSubscriber(unbounded.input());
  unbounded.AddSubscriber(rebound.input());
  rebound.AddSubscriber(distinct.input());
  distinct.AddSubscriber(sink.input());
  EXPECT_TRUE(OfRule(Lint(graph), "P006").empty()) << ToText(Lint(graph));
}

/// The pinned assignment of a correctly built replicated stage is clean.
TEST(LintAssignment, PinnedAssignmentIsClean) {
  const LintSubject subject = BuildNexmarkLintGraph();
  ASSERT_GT(subject.num_workers, 0);
  const auto diags = LintAssignment(*subject.graph, subject.assignment,
                                    subject.num_workers);
  EXPECT_TRUE(diags.empty()) << ToText(diags);
}

// --- Clean workloads ---------------------------------------------------------

TEST(Workloads, TrafficGraphLintsClean) {
  const auto diags = BuildTrafficLintGraph().LintAll();
  EXPECT_TRUE(diags.empty()) << ToText(diags);
}

TEST(Workloads, NexmarkGraphLintsClean) {
  const auto diags = BuildNexmarkLintGraph().LintAll();
  EXPECT_TRUE(diags.empty()) << ToText(diags);
}

// --- Descriptor/trait consistency --------------------------------------------

/// The runtime descriptor's `key_partitionable` must agree with the
/// compile-time `KeyPartitionable` trait the replication helpers enforce —
/// the analyzer's P009 is exactly the type-erased mirror of that trait.
TEST(Descriptors, KeyPartitionableMatchesTrait) {
  struct IntKey {
    int operator()(const int& v) const { return v; }
  };
  struct IntValue {
    double operator()(const int& v) const { return static_cast<double>(v); }
  };
  struct Combine {
    int operator()(const int& l, const int& r) const { return l + r; }
  };

  using Grouped =
      algebra::GroupedAggregate<int, algebra::AvgAgg<double>, IntKey,
                                IntValue>;
  Grouped grouped(IntKey{}, IntValue{});
  EXPECT_EQ(grouped.Describe().key_partitionable,
            algebra::KeyPartitionable<Grouped>::value);
  EXPECT_TRUE(grouped.Describe().key_partitionable);

  algebra::Distinct<int> distinct;
  EXPECT_EQ(distinct.Describe().key_partitionable,
            algebra::KeyPartitionable<algebra::Distinct<int>>::value);

  using Scalar = algebra::TemporalAggregate<int, algebra::AvgAgg<double>,
                                            IntValue>;
  Scalar scalar(IntValue{});
  EXPECT_EQ(scalar.Describe().key_partitionable,
            algebra::KeyPartitionable<Scalar>::value);
  EXPECT_FALSE(scalar.Describe().key_partitionable);

  auto hash_join = algebra::MakeHashJoin<int, int>(IntKey{}, IntKey{},
                                                   Combine{}, "hj");
  using HashJoin = std::decay_t<decltype(*hash_join)>;
  EXPECT_EQ(hash_join->Describe().key_partitionable,
            algebra::KeyPartitionable<HashJoin>::value);
  EXPECT_TRUE(hash_join->Describe().key_partitionable);

  // Theta joins (list sweep areas) must stay non-partitionable.
  struct LessThan {
    bool operator()(const int& l, const int& r) const { return l < r; }
  };
  auto theta = algebra::MakeNestedLoopsJoin<int, int>(LessThan{}, Combine{},
                                                      "theta");
  using ThetaJoin = std::decay_t<decltype(*theta)>;
  EXPECT_EQ(theta->Describe().key_partitionable,
            algebra::KeyPartitionable<ThetaJoin>::value);
  EXPECT_FALSE(theta->Describe().key_partitionable);
}

// --- Plan-level linting ------------------------------------------------------

Schema BidSchema() {
  return Schema({{"auction", ValueType::kInt},
                 {"bidder", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

TEST(LintPlan, CleanPlanProducesNoDiagnostics) {
  WindowSpec range;
  range.kind = WindowKind::kRange;
  range.range = 1000;
  auto scan = optimizer::ScanOp("bids", BidSchema(), range);
  auto plan = optimizer::FilterOp(
      scan, MakeBinary(relational::BinaryOp::kGt, MakeField(2, "price"),
                       MakeLiteral(Value(10.0))));
  auto diags = LintPlan(plan);
  ASSERT_TRUE(diags.ok()) << diags.status().ToString();
  EXPECT_TRUE(diags.value().empty()) << ToText(diags.value());
}

/// DISTINCT over an UNBOUNDED scan window is the textbook P006 case — the
/// analyzer must see it through the plan-materialization path too.
TEST(LintPlan, UnboundedDistinctTriggersP006) {
  WindowSpec unbounded;
  unbounded.kind = WindowKind::kUnbounded;
  auto scan = optimizer::ScanOp("bids", BidSchema(), unbounded);
  auto plan = optimizer::DistinctOp(scan);
  auto diags = LintPlan(plan);
  ASSERT_TRUE(diags.ok()) << diags.status().ToString();
  EXPECT_FALSE(OfRule(diags.value(), "P006").empty())
      << ToText(diags.value());
}

/// The parity contract: linting a plan in memory and linting its XML
/// serialization yield identical diagnostics.
TEST(LintPlan, XmlRoundTripPreservesDiagnostics) {
  WindowSpec unbounded;
  unbounded.kind = WindowKind::kUnbounded;
  auto scan = optimizer::ScanOp("bids", BidSchema(), unbounded);
  auto pricey = optimizer::FilterOp(
      scan, MakeBinary(relational::BinaryOp::kGt, MakeField(2, "price"),
                       MakeLiteral(Value(10.0))));
  auto plan = optimizer::DistinctOp(optimizer::ProjectOp(
      pricey, {MakeField(0, "auction")}, {"auction"}));

  auto direct = LintPlan(plan);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  auto via_xml = LintPlanXml(optimizer::ToXml(plan));
  ASSERT_TRUE(via_xml.ok()) << via_xml.status().ToString();
  EXPECT_FALSE(direct.value().empty());
  EXPECT_EQ(direct.value(), via_xml.value())
      << "in-memory:\n" << ToText(direct.value()) << "via xml:\n"
      << ToText(via_xml.value());
}

TEST(LintPlan, MalformedXmlFailsCleanly) {
  EXPECT_FALSE(LintPlanXml("<not-a-plan>").ok());
}

// --- Rendering ---------------------------------------------------------------

TEST(Render, JsonEscapesAndTextMentionsRule) {
  Diagnostic d;
  d.rule_id = "P999";
  d.severity = Severity::kWarning;
  d.node = "a\"b";
  d.message = "line1\nline2";
  const std::string json = ToJson({d});
  EXPECT_NE(json.find("a\\\"b"), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  const std::string text = ToText({d});
  EXPECT_NE(text.find("P999"), std::string::npos);
  EXPECT_NE(text.find("warning"), std::string::npos);
}

TEST(Render, MaxSeverityAndCatalogOrdered) {
  EXPECT_EQ(static_cast<int>(MaxSeverity({})),
            static_cast<int>(Severity::kNote));
  const auto& catalog = RuleCatalog();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string(catalog[i - 1].id), std::string(catalog[i].id));
  }
}

// --- Dataflow abstract interpretation ----------------------------------------

const NodeFacts* FactsOf(const DataflowResult& result,
                         const std::string& name) {
  for (const NodeFacts& nf : result.nodes) {
    if (nf.name == name) return &nf;
  }
  return nullptr;
}

/// The forward pass propagates declared feed disorder, window
/// resegmentation, validity extents, and cardinalities along the chain.
TEST(Dataflow, FactsPropagateAlongChain) {
  QueryGraph graph;
  auto& src = graph.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  src.metadata().SetGauge("dataflow.total_elements", 100);
  src.metadata().SetGauge("dataflow.feed_disorder", 5);
  auto& window = graph.Add<algebra::TimeWindow<int>>(100, "window");
  auto& distinct = graph.Add<algebra::Distinct<int>>("distinct");
  auto& sink = graph.Add<CountingSink<int>>("sink");
  src.AddSubscriber(window.input());
  window.AddSubscriber(distinct.input());
  distinct.AddSubscriber(sink.input());

  const DataflowResult result = AnalyzeDataflow(graph);
  ASSERT_FALSE(result.has_cycle);

  const NodeFacts* s = FactsOf(result, "src");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->out.order, EdgeFacts::Order::kBoundedDisorder);
  EXPECT_EQ(s->out.disorder, 5);
  EXPECT_EQ(s->out.max_elements, 100u);

  const NodeFacts* w = FactsOf(result, "window");
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->out.order, EdgeFacts::Order::kResegmented);
  EXPECT_EQ(w->out.validity_extent, 100);
  EXPECT_EQ(w->out.max_elements, 100u);

  // Bounded feed + bounded extent: the blocking distinct is certifiable.
  const NodeFacts* d = FactsOf(result, "distinct");
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->state.blocking);
  EXPECT_NE(d->state.ram_bytes, NodeStateBound::kUnknownBytes);

  EXPECT_TRUE(result.certificate.ram_bounded());
  EXPECT_TRUE(result.certificate.progress_ok);

  // The declared disorder exceeds the (absent) reordering slack, so the
  // only dataflow diagnostic is P023 on the source.
  const auto diags = DataflowDiagnostics(graph);
  ASSERT_EQ(diags.size(), 1u) << ToText(diags);
  EXPECT_EQ(diags[0].rule_id, "P023");
  EXPECT_EQ(diags[0].node, "src");
}

/// Both demo workload graphs certify bounded, progressing state — the same
/// invariant `pipes_lint --certify --fail-on=warning` gates in CI.
TEST(Dataflow, CleanWorkloadsCertifyBoundedAndProgressing) {
  for (const LintSubject& subject :
       {BuildTrafficLintGraph(), BuildNexmarkLintGraph()}) {
    const DataflowResult result = AnalyzeDataflow(*subject.graph);
    EXPECT_FALSE(result.has_cycle);
    EXPECT_TRUE(result.certificate.ram_bounded());
    EXPECT_TRUE(result.certificate.progress_ok);
    EXPECT_NE(result.certificate.disorder_bound,
              NodeDescriptor::Dataflow::kUnknownTime);
    EXPECT_GT(result.certificate.ram_bytes, 0u);
  }
}

/// Plan-level analysis cross-checks the optimizer's cost-model rate
/// estimate against the certified static rate bound.
TEST(Dataflow, PlanAnalysisRunsCostModelCrossCheck) {
  WindowSpec range;
  range.kind = WindowKind::kRange;
  range.range = 1000;
  auto scan = optimizer::ScanOp("bids", BidSchema(), range);
  auto plan = optimizer::FilterOp(
      scan, MakeBinary(relational::BinaryOp::kGt, MakeField(2, "price"),
                       MakeLiteral(Value(10.0))));
  auto analyzed = AnalyzeDataflowPlan(plan);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE(analyzed->has_cost_check);
  EXPECT_GT(analyzed->certified_rate_eps, 0.0);
  EXPECT_TRUE(analyzed->rate_consistent)
      << "model=" << analyzed->cost_model_rate_eps
      << " certified=" << analyzed->certified_rate_eps;
}

/// Machine-readable dataflow documents stamp the schema version, are
/// parseable back, and never contain inf/NaN (unbounded encodes as -1).
TEST(Dataflow, JsonSchemaVersionRoundTrip) {
  QueryGraph graph;
  auto& src = graph.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& sink = graph.Add<CountingSink<int>>("sink");
  src.AddSubscriber(sink.input());
  const std::string json = ToJson(AnalyzeDataflow(graph));

  auto version = ParseLintJsonSchemaVersion(json);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(version.value(), kLintJsonSchemaVersion);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);

  // Documents predating the version stamp are rejected, not misread.
  EXPECT_FALSE(ParseLintJsonSchemaVersion("{\"diagnostics\": []}").ok());
  EXPECT_FALSE(ParseLintJsonSchemaVersion("{\"schema_version\": \"x\"}").ok());
  auto spaced = ParseLintJsonSchemaVersion("{ \"schema_version\" :  7 }");
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(spaced.value(), 7);
}

}  // namespace
}  // namespace pipes::analysis
