// Property tests for the batched transfer path: a graph run with
// `TransferBatch` (source batch sizes > 1) must be indistinguishable at the
// sink from the same graph run per-element — the same elements in the same
// order, the same done signal, and the same final watermark. Progress
// notifications may be coarser (one merge per batch instead of one per
// element) but must be a monotone subsequence of the per-element sequence:
// batching may skip intermediate watermarks, never invent or reorder them.
//
// Chains cover the operators with dedicated batch kernels (filter, map,
// union, windows, coalesce), the default replay path (join, count window),
// and a mixed-path graph (batched source -> non-overriding operator ->
// buffer), per DESIGN.md "Batched delivery".
//
// Every chain additionally runs under the `PipeExecutor` (DESIGN.md §4f),
// where transfers stage columnar runs into pipe edges and the columnar
// kernels carry the data: the executor run must produce the same element
// multiset, done state, and final watermark as the per-element reference —
// the columnar ≡ per-element kernel-equivalence check.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/coalesce.h"
#include "src/algebra/filter.h"
#include "src/algebra/join.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using namespace pipes::algebra;  // NOLINT: test-local convenience
using namespace pipes::testing;  // NOLINT: test-local convenience

/// Everything observable at the end of a run, from the sink's perspective.
struct Observation {
  std::vector<StreamElement<int>> elements;
  std::vector<Timestamp> progress;
  bool done = false;
  Timestamp final_watermark = kMinTimestamp;
};

/// Sink that records every callback the port delivers.
class ProbeSink : public Sink<int> {
 public:
  explicit ProbeSink(std::string name = "probe") : Sink<int>(std::move(name)) {}

  std::vector<StreamElement<int>> elements;
  std::vector<Timestamp> progress;

 protected:
  void PortElement(int /*port_id*/, const StreamElement<int>& e) override {
    elements.push_back(e);
  }
  void PortProgress(int port_id, Timestamp watermark) override {
    progress.push_back(watermark);
    Sink<int>::PortProgress(port_id, watermark);
  }
};

/// Builds a graph around pre-built input streams and returns what the probe
/// saw. The builder wires sources (created with `batch_size`) to the probe.
using BuildFn = std::function<void(
    QueryGraph&, const std::vector<std::vector<StreamElement<int>>>&,
    std::size_t batch_size, ProbeSink&)>;

Observation RunGraph(const std::vector<std::vector<StreamElement<int>>>& inputs,
                std::size_t batch_size, std::size_t train_size,
                const BuildFn& build) {
  QueryGraph graph;
  auto& probe = graph.Add<ProbeSink>();
  build(graph, inputs, batch_size, probe);
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, train_size);
  driver.RunToCompletion();
  Observation obs;
  obs.elements = probe.elements;
  obs.progress = probe.progress;
  obs.done = probe.done();
  obs.final_watermark = probe.watermark();
  return obs;
}

/// Same graph, driven by the executor-polled `PipeExecutor` instead of the
/// recursive scheduler: transfers stage into pipe edges and the data flows
/// through the columnar kernels.
Observation RunGraphOnExecutor(
    const std::vector<std::vector<StreamElement<int>>>& inputs,
    std::size_t batch_size, std::size_t train_size, const BuildFn& build) {
  QueryGraph graph;
  auto& probe = graph.Add<ProbeSink>();
  build(graph, inputs, batch_size, probe);
  scheduler::RoundRobinStrategy strategy;
  scheduler::PipeExecutor executor(graph, strategy, train_size);
  executor.RunToCompletion();
  Observation obs;
  obs.elements = probe.elements;
  obs.progress = probe.progress;
  obs.done = probe.done();
  obs.final_watermark = probe.watermark();
  return obs;
}

std::vector<StreamElement<int>> SortedByElement(
    std::vector<StreamElement<int>> v) {
  std::sort(v.begin(), v.end(),
            [](const StreamElement<int>& a, const StreamElement<int>& b) {
              return std::tuple(a.start(), a.end(), a.payload) <
                     std::tuple(b.start(), b.end(), b.payload);
            });
  return v;
}

bool IsSubsequence(const std::vector<Timestamp>& sub,
                   const std::vector<Timestamp>& full) {
  std::size_t i = 0;
  for (Timestamp t : full) {
    if (i < sub.size() && sub[i] == t) ++i;
  }
  return i == sub.size();
}

/// Whether the stricter progress check applies. Downstream of a `Buffer`
/// the batch = 1 reference is itself re-batched by the train drain, and the
/// train boundaries shift with the number of queued heartbeat entries — so
/// only direct (buffer-free) paths guarantee the subsequence relation.
enum class ProgressCheck { kSubsequenceOfReference, kMonotoneOnly };

/// Core assertion: for every batch size, the run is element-for-element
/// identical to the per-element (batch = 1) run and finishes with the same
/// done/watermark state. Progress values are always sorted; on buffer-free
/// paths they must additionally be a subsequence of the per-element run's
/// progress values (batching samples the same watermark trajectory at
/// coarser points — it may skip values, never invent or reorder them).
void ExpectBatchedEqualsPerElement(
    const std::vector<std::vector<StreamElement<int>>>& inputs,
    std::size_t train_size, const BuildFn& build,
    ProgressCheck progress_check = ProgressCheck::kSubsequenceOfReference) {
  const Observation reference = RunGraph(inputs, /*batch_size=*/1, train_size,
                                    build);
  EXPECT_TRUE(reference.done);
  for (std::size_t batch_size : {2u, 7u, 32u, 512u}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size) +
                 " train_size=" + std::to_string(train_size));
    const Observation batched = RunGraph(inputs, batch_size, train_size, build);
    EXPECT_EQ(batched.elements, reference.elements);
    EXPECT_EQ(batched.done, reference.done);
    EXPECT_EQ(batched.final_watermark, reference.final_watermark);
    EXPECT_TRUE(std::is_sorted(batched.progress.begin(),
                               batched.progress.end()));
    if (progress_check == ProgressCheck::kSubsequenceOfReference) {
      // On failure, name the first batched watermark the reference run
      // never notified — far more useful than two truncated vector dumps.
      std::size_t matched = 0;
      for (Timestamp t : reference.progress) {
        if (matched < batched.progress.size() &&
            batched.progress[matched] == t) {
          ++matched;
        }
      }
      EXPECT_TRUE(IsSubsequence(batched.progress, reference.progress))
          << "batched progress is not a subsequence of per-element progress; "
          << "first unmatched batched watermark: "
          << batched.progress[std::min(matched, batched.progress.size() - 1)];
    }
  }
  // Executor arm: the same chains on the pipe-polled driver, where the
  // columnar kernels carry the data. The executor interleaves multi-source
  // arrivals differently from the recursive drivers, so the comparison is
  // by element multiset plus end state.
  for (std::size_t batch_size : {1u, 7u, 64u}) {
    SCOPED_TRACE("executor batch_size=" + std::to_string(batch_size));
    const Observation exec =
        RunGraphOnExecutor(inputs, batch_size, train_size, build);
    EXPECT_EQ(SortedByElement(exec.elements),
              SortedByElement(reference.elements));
    EXPECT_EQ(exec.done, reference.done);
    EXPECT_EQ(exec.final_watermark, reference.final_watermark);
    EXPECT_TRUE(std::is_sorted(exec.progress.begin(), exec.progress.end()));
  }
}

class BatchEquivalence : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<StreamElement<int>> Stream(RandomStreamOptions options = {}) {
    Random rng(GetParam() * 7919 + streams_drawn_++);
    return RandomIntStream(rng, options);
  }
  std::size_t TrainSize() const { return 1 + GetParam() % 17; }

 private:
  std::uint64_t streams_drawn_ = 0;
};

TEST_P(BatchEquivalence, FilterMapChain) {
  const auto input = Stream();
  ExpectBatchedEqualsPerElement(
      {input}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& source = graph.Add<VectorSource<int>>(inputs[0], "source",
                                                    batch_size);
        auto pred = [](int v) { return v % 3 != 0; };
        auto& filter = graph.Add<Filter<int, decltype(pred)>>(pred);
        auto fn = [](int v) { return v * 2 + 1; };
        auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
        source.AddSubscriber(filter.input());
        filter.AddSubscriber(map.input());
        map.AddSubscriber(probe.input());
      });
}

TEST_P(BatchEquivalence, WindowedCoalesceChain) {
  RandomStreamOptions options;
  options.payload_domain = 3;  // frequent equal payloads to coalesce
  options.max_duration = 1;    // raw point stream
  const auto input = Stream(options);
  ExpectBatchedEqualsPerElement(
      {input}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& source = graph.Add<VectorSource<int>>(inputs[0], "source",
                                                    batch_size);
        auto& window = graph.Add<TimeWindow<int>>(/*size=*/8);
        auto& coalesce = graph.Add<Coalesce<int>>();
        source.AddSubscriber(window.input());
        window.AddSubscriber(coalesce.input());
        coalesce.AddSubscriber(probe.input());
      });
}

TEST_P(BatchEquivalence, UnionOfTwoBatchedSources) {
  const auto a = Stream();
  const auto b = Stream();
  ExpectBatchedEqualsPerElement(
      {a, b}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& sa = graph.Add<VectorSource<int>>(inputs[0], "a", batch_size);
        auto& sb = graph.Add<VectorSource<int>>(inputs[1], "b", batch_size);
        auto& u = graph.Add<Union<int>>();
        sa.AddSubscriber(u.left());
        sb.AddSubscriber(u.right());
        u.AddSubscriber(probe.input());
      });
}

// The join has no batch kernel: its elements arrive through the default
// per-element replay. This is the regression test for the watermark raise
// order in ReceiveBatch — an eagerly raised watermark would let the join
// flush staged results ahead of later elements of the same input batch.
TEST_P(BatchEquivalence, HashJoinViaDefaultReplay) {
  RandomStreamOptions options;
  options.count = 120;
  options.payload_domain = 5;  // frequent key collisions
  const auto left = Stream(options);
  const auto right = Stream(options);
  ExpectBatchedEqualsPerElement(
      {left, right}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& sl = graph.Add<VectorSource<int>>(inputs[0], "l", batch_size);
        auto& sr = graph.Add<VectorSource<int>>(inputs[1], "r", batch_size);
        auto identity = [](int v) { return v; };
        auto combine = [](int a, int b) { return a * 100 + b; };
        auto& join = graph.Add(
            MakeHashJoin<int, int>(identity, identity, combine));
        sl.AddSubscriber(join.left());
        sr.AddSubscriber(join.right());
        join.AddSubscriber(probe.input());
      });
}

// Mixed-path graph: batched source -> operator without a batch kernel
// (CountWindow uses the default replay) -> batched buffer drain. Exercises
// batch -> per-element -> batch transitions across one chain. The buffer's
// train drain coarsens progress in the reference run too, at boundaries
// that depend on queued heartbeats, so only monotonicity is asserted.
TEST_P(BatchEquivalence, MixedPathThroughCountWindowAndBuffer) {
  RandomStreamOptions options;
  options.max_duration = 1;
  const auto input = Stream(options);
  ExpectBatchedEqualsPerElement(
      {input}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& source = graph.Add<VectorSource<int>>(inputs[0], "source",
                                                    batch_size);
        auto& window = graph.Add<CountWindow<int>>(/*rows=*/5);
        auto& buffer = graph.Add<Buffer<int>>();
        auto fn = [](int v) { return v - 3; };
        auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
        source.AddSubscriber(window.input());
        window.AddSubscriber(buffer.input());
        buffer.AddSubscriber(map.input());
        map.AddSubscriber(probe.input());
      },
      ProgressCheck::kMonotoneOnly);
}

// Filter -> map -> union -> buffer: the bench_batch chain, checked for
// semantics here so the bench can claim pure-performance differences.
TEST_P(BatchEquivalence, FilterMapUnionBufferChain) {
  const auto a = Stream();
  const auto b = Stream();
  ExpectBatchedEqualsPerElement(
      {a, b}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& sa = graph.Add<VectorSource<int>>(inputs[0], "a", batch_size);
        auto& sb = graph.Add<VectorSource<int>>(inputs[1], "b", batch_size);
        auto pred = [](int v) { return v % 2 == 0; };
        auto& filter = graph.Add<Filter<int, decltype(pred)>>(pred);
        auto fn = [](int v) { return v + 100; };
        auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
        auto& u = graph.Add<Union<int>>();
        auto& buffer = graph.Add<Buffer<int>>();
        sa.AddSubscriber(filter.input());
        filter.AddSubscriber(map.input());
        map.AddSubscriber(u.left());
        sb.AddSubscriber(u.right());
        u.AddSubscriber(buffer.input());
        buffer.AddSubscriber(probe.input());
      },
      ProgressCheck::kMonotoneOnly);
}

// Two sources fanned in to the union's *left* port: per-port arrival order
// breaks, forcing the union off its two-queue fast path onto the spilled
// heap. Batched and per-element runs must still agree element-for-element
// (the spill preserves (start, arrival) release order exactly).
TEST_P(BatchEquivalence, UnionFanInSpillPath) {
  const auto a = Stream();
  const auto b = Stream();
  const auto c = Stream();
  ExpectBatchedEqualsPerElement(
      {a, b, c}, TrainSize(),
      [](QueryGraph& graph, const auto& inputs, std::size_t batch_size,
         ProbeSink& probe) {
        auto& sa = graph.Add<VectorSource<int>>(inputs[0], "a", batch_size);
        auto& sb = graph.Add<VectorSource<int>>(inputs[1], "b", batch_size);
        auto& sc = graph.Add<VectorSource<int>>(inputs[2], "c", batch_size);
        auto& u = graph.Add<Union<int>>();
        sa.AddSubscriber(u.left());
        sb.AddSubscriber(u.left());
        sc.AddSubscriber(u.right());
        u.AddSubscriber(probe.input());
      });
}

// Cross-thread edge: batched source -> ConcurrentBuffer -> map, driven by
// the ThreadScheduler. Thread interleaving makes intermediate progress
// nondeterministic, so only the end state is compared against the
// single-threaded per-element reference.
TEST_P(BatchEquivalence, ConcurrentBufferTrainDrainUnderThreadScheduler) {
  const auto input = Stream();
  const BuildFn build = [](QueryGraph& graph, const auto& inputs,
                           std::size_t batch_size, ProbeSink& probe) {
    auto& source = graph.Add<VectorSource<int>>(inputs[0], "source",
                                                batch_size);
    auto& buffer = graph.Add<ConcurrentBuffer<int>>();
    auto fn = [](int v) { return v * 5; };
    auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
    source.AddSubscriber(buffer.input());
    buffer.AddSubscriber(map.input());
    map.AddSubscriber(probe.input());
  };
  const Observation reference = RunGraph({input}, /*batch_size=*/1, TrainSize(),
                                    build);
  for (std::size_t batch_size : {1u, 32u}) {
    SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
    QueryGraph graph;
    auto& probe = graph.Add<ProbeSink>();
    build(graph, {input}, batch_size, probe);
    scheduler::ThreadScheduler driver(
        graph, /*num_threads=*/2,
        [] { return std::make_unique<scheduler::RoundRobinStrategy>(); },
        /*assignment=*/{}, /*batch_size=*/64);
    driver.RunToCompletion();
    EXPECT_EQ(probe.elements, reference.elements);
    EXPECT_TRUE(probe.done());
    EXPECT_EQ(probe.watermark(), reference.final_watermark);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pipes
