// Tests for the common substrate: Status/Result, time intervals, and the
// deterministic random distributions.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace pipes {
namespace {

TEST(Status, OkAndErrorStates) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");

  const Status err = Status::NotFound("thing is gone");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: thing is gone");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

Result<int> Chain(int v) {
  PIPES_ASSIGN_OR_RETURN(int doubled, ParsePositive(v));
  PIPES_ASSIGN_OR_RETURN(int quadrupled, ParsePositive(doubled));
  return quadrupled;
}

TEST(Result, ValueAndStatusPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnMacroChains) {
  EXPECT_EQ(*Chain(1), 4);
  EXPECT_FALSE(Chain(0).ok());
}

TEST(TimeInterval, ContainsOverlapsIntersect) {
  const TimeInterval a(0, 10);
  const TimeInterval b(5, 15);
  const TimeInterval c(10, 20);

  EXPECT_TRUE(a.Contains(0));
  EXPECT_TRUE(a.Contains(9));
  EXPECT_FALSE(a.Contains(10));  // half-open

  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(a.Overlaps(c));  // abutting is not overlapping
  EXPECT_EQ(a.Intersect(b), TimeInterval(5, 10));
  EXPECT_EQ(a.Length(), 10);
  EXPECT_EQ(TimeInterval::Point(7), TimeInterval(7, 8));
  EXPECT_EQ(ToString(TimeInterval(1, 2)), "[1, 2)");
}

TEST(Random, DeterministicPerSeed) {
  Random a(9), b(9), c(10);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Random, BoundedAndUniformRanges) {
  Random rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    const double d = rng.UniformDouble(2.0, 4.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 4.0);
  }
}

TEST(Random, DistributionsHaveExpectedMeans) {
  Random rng(8);
  double exp_sum = 0;
  double gauss_sum = 0;
  std::int64_t poisson_sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    exp_sum += rng.Exponential(0.5);  // mean 2
    gauss_sum += rng.Gaussian();      // mean 0
    poisson_sum += rng.Poisson(3.0);  // mean 3
  }
  EXPECT_NEAR(exp_sum / kSamples, 2.0, 0.1);
  EXPECT_NEAR(gauss_sum / kSamples, 0.0, 0.05);
  EXPECT_NEAR(static_cast<double>(poisson_sum) / kSamples, 3.0, 0.1);
}

TEST(Random, BernoulliFrequency) {
  Random rng(12);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Zipf, SkewsTowardSmallRanks) {
  Random rng(15);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t v = zipf.Sample(rng);
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 is the hottest; the tail is rare.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 10 * counts[99]);
  // theta=0 is uniform-ish.
  ZipfDistribution uniform(10, 0.0);
  std::vector<int> ucounts(10, 0);
  for (int i = 0; i < 20000; ++i) ++ucounts[uniform.Sample(rng)];
  for (int c : ucounts) EXPECT_NEAR(c, 2000, 300);
}

}  // namespace
}  // namespace pipes
