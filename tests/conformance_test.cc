#include "src/testing/conformance.h"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/time.h"
#include "src/relational/tuple.h"

namespace pipes::testing::conformance {
namespace {

using relational::Tuple;
using relational::Value;

std::vector<Corpus> LoadAll() {
  Result<std::vector<Corpus>> corpora = LoadCorpusDir(CONFORMANCE_CORPUS_DIR);
  EXPECT_TRUE(corpora.ok()) << corpora.status().ToString();
  return corpora.ok() ? *corpora : std::vector<Corpus>{};
}

/// Runs every corpus case under one arm and reports each failure with its
/// rendered expected/actual interval tables.
void ExpectArmClean(Arm arm) {
  const std::vector<Corpus> corpora = LoadAll();
  ASSERT_FALSE(corpora.empty());
  const CorpusRunStats stats = RunCorpora(corpora, {arm}, nullptr);
  EXPECT_GT(stats.cases_run, 0u);
  for (const CaseResult& failure : stats.failures) {
    ADD_FAILURE() << failure.file << "/" << failure.name << " ["
                  << failure.failing_arm << "]: " << failure.message
                  << "\nexpected:\n"
                  << failure.expected_rendered << "actual:\n"
                  << failure.actual_rendered;
  }
}

// --- Corpus format -----------------------------------------------------------

TEST(CorpusFormat, LoadsCheckedInCorpus) {
  const std::vector<Corpus> corpora = LoadAll();
  std::size_t cases = 0;
  for (const Corpus& corpus : corpora) {
    EXPECT_FALSE(corpus.streams.empty()) << corpus.file;
    cases += corpus.cases.size();
  }
  EXPECT_GE(corpora.size(), 6u);
  EXPECT_GE(cases, 40u) << "the conformance corpus must keep >= 40 cases";
}

TEST(CorpusFormat, ParsesStreamsCasesAndValues) {
  const std::string text = R"(
# comment
stream s (a:int, b:string, c:double, d:bool)
  0 5 | 1 'hello world' 2.5 true
  3 inf | null 'x' null false
end
case one
query SELECT a FROM s
  WHERE a > 0
expect (a:int)
  0 5 | 1
end
)";
  Result<Corpus> corpus = ParseCorpus(text, "inline");
  ASSERT_TRUE(corpus.ok()) << corpus.status().ToString();
  ASSERT_EQ(corpus->streams.size(), 1u);
  const CorpusStream& s = corpus->streams[0];
  ASSERT_EQ(s.rows.size(), 2u);
  EXPECT_EQ(s.rows[0].payload.field(1), Value("hello world"));
  EXPECT_EQ(s.rows[0].payload.field(3), Value(true));
  EXPECT_TRUE(s.rows[1].payload.field(0).is_null());
  EXPECT_EQ(s.rows[1].end(), kMaxTimestamp);
  ASSERT_EQ(corpus->cases.size(), 1u);
  // Continuation lines fold into one query string.
  EXPECT_EQ(corpus->cases[0].query, "SELECT a FROM s WHERE a > 0");
}

TEST(CorpusFormat, RejectsMalformedInput) {
  EXPECT_FALSE(ParseCorpus("stream s (a:int)\n  0 5 | 1\n", "f").ok())
      << "unterminated stream block";
  EXPECT_FALSE(ParseCorpus("stream s (a:int)\n  5 5 | 1\nend\n", "f").ok())
      << "empty interval";
  EXPECT_FALSE(
      ParseCorpus("stream s (a:int)\n  0 5 | 1 2\nend\n", "f").ok())
      << "value count mismatch";
  EXPECT_FALSE(
      ParseCorpus("stream s (a:int)\n  3 5 | 1\n  0 5 | 2\nend\n", "f").ok())
      << "rows out of start order";
  EXPECT_FALSE(ParseCorpus("bogus directive\n", "f").ok());
  EXPECT_FALSE(ParseCorpus("stream s (a:int)\n  0 5 | 1\nend\n"
                           "case c\nexpect (a:int)\nend\n",
                           "f")
                   .ok())
      << "case without a query";
}

// --- Canonicalization & snapshot comparison ---------------------------------

IntervalTable TableOf(std::vector<TupleElement> rows) {
  IntervalTable t;
  t.rows = std::move(rows);
  return t;
}

TEST(SnapshotCompare, CoalescingInsensitive) {
  // One row [0,10) vs. the same payload split at 4: snapshot-equal.
  const Tuple p({Value(std::int64_t{1})});
  const IntervalTable whole = TableOf({{p, 0, 10}});
  const IntervalTable split = TableOf({{p, 0, 4}, {p, 4, 10}});
  EXPECT_TRUE(SnapshotDiff(whole, split).equivalent);
  EXPECT_TRUE(SnapshotDiff(split, whole).equivalent);
  // And both canonicalize to the single maximal row.
  const IntervalTable canonical = Canonicalize(split);
  ASSERT_EQ(canonical.rows.size(), 1u);
  EXPECT_EQ(canonical.rows[0].interval, TimeInterval(0, 10));
}

TEST(SnapshotCompare, MultiplicityMatters) {
  const Tuple p({Value(std::int64_t{1})});
  const IntervalTable once = TableOf({{p, 0, 10}});
  const IntervalTable twice = TableOf({{p, 0, 10}, {p, 0, 10}});
  EXPECT_FALSE(SnapshotDiff(once, twice).equivalent);
  // Canonicalize keeps multiplicity: two rows for the doubled payload.
  EXPECT_EQ(Canonicalize(twice).rows.size(), 2u);
}

TEST(SnapshotCompare, DetectsPayloadAndTimingDrift) {
  const Tuple p({Value(std::int64_t{1})});
  const Tuple q({Value(std::int64_t{2})});
  EXPECT_FALSE(
      SnapshotDiff(TableOf({{p, 0, 10}}), TableOf({{q, 0, 10}})).equivalent);
  EXPECT_FALSE(
      SnapshotDiff(TableOf({{p, 0, 10}}), TableOf({{p, 0, 9}})).equivalent);
  const TableDiff diff =
      SnapshotDiff(TableOf({{p, 0, 10}}), TableOf({{p, 1, 10}}));
  EXPECT_FALSE(diff.equivalent);
  EXPECT_NE(diff.message.find("t=0"), std::string::npos) << diff.message;
}

TEST(SnapshotCompare, DoubleTolerance) {
  const Tuple a({Value(1.0 / 3.0)});
  const Tuple b({Value(0.3333333333333333)});
  EXPECT_TRUE(
      SnapshotDiff(TableOf({{a, 0, 5}}), TableOf({{b, 0, 5}})).equivalent);
  const Tuple c({Value(0.3334)});
  EXPECT_FALSE(
      SnapshotDiff(TableOf({{a, 0, 5}}), TableOf({{c, 0, 5}})).equivalent);
}

TEST(SnapshotCompare, RenderTableShowsCanonicalRows) {
  const Tuple p({Value(std::int64_t{7})});
  const std::string rendered =
      RenderTable(TableOf({{p, 0, 4}, {p, 4, kMaxTimestamp}}));
  EXPECT_EQ(rendered, "0 inf | (7)\n");
}

// --- The corpus, one arm at a time ------------------------------------------
//
// Each arm is an independent execution path; every corpus case must be
// snapshot-equivalent to its expected interval table under all of them.

TEST(ConformanceReference, AllCases) { ExpectArmClean(Arm::kReference); }

TEST(ConformanceEngine, AllCases) { ExpectArmClean(Arm::kEngine); }

TEST(ConformancePerElement, AllCases) { ExpectArmClean(Arm::kPerElement); }

TEST(ConformanceColumnar, AllCases) { ExpectArmClean(Arm::kColumnar); }

TEST(ConformanceKeyedParallel, AllCases) {
  ExpectArmClean(Arm::kKeyedParallel);
}

TEST(ConformanceRunner, LogsOneLinePerCase) {
  const std::vector<Corpus> corpora = LoadAll();
  ASSERT_FALSE(corpora.empty());
  std::ostringstream log;
  const CorpusRunStats stats =
      RunCorpora({corpora[0]}, {Arm::kReference}, &log);
  EXPECT_EQ(stats.cases_run, corpora[0].cases.size());
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(log.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, stats.cases_run);
}

}  // namespace
}  // namespace pipes::testing::conformance
