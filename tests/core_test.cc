// Tests for the publish-subscribe core: sources, ports, pipes, buffers,
// generator sources, graph management, and the watermark/done protocol.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/ordered_buffer.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/strategy.h"

namespace pipes {
namespace {

using algebra::Filter;
using algebra::Map;

std::vector<StreamElement<int>> IntPoints(std::initializer_list<int> values) {
  return VectorSource<int>::Points(std::vector<int>(values));
}

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(Core, SourceDeliversDirectlyToSubscribedSink) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3}));
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());

  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[0].payload, 1);
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(0, 1));
  EXPECT_EQ(sink.elements()[2].payload, 3);
  EXPECT_TRUE(sink.done());
}

TEST(Core, MultipleSubscribersEachReceiveEveryElement) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({4, 5}));
  auto& a = graph.Add<CollectorSink<int>>("a");
  auto& b = graph.Add<CollectorSink<int>>("b");
  source.AddSubscriber(a.input());
  source.AddSubscriber(b.input());

  Drain(graph);

  EXPECT_EQ(a.elements().size(), 2u);
  EXPECT_EQ(b.elements().size(), 2u);
  EXPECT_EQ(source.num_subscribers(), 2u);
}

TEST(Core, UnsubscribeStopsDelivery) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3, 4}));
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, /*batch_size=*/2);
  driver.Step();  // Delivers two elements.
  ASSERT_EQ(sink.elements().size(), 2u);
  ASSERT_TRUE(source.UnsubscribeFrom(sink.input()).ok());
  driver.RunToCompletion();

  EXPECT_EQ(sink.elements().size(), 2u);
  EXPECT_TRUE(source.downstream().empty());
  EXPECT_TRUE(sink.upstream().empty());
}

TEST(Core, UnsubscribeOfUnknownPortFails) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1}));
  auto& sink = graph.Add<CollectorSink<int>>();
  EXPECT_EQ(source.UnsubscribeFrom(sink.input()).code(),
            StatusCode::kNotFound);
}

TEST(Core, PipeChainsRunInsideOneTransferCall) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3, 4, 5, 6}));
  auto even = [](int x) { return x % 2 == 0; };
  auto& filter = graph.Add<Filter<int, decltype(even)>>(even);
  auto doubled = [](int x) { return x * 2; };
  auto& map = graph.Add<Map<int, int, decltype(doubled)>>(doubled);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  map.AddSubscriber(sink.input());

  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[0].payload, 4);
  EXPECT_EQ(sink.elements()[1].payload, 8);
  EXPECT_EQ(sink.elements()[2].payload, 12);
  // The filter saw 6, passed 3.
  EXPECT_EQ(filter.elements_in(), 6u);
  EXPECT_EQ(filter.elements_out(), 3u);
}

TEST(Core, BufferDecouplesAndPreservesOrderAndDone) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({7, 8, 9}));
  auto& buffer = graph.Add<Buffer<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());

  // Drive only the source: elements park in the buffer.
  while (source.HasWork()) source.DoWork(1);
  EXPECT_GE(buffer.queue_size(), 3u);
  EXPECT_TRUE(sink.elements().empty());

  while (buffer.HasWork()) buffer.DoWork(1);
  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[2].payload, 9);
  EXPECT_TRUE(sink.done());
  EXPECT_TRUE(buffer.IsFinished());
}

TEST(Core, BufferCoalescesConsecutiveHeartbeats) {
  QueryGraph graph;
  auto& buffer = graph.Add<Buffer<int>>();
  // A source that emits only heartbeats (no elements) must not grow the
  // queue unboundedly.
  class HeartbeatSource : public Source<int> {
   public:
    HeartbeatSource() : Source<int>("hb") {}
    void Emit(Timestamp t) { TransferHeartbeat(t); }
  };
  auto& source = graph.Add<HeartbeatSource>();
  source.AddSubscriber(buffer.input());

  for (Timestamp t = 1; t <= 100; ++t) source.Emit(t);
  EXPECT_LE(buffer.queue_size(), 1u);
}

TEST(Core, BoundedBufferShedsOldestElements) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3, 4, 5}));
  auto& buffer = graph.Add<Buffer<int>>("bounded", /*capacity=*/2);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());

  // Burst: the source outruns the buffer; only the 2 newest elements
  // survive, and control signals (done) are never dropped.
  while (source.HasWork()) source.DoWork(10);
  EXPECT_EQ(buffer.dropped_count(), 3u);
  while (buffer.HasWork()) buffer.DoWork(10);
  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].payload, 4);
  EXPECT_EQ(sink.elements()[1].payload, 5);
  EXPECT_TRUE(sink.done());
}

TEST(Core, BoundedBufferKeepsEverythingWhenDrainedInTime) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3, 4, 5}));
  auto& buffer = graph.Add<Buffer<int>>("bounded", /*capacity=*/2);
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());
  Drain(graph);  // round-robin alternates source and buffer
  EXPECT_EQ(sink.count() + buffer.dropped_count(), 5u);
  EXPECT_LT(buffer.dropped_count(), 5u);
}

TEST(Core, UnionPortAcceptsMultipleUpstreams) {
  // An n-ary union without n operators: several sources subscribed to the
  // same input port; the port merges their watermarks.
  QueryGraph graph;
  auto& a = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2}, /*t0=*/0));
  auto& b = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({3, 4}, /*t0=*/0));
  auto& c = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({5, 6}, /*t0=*/0));
  auto& u = graph.Add<algebra::Union<int>>();
  auto& d = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({7}, /*t0=*/0));
  auto& sink = graph.Add<CollectorSink<int>>();
  a.AddSubscriber(u.left());
  b.AddSubscriber(u.left());
  c.AddSubscriber(u.left());
  d.AddSubscriber(u.right());
  u.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 7u);
  for (std::size_t i = 1; i < sink.elements().size(); ++i) {
    EXPECT_LE(sink.elements()[i - 1].start(), sink.elements()[i].start());
  }
  EXPECT_TRUE(sink.done());
}

TEST(Core, PortMergesWatermarksOfMultipleUpstreams) {
  QueryGraph graph;
  auto& fast = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2, 3}, /*t0=*/100));
  auto& slow = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({4, 5}, /*t0=*/10));
  auto& sink = graph.Add<CollectorSink<int>>();
  fast.AddSubscriber(sink.input());
  slow.AddSubscriber(sink.input());

  while (fast.HasWork()) fast.DoWork(1);
  // Only the fast source has finished; the slow one still constrains the
  // merged watermark (done upstreams stop constraining).
  EXPECT_EQ(sink.watermark(), kMinTimestamp);
  slow.DoWork(1);
  EXPECT_EQ(sink.watermark(), 10);
  slow.DoWork(10);
  EXPECT_TRUE(sink.done());
  EXPECT_EQ(sink.watermark(), kMaxTimestamp);
}

TEST(Core, LateSubscriberSeesCurrentProgress) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3}));
  auto& early = graph.Add<CollectorSink<int>>("early");
  source.AddSubscriber(early.input());
  source.DoWork(2);

  auto& late = graph.Add<CollectorSink<int>>("late");
  source.AddSubscriber(late.input());
  // The late subscriber's watermark reflects elapsed stream time.
  EXPECT_EQ(late.watermark(), 1);

  Drain(graph);
  EXPECT_EQ(early.elements().size(), 3u);
  EXPECT_EQ(late.elements().size(), 1u);
  EXPECT_TRUE(late.done());
}

TEST(Core, SubscribingAfterDoneSignalsDoneImmediately) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1}));
  auto& early = graph.Add<CollectorSink<int>>("early");
  source.AddSubscriber(early.input());
  Drain(graph);

  auto& late = graph.Add<CollectorSink<int>>("late");
  source.AddSubscriber(late.input());
  EXPECT_TRUE(late.done());
}

TEST(Core, GraphValidateAcceptsDagAndRejectsNothingHere) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1}));
  auto& a = graph.Add<Buffer<int>>("a");
  auto& b = graph.Add<CollectorSink<int>>("b");
  source.AddSubscriber(a.input());
  a.AddSubscriber(b.input());
  EXPECT_TRUE(graph.Validate().ok());
}

TEST(Core, GraphRemoveRequiresDetachedNode) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1}));
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());

  EXPECT_EQ(graph.Remove(sink).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(source.UnsubscribeFrom(sink.input()).ok());
  EXPECT_TRUE(graph.Remove(sink).ok());
  EXPECT_EQ(graph.size(), 1u);
}

TEST(Core, ToDotContainsNodesAndEdges) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1}), "src");
  auto& sink = graph.Add<CollectorSink<int>>("snk");
  source.AddSubscriber(sink.input());
  const std::string dot = graph.ToDot();
  EXPECT_NE(dot.find("src"), std::string::npos);
  EXPECT_NE(dot.find("snk"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Core, FunctionSourceGeneratesUntilNullopt) {
  QueryGraph graph;
  int next = 0;
  auto& source = graph.Add<FunctionSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        if (next >= 5) return std::nullopt;
        int v = next++;
        return StreamElement<int>::Point(v, v);
      });
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);
  EXPECT_EQ(sink.elements().size(), 5u);
}

TEST(Core, OrderedOutputBufferReleasesInStartOrder) {
  OrderedOutputBuffer<int> buffer;
  buffer.Push(StreamElement<int>::Point(3, 30));
  buffer.Push(StreamElement<int>::Point(1, 10));
  buffer.Push(StreamElement<int>::Point(2, 20));

  std::vector<int> seen;
  buffer.FlushUpTo(21, [&](const StreamElement<int>& e) {
    seen.push_back(e.payload);
  });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
  buffer.FlushAll(
      [&](const StreamElement<int>& e) { seen.push_back(e.payload); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(buffer.empty());
}

TEST(Core, CountingSinkCounts) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({1, 2, 3, 4}));
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);
  EXPECT_EQ(sink.count(), 4u);
}

TEST(Core, CallbackSinkInvokesCallback) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(IntPoints({5}));
  int sum = 0;
  auto& sink = graph.Add<CallbackSink<int>>(
      [&](const StreamElement<int>& e) { sum += e.payload; });
  source.AddSubscriber(sink.input());
  Drain(graph);
  EXPECT_EQ(sum, 5);
}

TEST(Core, NodeIdsAreUniqueAndNamed) {
  QueryGraph graph;
  auto& a = graph.Add<CollectorSink<int>>("first");
  auto& b = graph.Add<CollectorSink<int>>("second");
  EXPECT_NE(a.id(), b.id());
  EXPECT_EQ(a.name(), "first");
  b.set_name("renamed");
  EXPECT_EQ(b.name(), "renamed");
}

}  // namespace
}  // namespace pipes
