// End-to-end CQL property tests: full compiled + optimized + physically
// instantiated queries are checked against the naive snapshot reference on
// randomized tuple streams — the whole stack (parser, analyzer, rules,
// cost model, physical builder, operators, scheduler) must preserve
// snapshot equivalence, not just individual operators.

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

class CqlProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Random (key INT, val INT) point-tuple stream.
  std::vector<StreamElement<Tuple>> RandomTuples(std::uint64_t seed,
                                                 int count, int key_domain,
                                                 int val_domain) {
    pipes::Random rng(seed);
    std::vector<StreamElement<Tuple>> out;
    Timestamp t = 0;
    for (int i = 0; i < count; ++i) {
      t += rng.UniformInt(1, 5);
      out.push_back(StreamElement<Tuple>::Point(
          Tuple{Value(static_cast<std::int64_t>(
                    rng.NextBounded(static_cast<std::uint64_t>(key_domain)))),
                Value(static_cast<std::int64_t>(rng.NextBounded(
                    static_cast<std::uint64_t>(val_domain))))},
          t));
    }
    return out;
  }

  /// Installs and runs `query_text` against `input`; returns the collected
  /// result elements.
  std::vector<StreamElement<Tuple>> Run(
      const std::string& query_text,
      const std::vector<StreamElement<Tuple>>& input) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<Tuple>>(input, "s");
    cql::Catalog catalog;
    PIPES_CHECK(catalog
                    .RegisterStream("s",
                                    Schema({{"k", ValueType::kInt},
                                            {"v", ValueType::kInt}}),
                                    &source)
                    .ok());
    optimizer::PlanManager manager(&graph, &catalog);
    auto installed = manager.InstallQuery(query_text);
    PIPES_CHECK_MSG(installed.ok(), installed.status().ToString().c_str());
    auto& sink = graph.Add<CollectorSink<Tuple>>();
    installed->output->AddSubscriber(sink.input());
    scheduler::RandomStrategy strategy(GetParam());
    scheduler::SingleThreadScheduler driver(graph, strategy,
                                            1 + GetParam() % 7);
    driver.RunToCompletion();
    return sink.elements();
  }
};

TEST_P(CqlProperty, WindowedGroupCountMatchesReference) {
  const auto input = RandomTuples(GetParam(), 150, 4, 100);
  const Timestamp w = 40;
  const auto actual =
      Run("SELECT k, COUNT(*) AS n FROM s [RANGE 40 MILLISECONDS] GROUP BY "
          "k",
          input);

  // Reference: widen to [t, t+w), then per-instant per-key counts.
  std::vector<StreamElement<Tuple>> windowed;
  for (const auto& e : input) {
    windowed.push_back(StreamElement<Tuple>(e.payload, e.start(),
                                            e.start() + w));
  }
  auto instants = testing::CriticalInstants(windowed);
  for (Timestamp t : instants) {
    std::map<std::int64_t, std::int64_t> counts;
    for (const auto& e : windowed) {
      if (e.interval.Contains(t)) ++counts[e.payload.field(0).AsInt()];
    }
    std::vector<Tuple> expected;
    for (const auto& [k, n] : counts) {
      expected.push_back(Tuple{Value(k), Value(n)});
    }
    std::sort(expected.begin(), expected.end());
    auto snapshot = testing::SnapshotAt(actual, t);
    ASSERT_EQ(snapshot, expected) << "t=" << t;
  }
}

TEST_P(CqlProperty, FilteredSumMatchesReference) {
  const auto input = RandomTuples(GetParam() + 1, 150, 4, 50);
  const Timestamp w = 25;
  const auto actual = Run(
      "SELECT SUM(v) AS total FROM s [RANGE 25 MILLISECONDS] WHERE k <> 0",
      input);

  std::vector<StreamElement<Tuple>> windowed;
  for (const auto& e : input) {
    if (e.payload.field(0).AsInt() == 0) continue;
    windowed.push_back(StreamElement<Tuple>(e.payload, e.start(),
                                            e.start() + w));
  }
  auto instants = testing::CriticalInstants(windowed);
  for (Timestamp t : instants) {
    std::int64_t sum = 0;
    bool any = false;
    for (const auto& e : windowed) {
      if (e.interval.Contains(t)) {
        sum += e.payload.field(1).AsInt();
        any = true;
      }
    }
    std::vector<Tuple> expected;
    if (any) expected.push_back(Tuple{Value(sum)});
    ASSERT_EQ(testing::SnapshotAt(actual, t), expected) << "t=" << t;
  }
}

TEST_P(CqlProperty, DistinctProjectionMatchesReference) {
  const auto input = RandomTuples(GetParam() + 2, 120, 3, 3);
  const Timestamp w = 30;
  const auto actual =
      Run("SELECT DISTINCT k FROM s [RANGE 30 MILLISECONDS]", input);

  std::vector<StreamElement<Tuple>> windowed;
  for (const auto& e : input) {
    windowed.push_back(StreamElement<Tuple>(e.payload, e.start(),
                                            e.start() + w));
  }
  auto instants = testing::CriticalInstants(windowed);
  for (Timestamp t : instants) {
    std::vector<Tuple> expected;
    for (const auto& e : windowed) {
      if (e.interval.Contains(t)) {
        expected.push_back(Tuple{e.payload.field(0)});
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    ASSERT_EQ(testing::SnapshotAt(actual, t), expected) << "t=" << t;
  }
}

TEST_P(CqlProperty, IStreamEmitsEveryWindowInsertionOnce) {
  const auto input = RandomTuples(GetParam() + 3, 100, 5, 10);
  const auto actual =
      Run("SELECT ISTREAM k FROM s [RANGE 50 MILLISECONDS]", input);
  // One insertion per input element, at its timestamp, as a point element.
  ASSERT_EQ(actual.size(), input.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].start(), input[i].start());
    EXPECT_EQ(actual[i].interval.Length(), 1);
    EXPECT_EQ(actual[i].payload.field(0), input[i].payload.field(0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CqlProperty,
                         ::testing::Values(101, 211, 331, 443));

}  // namespace
}  // namespace pipes
