// Tests for the CQL extensions: ISTREAM/DSTREAM relation-to-stream
// operators (algebra + end-to-end), HAVING, and VARIANCE/STDDEV.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/relation_to_stream.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"

namespace pipes {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(RelationToStream, IStreamEmitsPointAtStart) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input = {StreamElement<int>(7, 5, 50),
                                           StreamElement<int>(8, 10, 20)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& istream = graph.Add<algebra::IStream<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(istream.input());
  istream.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0], StreamElement<int>(7, 5, 6));
  EXPECT_EQ(sink.elements()[1], StreamElement<int>(8, 10, 11));
}

TEST(RelationToStream, DStreamEmitsPointAtEndInOrder) {
  QueryGraph graph;
  // Ends out of start order: 7 ends at 50, 8 ends at 20.
  std::vector<StreamElement<int>> input = {StreamElement<int>(7, 5, 50),
                                           StreamElement<int>(8, 10, 20),
                                           StreamElement<int>(9, 15, kMaxTimestamp)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& dstream = graph.Add<algebra::DStream<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(dstream.input());
  dstream.AddSubscriber(sink.input());
  Drain(graph);

  // The never-expiring element produces nothing; deletions come end-ordered.
  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0], StreamElement<int>(8, 20, 21));
  EXPECT_EQ(sink.elements()[1], StreamElement<int>(7, 50, 51));
}

class CqlExtensions : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<StreamElement<Tuple>> input;
    // Keys 0..2, values rise with time; each tuple valid for 100 ms.
    for (int i = 0; i < 12; ++i) {
      input.push_back(StreamElement<Tuple>(
          Tuple{Value(static_cast<std::int64_t>(i % 3)),
                Value(static_cast<double>(i))},
          i * 10, i * 10 + 100));
    }
    source_ = &graph_.Add<VectorSource<Tuple>>(input, "obs");
    ASSERT_TRUE(catalog_
                    .RegisterStream("obs",
                                    Schema({{"k", ValueType::kInt},
                                            {"v", ValueType::kDouble}}),
                                    source_)
                    .ok());
  }

  QueryGraph graph_;
  cql::Catalog catalog_;
  VectorSource<Tuple>* source_ = nullptr;
};

TEST_F(CqlExtensions, IStreamQueryProducesPointElements) {
  optimizer::PlanManager manager(&graph_, &catalog_);
  auto query = manager.InstallQuery("SELECT ISTREAM k FROM obs");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->plan->kind, optimizer::LogicalOp::Kind::kIStream);
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_EQ(sink.elements().size(), 12u);
  for (const auto& e : sink.elements()) {
    EXPECT_EQ(e.interval.Length(), 1);  // point validity
  }
}

TEST_F(CqlExtensions, DStreamQueryEmitsDeletions) {
  optimizer::PlanManager manager(&graph_, &catalog_);
  auto query = manager.InstallQuery("SELECT DSTREAM k FROM obs");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_EQ(sink.elements().size(), 12u);
  // First deletion happens at the first tuple's expiry (t=100).
  EXPECT_EQ(sink.elements()[0].start(), 100);
}

TEST_F(CqlExtensions, HavingFiltersGroups) {
  optimizer::PlanManager manager(&graph_, &catalog_);
  // Group sums: k=0 gets 0+3+6+9=18, k=1 gets 1+4+7+10=22, k=2 gets 26,
  // on the fully-overlapping segment. HAVING keeps sums > 20.
  auto query = manager.InstallQuery(
      "SELECT k, SUM(v) AS total FROM obs GROUP BY k HAVING total > 20");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    EXPECT_GT(e.payload.field(1).AsDouble(), 20.0);
    EXPECT_NE(e.payload.field(0).AsInt(), 0);  // group 0 never exceeds 20
  }
}

TEST_F(CqlExtensions, HavingWithoutAggregationIsRejected) {
  // The parser only allows HAVING after GROUP BY, so this is a parse error;
  // either way it must not compile into a plan.
  EXPECT_FALSE(
      cql::Compile("SELECT k FROM obs HAVING k > 1", catalog_).ok());
}

TEST_F(CqlExtensions, VarianceAndStddevAggregates) {
  optimizer::PlanManager manager(&graph_, &catalog_);
  auto query = manager.InstallQuery(
      "SELECT VARIANCE(v) AS var, STDDEV(v) AS sd FROM obs [RANGE 1 HOURS]");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_FALSE(sink.elements().empty());
  // On the segment containing all 12 values 0..11: population variance of
  // 0..11 is 143/12 ≈ 11.9167.
  bool saw_full_segment = false;
  for (const auto& e : sink.elements()) {
    const double var = e.payload.field(0).AsDouble();
    const double sd = e.payload.field(1).AsDouble();
    EXPECT_NEAR(sd * sd, var, 1e-9);
    if (std::abs(var - 143.0 / 12.0) < 1e-9) saw_full_segment = true;
  }
  EXPECT_TRUE(saw_full_segment);
}

TEST_F(CqlExtensions, RStreamIsDefaultAndExplicit) {
  auto implicit = cql::Compile("SELECT k FROM obs", catalog_);
  auto explicit_mode = cql::Compile("SELECT RSTREAM k FROM obs", catalog_);
  ASSERT_TRUE(implicit.ok() && explicit_mode.ok());
  EXPECT_EQ((implicit->plan)->Signature(), (explicit_mode->plan)->Signature());
}

TEST_F(CqlExtensions, IStreamQueriesShareAndUninstall) {
  optimizer::PlanManager manager(&graph_, &catalog_);
  const std::size_t baseline = graph_.size();
  auto a = manager.InstallQuery("SELECT ISTREAM k FROM obs WHERE v > 3");
  auto b = manager.InstallQuery("SELECT ISTREAM k FROM obs WHERE v > 3");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(b->operators_created, 0u);
  ASSERT_TRUE(manager.UninstallQuery(a->query_id).ok());
  ASSERT_TRUE(manager.UninstallQuery(b->query_id).ok());
  EXPECT_EQ(graph_.size(), baseline);
}

}  // namespace
}  // namespace pipes
