// Tests for the CQL front end: lexer, parser, analyzer.

#include <gtest/gtest.h>

#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/cql/lexer.h"
#include "src/cql/parser.h"
#include "src/optimizer/optimizer.h"

namespace pipes::cql {
namespace {

using optimizer::LogicalOp;
using optimizer::WindowKind;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Schema BidSchema() {
  return Schema({{"auction", ValueType::kInt},
                 {"bidder", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

Schema PersonSchema() {
  return Schema({{"id", ValueType::kInt}, {"city", ValueType::kString}});
}

Catalog MakeCatalog() {
  Catalog catalog;
  PIPES_CHECK(catalog.RegisterStream("bids", BidSchema()).ok());
  PIPES_CHECK(catalog.RegisterStream("persons", PersonSchema()).ok());
  return catalog;
}

TEST(Lexer, TokenizesAllKinds) {
  auto result = Tokenize("SELECT x1, 'str' 3 4.5 <= <> != [RANGE]");
  ASSERT_TRUE(result.ok());
  const auto& tokens = *result;
  EXPECT_TRUE(tokens[0].Is("SELECT"));  // matcher pattern is uppercase
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "x1");
  EXPECT_TRUE(tokens[2].IsSymbol(","));
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "str");
  EXPECT_EQ(tokens[4].int_value, 3);
  EXPECT_DOUBLE_EQ(tokens[5].double_value, 4.5);
  EXPECT_TRUE(tokens[6].IsSymbol("<="));
  EXPECT_TRUE(tokens[7].IsSymbol("<>"));
  EXPECT_TRUE(tokens[8].IsSymbol("<>"));  // != normalizes
  EXPECT_TRUE(tokens[9].IsSymbol("["));
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, RejectsBadInput) {
  EXPECT_EQ(Tokenize("SELECT 'unterminated").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(Tokenize("SELECT #").status().code(), StatusCode::kParseError);
}

TEST(Parser, ParsesWindowsAliasesWhereGroupBy) {
  auto result = Parse(
      "SELECT b.auction, MAX(b.price) AS top FROM bids [RANGE 10 MINUTES "
      "SLIDE 2 MINUTES] AS b WHERE b.price > 5 GROUP BY b.auction");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const QueryAst& query = *result;
  ASSERT_EQ(query.select.size(), 2u);
  EXPECT_EQ(query.select[1].alias, "top");
  ASSERT_EQ(query.from.size(), 1u);
  EXPECT_EQ(query.from[0].stream, "bids");
  EXPECT_EQ(query.from[0].alias, "b");
  EXPECT_EQ(query.from[0].window.kind, WindowKind::kRangeSlide);
  EXPECT_EQ(query.from[0].window.range, 10ll * 60 * 1000);
  EXPECT_EQ(query.from[0].window.slide, 2ll * 60 * 1000);
  ASSERT_NE(query.where, nullptr);
  ASSERT_EQ(query.group_by.size(), 1u);
  EXPECT_EQ(query.group_by[0], "b.auction");
}

TEST(Parser, ParsesRowsNowUnboundedWindows) {
  auto rows = Parse("SELECT * FROM bids [ROWS 100]");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->from[0].window.kind, WindowKind::kRows);
  EXPECT_EQ(rows->from[0].window.rows, 100u);

  auto now = Parse("SELECT * FROM bids [NOW]");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->from[0].window.kind, WindowKind::kNow);

  auto unbounded = Parse("SELECT * FROM bids [UNBOUNDED]");
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(unbounded->from[0].window.kind, WindowKind::kUnbounded);
}

TEST(Parser, ExpressionPrecedence) {
  auto result = Parse("SELECT a + b * 2 > 10 AND NOT c FROM bids");
  ASSERT_TRUE(result.ok());
  // (((a + (b * 2)) > 10) AND (NOT c))
  EXPECT_EQ(result->select[0].expr->ToString(),
            "(((a + (b * 2)) > 10) AND NOT c)");
}

TEST(Parser, ReportsErrors) {
  EXPECT_FALSE(Parse("SELECT FROM bids").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("SELECT * FROM bids [RANGE]").ok());
  EXPECT_FALSE(Parse("SELECT * FROM bids WHERE").ok());
  EXPECT_FALSE(Parse("FROM bids").ok());
  EXPECT_FALSE(Parse("SELECT * FROM bids extra tokens !").ok());
}

TEST(Parser, ParsesDerivedTableSubquery) {
  auto result = Parse(
      "SELECT s.auction FROM (SELECT auction, price FROM bids "
      "[RANGE 1 MINUTES] WHERE price > 10) AS s WHERE s.auction > 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->from.size(), 1u);
  ASSERT_NE(result->from[0].subquery, nullptr);
  EXPECT_EQ(result->from[0].alias, "s");
  const QueryAst& sub = *result->from[0].subquery;
  ASSERT_EQ(sub.from.size(), 1u);
  EXPECT_EQ(sub.from[0].stream, "bids");
  EXPECT_EQ(sub.from[0].window.kind, WindowKind::kRange);
  ASSERT_NE(sub.where, nullptr);
  // The outer WHERE stays with the outer query.
  ASSERT_NE(result->where, nullptr);
  EXPECT_EQ(result->where->ToString(), "(s.auction > 0)");
}

TEST(Parser, SubqueryJoinConditionsStayInsideTheSubquery) {
  auto result = Parse(
      "SELECT * FROM (SELECT b.auction FROM bids b JOIN persons p "
      "ON b.bidder = p.id) s JOIN bids o ON s.auction = o.auction");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->from.size(), 2u);
  const QueryAst& sub = *result->from[0].subquery;
  // Inner ON desugared into the inner WHERE; outer ON into the outer WHERE.
  ASSERT_NE(sub.where, nullptr);
  EXPECT_EQ(sub.where->ToString(), "(b.bidder = p.id)");
  ASSERT_NE(result->where, nullptr);
  EXPECT_EQ(result->where->ToString(), "(s.auction = o.auction)");
}

TEST(Parser, DerivedTableErrors) {
  // Alias is mandatory.
  EXPECT_FALSE(Parse("SELECT * FROM (SELECT * FROM bids)").ok());
  // Windows may not attach to the derived table itself.
  EXPECT_FALSE(
      Parse("SELECT * FROM (SELECT * FROM bids) [RANGE 1 MINUTES] s").ok());
  // The subquery must close its parenthesis.
  EXPECT_FALSE(Parse("SELECT * FROM (SELECT * FROM bids s").ok());
}

TEST(Analyzer, DerivedTableReQualifiesColumns) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile(
      "SELECT s.top FROM (SELECT auction, MAX(price) AS top FROM bids "
      "[RANGE 1 MINUTES] GROUP BY auction) AS s WHERE s.top > 10",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->schema.arity(), 1u);
  EXPECT_EQ(plan->schema.field(0).name, "s.top");
  EXPECT_EQ(plan->schema.field(0).type, ValueType::kDouble);
}

TEST(Analyzer, DerivedTableJoinsWithStream) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile(
      "SELECT s.auction, o.price FROM (SELECT DISTINCT auction FROM bids) s "
      "JOIN bids o ON s.auction = o.auction",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->schema.arity(), 2u);
  EXPECT_EQ(plan->schema.field(0).name, "s.auction");
  EXPECT_EQ(plan->schema.field(1).name, "o.price");
}

TEST(Analyzer, SelectStarIsScanOnly) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile("SELECT * FROM bids", catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((plan->plan)->kind, LogicalOp::Kind::kStreamScan);
  EXPECT_EQ((plan->plan)->schema.arity(), 3u);
  EXPECT_EQ((plan->plan)->schema.field(0).name, "bids.auction");
}

TEST(Analyzer, ProjectionAndFilter) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile(
      "SELECT price * 2 AS double_price FROM bids WHERE price > 10",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((plan->plan)->kind, LogicalOp::Kind::kProject);
  EXPECT_EQ((plan->plan)->schema.field(0).name, "double_price");
  EXPECT_EQ((plan->plan)->schema.field(0).type, ValueType::kDouble);
  EXPECT_EQ((plan->plan)->children[0]->kind, LogicalOp::Kind::kFilter);
}

TEST(Analyzer, GroupByWithAggregates) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile(
      "SELECT auction, MAX(price) AS top, COUNT(*) AS n FROM bids [RANGE 10 "
      "MINUTES] GROUP BY auction",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Project(GroupAggregate(Scan))
  EXPECT_EQ((plan->plan)->kind, LogicalOp::Kind::kProject);
  const auto& agg = (plan->plan)->children[0];
  EXPECT_EQ(agg->kind, LogicalOp::Kind::kGroupAggregate);
  EXPECT_EQ(agg->group_fields.size(), 1u);
  EXPECT_EQ(agg->aggs.size(), 2u);
  EXPECT_EQ((plan->plan)->schema.field(1).name, "top");
  EXPECT_EQ((plan->plan)->schema.field(2).type, ValueType::kInt);
}

TEST(Analyzer, JoinOfTwoStreams) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile(
      "SELECT b.price, p.city FROM bids [RANGE 1 MINUTES] AS b, persons "
      "[UNBOUNDED] AS p WHERE b.bidder = p.id",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Project(Filter(Join(scan, scan))) before optimization.
  EXPECT_EQ((plan->plan)->kind, LogicalOp::Kind::kProject);
  EXPECT_EQ((plan->plan)->children[0]->kind, LogicalOp::Kind::kFilter);
  EXPECT_EQ((plan->plan)->children[0]->children[0]->kind, LogicalOp::Kind::kJoin);
}

TEST(Parser, JoinOnSyntaxDesugarsIntoWhere) {
  auto result = Parse(
      "SELECT b.price FROM bids [RANGE 1 MINUTES] AS b JOIN persons "
      "[UNBOUNDED] AS p ON b.bidder = p.id WHERE b.price > 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->from.size(), 2u);
  ASSERT_NE(result->where, nullptr);
  // Both the WHERE predicate and the ON condition are present.
  const std::string where = result->where->ToString();
  EXPECT_NE(where.find("b.bidder = p.id"), std::string::npos);
  EXPECT_NE(where.find("b.price > 5"), std::string::npos);

  // Equivalent comma + WHERE formulation lowers to the same plan.
  Catalog catalog = MakeCatalog();
  auto join_on = Analyze(*result, catalog);
  auto classic = Compile(
      "SELECT b.price FROM bids [RANGE 1 MINUTES] AS b, persons "
      "[UNBOUNDED] AS p WHERE b.price > 5 AND b.bidder = p.id",
      catalog);
  ASSERT_TRUE(join_on.ok() && classic.ok());
  optimizer::Optimizer optimizer(&catalog);
  EXPECT_EQ(optimizer.Optimize(*join_on).plan->Signature(),
            optimizer.Optimize(classic->plan).plan->Signature());
}

TEST(Parser, JoinWithoutOnIsRejected) {
  EXPECT_FALSE(Parse("SELECT 1 FROM bids JOIN persons").ok());
}

TEST(Analyzer, SemanticErrors) {
  Catalog catalog = MakeCatalog();
  EXPECT_FALSE(Compile("SELECT * FROM nosuch", catalog).ok());
  EXPECT_FALSE(Compile("SELECT nosuch FROM bids", catalog).ok());
  // Ambiguous field across two streams.
  EXPECT_FALSE(
      Compile("SELECT auction FROM bids AS a, bids AS b", catalog).ok());
  // Duplicate alias.
  EXPECT_FALSE(
      Compile("SELECT 1 FROM bids AS x, persons AS x", catalog).ok());
  // Non-grouped field with aggregation.
  EXPECT_FALSE(
      Compile("SELECT bidder, MAX(price) FROM bids GROUP BY auction",
              catalog)
          .ok());
  // SUM(*) is invalid.
  EXPECT_FALSE(Compile("SELECT SUM(*) FROM bids", catalog).ok());
  // Aggregate nested in expression.
  EXPECT_FALSE(
      Compile("SELECT 1 + MAX(price) FROM bids", catalog).ok());
}

TEST(Analyzer, DistinctAddsDistinctOp) {
  Catalog catalog = MakeCatalog();
  auto plan = Compile("SELECT DISTINCT bidder FROM bids", catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((plan->plan)->kind, LogicalOp::Kind::kDistinct);
  EXPECT_EQ((plan->plan)->children[0]->kind, LogicalOp::Kind::kProject);
}

TEST(Analyzer, SignatureStableAcrossEquivalentQueries) {
  Catalog catalog = MakeCatalog();
  auto a = Compile("SELECT price FROM bids WHERE price > 10", catalog);
  auto b = Compile("select price from bids where price > 10", catalog);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((a->plan)->Signature(), (b->plan)->Signature());
}

}  // namespace
}  // namespace pipes::cql
