// Tests for the demand-driven cursor algebra and the dataflow translation
// operators bridging cursors and streams.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/aggregates.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cursors/cursor.h"
#include "src/cursors/relation.h"
#include "src/cursors/translate.h"
#include "src/scheduler/scheduler.h"

namespace pipes::cursors {
namespace {

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(Cursor, VectorAndCollect) {
  VectorCursor<int> cursor({1, 2, 3});
  EXPECT_EQ(Collect(cursor), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(cursor.Next(), std::nullopt);
}

TEST(Cursor, FilterAndMapCompose) {
  auto base = std::make_unique<VectorCursor<int>>(
      std::vector<int>{1, 2, 3, 4, 5, 6});
  auto filtered = std::make_unique<FilterCursor<int>>(
      std::move(base), [](const int& v) { return v % 2 == 0; });
  MapCursor<int, int> mapped(std::move(filtered),
                             [](const int& v) { return v * 10; });
  EXPECT_EQ(Collect(mapped), (std::vector<int>{20, 40, 60}));
}

TEST(Cursor, Concat) {
  ConcatCursor<int> cursor(
      std::make_unique<VectorCursor<int>>(std::vector<int>{1, 2}),
      std::make_unique<VectorCursor<int>>(std::vector<int>{3}));
  EXPECT_EQ(Collect(cursor), (std::vector<int>{1, 2, 3}));
}

TEST(Cursor, NestedLoopsJoin) {
  auto outer =
      std::make_unique<VectorCursor<int>>(std::vector<int>{1, 2, 3});
  NestedLoopsJoinCursor<int, int, std::pair<int, int>> join(
      std::move(outer), {2, 3, 4},
      [](const int& l, const int& r) { return l == r; },
      [](const int& l, const int& r) { return std::make_pair(l, r); });
  auto result = Collect(join);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0], std::make_pair(2, 2));
  EXPECT_EQ(result[1], std::make_pair(3, 3));
}

TEST(Cursor, GroupByUsesSharedAggregationPolicies) {
  auto input = std::make_unique<VectorCursor<int>>(
      std::vector<int>{1, 2, 3, 4, 5, 6});
  auto key = [](const int& v) { return v % 2; };
  auto value = [](const int& v) { return v; };
  GroupByCursor<int, algebra::SumAgg<int>, decltype(key), decltype(value)>
      cursor(std::move(input), key, value);
  auto result = Collect(cursor);
  ASSERT_EQ(result.size(), 2u);
  // First-seen key order: 1 (odds) then 0 (evens).
  EXPECT_EQ(result[0], std::make_pair(1, 9));
  EXPECT_EQ(result[1], std::make_pair(0, 12));
}

TEST(Translate, CursorSourceLiftsPullIntoPush) {
  QueryGraph graph;
  auto cursor =
      std::make_unique<VectorCursor<int>>(std::vector<int>{10, 20, 30});
  auto& source = graph.Add<CursorSource<int>>(
      std::move(cursor), [](const int& v) { return Timestamp{v}; });
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[1].payload, 20);
  EXPECT_EQ(sink.elements()[1].interval, TimeInterval(20, 21));
  EXPECT_TRUE(sink.done());
}

TEST(Translate, StreamBufferSinkExposesResultsAsCursor) {
  QueryGraph graph;
  auto cursor =
      std::make_unique<VectorCursor<int>>(std::vector<int>{1, 2, 3});
  auto& source = graph.Add<CursorSource<int>>(
      std::move(cursor), [](const int& v) { return Timestamp{v}; });
  auto& sink = graph.Add<StreamBufferSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);

  EXPECT_EQ(sink.buffered(), 3u);
  auto out = sink.OpenCursor();
  std::vector<int> payloads;
  while (auto e = out->Next()) payloads.push_back(e->payload);
  EXPECT_EQ(payloads, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sink.buffered(), 0u);  // consumed exactly once
}

TEST(Relation, InsertScanLookupRange) {
  IndexedRelation<int, std::string> relation;
  relation.Insert(2, "two");
  relation.Insert(1, "one");
  relation.Insert(2, "zwei");
  relation.Insert(5, "five");
  EXPECT_EQ(relation.size(), 4u);

  auto scan = relation.Scan();
  EXPECT_EQ(Collect(*scan),
            (std::vector<std::string>{"one", "two", "zwei", "five"}));

  auto lookup = relation.Lookup(2);
  EXPECT_EQ(Collect(*lookup), (std::vector<std::string>{"two", "zwei"}));

  auto empty = relation.Lookup(9);
  EXPECT_TRUE(Collect(*empty).empty());

  auto range = relation.Range(2, 5);
  EXPECT_EQ(Collect(*range),
            (std::vector<std::string>{"two", "zwei", "five"}));
}

TEST(Relation, StreamRelationJoinProbesPerElement) {
  QueryGraph graph;
  IndexedRelation<int, std::string> people;
  people.Insert(1, "alice");
  people.Insert(2, "bob");

  std::vector<StreamElement<int>> stream = {
      StreamElement<int>::Point(1, 10), StreamElement<int>::Point(3, 20),
      StreamElement<int>::Point(2, 30)};
  auto& source = graph.Add<VectorSource<int>>(stream);
  auto key = [](int v) { return v; };
  auto combine = [](int v, const std::string& name) {
    return std::to_string(v) + ":" + name;
  };
  auto& join = graph.Add<StreamRelationJoin<int, int, std::string,
                                            decltype(key), decltype(combine)>>(
      &people, key, combine);
  auto& sink = graph.Add<CollectorSink<std::string>>();
  source.AddSubscriber(join.input());
  join.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].payload, "1:alice");
  EXPECT_EQ(sink.elements()[0].interval, TimeInterval(10, 11));
  EXPECT_EQ(sink.elements()[1].payload, "2:bob");
}

}  // namespace
}  // namespace pipes::cursors
