// Tests for the `pipes::engine::Engine` facade: register/cancel churn with
// shared prefixes (the E5 flat-operator-count property), cancel-during-flow
// correctness against a single-query reference run (multiset-exact),
// admission control (reject and queue policies), per-tenant isolation of
// snapshots and counters, and concurrent registration (exercised under
// TSAN in the sanitizer CI job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/core/generator_source.h"
#include "src/core/pipeline.h"
#include "src/engine/engine.h"

namespace pipes::engine {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Schema TradesSchema() {
  return Schema({{"symbol", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

constexpr const char* kAvgQuery =
    "SELECT symbol, AVG(price) AS avg_price FROM trades "
    "[RANGE 1 SECONDS SLIDE 1 SECONDS] WHERE price > 10 GROUP BY symbol";
constexpr const char* kMaxQuery =
    "SELECT symbol, MAX(price) AS high FROM trades "
    "[RANGE 1 SECONDS SLIDE 1 SECONDS] WHERE price > 10 GROUP BY symbol";
constexpr const char* kCountQuery =
    "SELECT symbol, COUNT(*) AS n FROM trades "
    "[RANGE 1 SECONDS SLIDE 1 SECONDS] WHERE price > 10 GROUP BY symbol";

/// Pushes `n` deterministic trades starting at `t0` (100ms apart).
void PushTrades(StreamWriter& writer, int n, Timestamp t0) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(writer
                    .Push(Tuple{Value(static_cast<std::int64_t>(i % 3)),
                                Value(20.0 + i)},
                          t0 + i * 100)
                    .ok());
  }
}

/// Canonical multiset form of a result stream: sorted (start, end, text).
std::vector<std::tuple<Timestamp, Timestamp, std::string>> Canonical(
    const std::vector<QueryHandle::Element>& elements) {
  std::vector<std::tuple<Timestamp, Timestamp, std::string>> out;
  out.reserve(elements.size());
  for (const auto& e : elements) {
    out.emplace_back(e.start(), e.end(), e.payload.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

class EngineTest : public ::testing::Test {
 protected:
  Result<StreamWriter> AddTrades(Engine& engine) {
    return engine.AddStream("trades", TradesSchema(), /*rate_hint=*/10.0);
  }
};

// --- E5: churn keeps the shared graph flat ---------------------------------

TEST_F(EngineTest, RegisterCancelChurnKeepsOperatorCountFlat) {
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  const char* queries[] = {kAvgQuery, kMaxQuery, kCountQuery};

  // First wave instantiates everything once.
  std::vector<QueryHandle> wave;
  for (const char* q : queries) {
    auto handle = engine.Register(q);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    wave.push_back(*handle);
  }
  const std::size_t settled_nodes = engine.stats().graph_nodes;
  const std::size_t created_once = engine.stats().operators_created;
  EXPECT_GT(created_once, 0u);

  // Churn: five waves of duplicate registrations and cancellations. Every
  // operator already exists, so the graph must not grow and the plan
  // manager must only ever reuse.
  for (int round = 0; round < 5; ++round) {
    std::vector<QueryHandle> extra;
    for (const char* q : queries) {
      auto handle = engine.Register(q);
      ASSERT_TRUE(handle.ok()) << handle.status().ToString();
      extra.push_back(*handle);
    }
    EXPECT_EQ(engine.stats().operators_created, created_once)
        << "round " << round << " instantiated new operators for a fully "
        << "shared workload";
    EXPECT_EQ(engine.stats().graph_nodes, settled_nodes + extra.size())
        << "only per-query result sinks may be added";
    for (auto& handle : extra) {
      EXPECT_TRUE(handle.Cancel().ok());
    }
    EXPECT_EQ(engine.stats().graph_nodes, settled_nodes);
  }
  EXPECT_GT(engine.stats().operators_reused, 0u);

  // The original wave still works after all that churn.
  PushTrades(*writer, 40, 0);
  ASSERT_TRUE(writer->Close().ok());
  engine.RunToCompletion();
  for (auto& handle : wave) {
    EXPECT_GT(handle.results_delivered(), 0u) << handle.id();
  }
}

// --- Cancel during flow: surviving query is exact --------------------------

TEST_F(EngineTest, CancelDuringFlowLeavesSurvivorExact) {
  // Run A: two overlapping queries; the MAX query is cancelled mid-stream.
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  auto keep = engine.Register(kAvgQuery);
  ASSERT_TRUE(keep.ok());
  auto victim = engine.Register(kMaxQuery);
  ASSERT_TRUE(victim.ok());

  PushTrades(*writer, 30, 0);
  engine.Pump(10);  // partial progress: elements in flight
  ASSERT_TRUE(victim->Cancel().ok());
  EXPECT_EQ(victim->state(), QueryState::kCancelled);
  PushTrades(*writer, 30, 3000);
  ASSERT_TRUE(writer->Close().ok());
  engine.RunToCompletion();
  const auto survivor_results = Canonical(keep->Poll());
  ASSERT_FALSE(survivor_results.empty());

  // Run B: the reference — the surviving query alone over the same input.
  Engine reference;
  auto ref_writer = AddTrades(reference);
  ASSERT_TRUE(ref_writer.ok());
  auto ref_handle = reference.Register(kAvgQuery);
  ASSERT_TRUE(ref_handle.ok());
  PushTrades(*ref_writer, 30, 0);
  PushTrades(*ref_writer, 30, 3000);
  ASSERT_TRUE(ref_writer->Close().ok());
  reference.RunToCompletion();

  // Multiset-exact: cancelling the overlapping query must not add, drop,
  // or alter a single element of the survivor's output.
  EXPECT_EQ(survivor_results, Canonical(ref_handle->Poll()));
}

TEST_F(EngineTest, CancelledQueryStopsDeliveringButSurvivorFlows) {
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());
  auto keep = engine.Register(kAvgQuery);
  auto victim = engine.Register(kMaxQuery);
  ASSERT_TRUE(keep.ok() && victim.ok());

  PushTrades(*writer, 30, 0);
  engine.RunToCompletion();
  const std::uint64_t victim_results = victim->results_delivered();
  EXPECT_GT(victim_results, 0u);

  ASSERT_TRUE(engine.Cancel(victim->id()).ok());
  PushTrades(*writer, 30, 10'000);
  ASSERT_TRUE(writer->Close().ok());
  engine.RunToCompletion();

  EXPECT_EQ(victim->results_delivered(), victim_results)
      << "cancelled query kept producing";
  EXPECT_TRUE(victim->Poll().empty());
  EXPECT_GT(keep->results_delivered(), 0u);

  // Double-cancel is an error, as is cancelling an unknown id.
  EXPECT_FALSE(victim->Cancel().ok());
  EXPECT_FALSE(engine.Cancel(99'999).ok());
}

// --- Admission control ------------------------------------------------------

TEST_F(EngineTest, RejectPolicyFailsOverQuota) {
  EngineOptions options;
  options.max_total_queries = 2;
  Engine engine(options);
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  ASSERT_TRUE(engine.Register(kAvgQuery).ok());
  ASSERT_TRUE(engine.Register(kMaxQuery).ok());
  auto rejected = engine.Register(kCountQuery);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine.stats().rejected_queries, 1u);
  EXPECT_EQ(engine.tenant_counters("default").rejected, 1u);

  // Capacity freed by a cancel is usable again.
  ASSERT_TRUE(engine.Cancel(1).ok());
  EXPECT_TRUE(engine.Register(kCountQuery).ok());
}

TEST_F(EngineTest, PerTenantQuotaIsIndependent) {
  EngineOptions options;
  options.max_queries_per_tenant = 1;
  Engine engine(options);
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  ASSERT_TRUE(engine.Register(kAvgQuery, {.tenant = "a"}).ok());
  auto over = engine.Register(kMaxQuery, {.tenant = "a"});
  EXPECT_EQ(over.status().code(), StatusCode::kResourceExhausted);
  // A different tenant still fits.
  EXPECT_TRUE(engine.Register(kMaxQuery, {.tenant = "b"}).ok());
}

TEST_F(EngineTest, QueuePolicyAdmitsWhenCapacityFrees) {
  EngineOptions options;
  options.max_total_queries = 1;
  options.admission = AdmissionPolicy::kQueue;
  Engine engine(options);
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  auto first = engine.Register(kAvgQuery);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->state(), QueryState::kRunning);

  auto parked = engine.Register(kMaxQuery);
  ASSERT_TRUE(parked.ok());
  EXPECT_EQ(parked->state(), QueryState::kQueued);
  EXPECT_EQ(engine.stats().queued_queries, 1u);

  // Cancelling the running query admits the parked one FIFO.
  ASSERT_TRUE(first->Cancel().ok());
  EXPECT_EQ(parked->state(), QueryState::kRunning);
  EXPECT_EQ(engine.stats().queued_queries, 0u);

  // A queued query can also be cancelled before it ever runs.
  auto parked2 = engine.Register(kCountQuery);
  ASSERT_TRUE(parked2.ok());
  EXPECT_EQ(parked2->state(), QueryState::kQueued);
  ASSERT_TRUE(parked2->Cancel().ok());
  EXPECT_EQ(parked2->state(), QueryState::kCancelled);
}

TEST_F(EngineTest, MemoryBudgetGatesAdmission) {
  EngineOptions options;
  options.memory_budget_bytes = 1;  // Anything with state is over budget.
  Engine engine(options);
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  auto first = engine.Register(kAvgQuery);
  ASSERT_TRUE(first.ok()) << "an empty engine must admit its first query";

  // Accumulate window state, then try to admit another query.
  PushTrades(*writer, 30, 0);
  engine.Pump(1024);
  auto second = engine.Register(kMaxQuery);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
}

// --- Certificate-gated admission --------------------------------------------

// Identical shape to kAvgQuery but a 60x window: the static certificate
// must scale with the window extent, so this query certifies far more
// state than its 1-second twin.
constexpr const char* kBigWindowQuery =
    "SELECT symbol, AVG(price) AS avg_price FROM trades "
    "[RANGE 60 SECONDS SLIDE 60 SECONDS] WHERE price > 10 GROUP BY symbol";

/// The `dataflow.cert_ram_bytes` gauge stamped on a query's result sink,
/// or -2 when no node carries it.
double CertRamGauge(const metadata::MetricsSnapshot& snap) {
  for (const auto& node : snap.nodes) {
    for (const auto& [name, value] : node.gauges) {
      if (name == "dataflow.cert_ram_bytes") return value;
    }
  }
  return -2.0;
}

TEST_F(EngineTest, CertificateGatesAdmissionStatically) {
  // Probe run (no budget): read both queries' certified RAM bounds off
  // their result-sink gauges so the gated budget below self-calibrates.
  double small_cert = 0.0, big_cert = 0.0;
  {
    EngineOptions options;
    options.certify_admission = true;
    Engine probe(options);
    auto writer = AddTrades(probe);
    ASSERT_TRUE(writer.ok());
    auto small = probe.Register(kAvgQuery);
    ASSERT_TRUE(small.ok()) << small.status().ToString();
    auto big = probe.Register(kBigWindowQuery);
    ASSERT_TRUE(big.ok()) << big.status().ToString();
    auto small_snap = small->Snapshot();
    auto big_snap = big->Snapshot();
    ASSERT_TRUE(small_snap.ok() && big_snap.ok());
    small_cert = CertRamGauge(*small_snap);
    big_cert = CertRamGauge(*big_snap);
    ASSERT_GT(small_cert, 0.0) << "certificate gauge missing from snapshot";
    ASSERT_GT(big_cert, small_cert)
        << "a 60x window must certify more state than its 1s twin";
  }

  // Gated run: a budget between the two certificates admits the small
  // query and statically rejects the big one before any element flows —
  // the runtime usage at registration time is zero in both cases, so only
  // the certificate can tell them apart.
  EngineOptions options;
  options.certify_admission = true;
  options.memory_budget_bytes =
      static_cast<std::size_t>((small_cert + big_cert) / 2);
  Engine engine(options);
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());
  auto small = engine.Register(kAvgQuery);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  auto big = engine.Register(kBigWindowQuery);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(big.status().ToString().find(
                "state certificate exceeds remaining memory budget"),
            std::string::npos)
      << big.status().ToString();
  EXPECT_EQ(engine.stats().rejected_queries, 1u);
}

TEST_F(EngineTest, QueuedCertificateAdmitsWhenHeadroomFrees) {
  // Calibrate the big query's certificate on a throwaway engine.
  double big_cert = 0.0;
  {
    EngineOptions options;
    options.certify_admission = true;
    Engine probe(options);
    auto writer = AddTrades(probe);
    ASSERT_TRUE(writer.ok());
    auto big = probe.Register(kBigWindowQuery);
    ASSERT_TRUE(big.ok()) << big.status().ToString();
    auto snap = big->Snapshot();
    ASSERT_TRUE(snap.ok());
    big_cert = CertRamGauge(*snap);
    ASSERT_GT(big_cert, 0.0);
  }

  // Budget fits the big certificate only when the engine is idle. A small
  // running query whose accumulated state eats into the headroom parks
  // the big registration; cancelling the state-holder re-admits it.
  EngineOptions options;
  options.certify_admission = true;
  options.admission = AdmissionPolicy::kQueue;
  options.memory_budget_bytes = static_cast<std::size_t>(big_cert) + 1000;
  Engine engine(options);
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  auto small = engine.Register(kAvgQuery);
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  // A dense burst inside one window, spread over many groups: nothing is
  // purgeable yet, so the aggregate holds live per-group state well above
  // the 1000-byte slack in the budget.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(writer
                    ->Push(Tuple{Value(static_cast<std::int64_t>(i % 50)),
                                 Value(20.0 + i)},
                           i)
                    .ok());
  }
  engine.Pump(4096);

  auto big = engine.Register(kBigWindowQuery);
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  EXPECT_EQ(big->state(), QueryState::kQueued)
      << "accumulated state must shrink the headroom below the certificate";

  ASSERT_TRUE(small->Cancel().ok());
  EXPECT_EQ(big->state(), QueryState::kRunning)
      << "freed headroom must re-admit the queued certificate";
}

// --- Stream writer contract -------------------------------------------------

TEST_F(EngineTest, StreamWriterValidatesOrderAndClose) {
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  ASSERT_TRUE(writer->Push(Tuple{Value(std::int64_t{1}), Value(2.0)}, 500).ok());
  // Time must not run backwards on an inlet.
  auto out_of_order =
      writer->Push(Tuple{Value(std::int64_t{1}), Value(2.0)}, 400);
  EXPECT_EQ(out_of_order.code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(writer->Close().ok());
  auto after_close =
      writer->Push(Tuple{Value(std::int64_t{1}), Value(2.0)}, 600);
  EXPECT_EQ(after_close.code(), StatusCode::kFailedPrecondition);

  // Duplicate stream names are rejected.
  EXPECT_FALSE(engine.AddStream("trades", TradesSchema()).ok());
}

// --- Tenant observability ---------------------------------------------------

TEST_F(EngineTest, TenantSnapshotSeesOnlyOwnOperators) {
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  auto qa = engine.Register(kAvgQuery, {.tenant = "alice"});
  auto qb = engine.Register(kMaxQuery, {.tenant = "bob"});
  ASSERT_TRUE(qa.ok() && qb.ok());

  const auto whole = engine.Snapshot();
  const auto alice = engine.TenantSnapshot("alice");
  const auto nobody = engine.TenantSnapshot("nobody");

  EXPECT_LT(alice.nodes.size(), whole.nodes.size());
  EXPECT_FALSE(alice.nodes.empty());
  EXPECT_TRUE(nobody.nodes.empty());

  // Alice's view covers her whole query but not Bob's aggregate.
  const auto qa_snap = qa->Snapshot();
  ASSERT_TRUE(qa_snap.ok());
  EXPECT_FALSE(qa_snap->nodes.empty());
  for (const auto& node : qa_snap->nodes) {
    EXPECT_NE(nullptr, alice.FindNode(node.id));
  }
  const auto qb_snap = qb->Snapshot();
  ASSERT_TRUE(qb_snap.ok());
  bool bob_has_private_node = false;
  for (const auto& node : qb_snap->nodes) {
    if (alice.FindNode(node.id) == nullptr) bob_has_private_node = true;
  }
  EXPECT_TRUE(bob_has_private_node);

  // Output nodes carry the tenant gauge the lint layer keys on (P019).
  bool gauge_seen = false;
  for (const Node* node : engine.graph().nodes()) {
    for (const auto& name : node->metadata().GaugeNames()) {
      if (name.rfind("engine.registered_output:", 0) == 0) gauge_seen = true;
    }
  }
  EXPECT_TRUE(gauge_seen);
}

TEST_F(EngineTest, CancelAllForTenantOnlyHitsThatTenant) {
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  ASSERT_TRUE(engine.Register(kAvgQuery, {.tenant = "alice"}).ok());
  ASSERT_TRUE(engine.Register(kMaxQuery, {.tenant = "alice"}).ok());
  auto bob = engine.Register(kCountQuery, {.tenant = "bob"});
  ASSERT_TRUE(bob.ok());

  EXPECT_EQ(engine.CancelAllForTenant("alice"), 2u);
  EXPECT_EQ(engine.tenant_counters("alice").live, 0u);
  EXPECT_EQ(engine.tenant_counters("alice").cancelled, 2u);
  EXPECT_EQ(bob->state(), QueryState::kRunning);
  EXPECT_EQ(engine.CancelAllForTenant("alice"), 0u);
}

// --- Pipeline registration --------------------------------------------------

TEST_F(EngineTest, PipelineQueryRegistersAndCancels) {
  Engine engine;
  const std::size_t empty_nodes = engine.stats().graph_nodes;

  Source<Tuple>* built = nullptr;
  auto handle = engine.Register(
      [&](QueryGraph& graph) -> Result<Source<Tuple>*> {
        auto tail =
            dsl::From(graph,
                      graph.Add(std::make_unique<VectorSource<Tuple>>(
                          std::vector<StreamElement<Tuple>>{
                              StreamElement<Tuple>::Point(
                                  Tuple{Value(std::int64_t{1})}, 0),
                              StreamElement<Tuple>::Point(
                                  Tuple{Value(std::int64_t{7})}, 100)},
                          "nums")))
            | dsl::Filter([](const Tuple& t) { return t.field(0).AsInt() > 2; },
                          "gt2");
        built = &tail.source();
        return built;
      });
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_GT(engine.stats().graph_nodes, empty_nodes);

  engine.RunToCompletion();
  const auto results = handle->Poll();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].payload.field(0).AsInt(), 7);

  ASSERT_TRUE(handle->Cancel().ok());
  EXPECT_EQ(handle->state(), QueryState::kCancelled);
}

// --- Concurrency (meaningful under TSAN) ------------------------------------

TEST_F(EngineTest, ConcurrentRegisterCancelPumpIsSafe) {
  Engine engine;
  auto writer = AddTrades(engine);
  ASSERT_TRUE(writer.ok());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  const char* queries[] = {kAvgQuery, kMaxQuery, kCountQuery};

  std::atomic<bool> stop{false};
  std::thread pumper([&] {
    while (!stop.load()) engine.Pump(64);
  });
  std::thread feeder([&] {
    Timestamp t = 0;
    while (!stop.load()) {
      (void)writer->Push(Tuple{Value(std::int64_t{1}), Value(42.0)}, t);
      t += 100;
    }
  });

  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        auto handle = engine.Register(queries[(w + i) % 3],
                                      {.tenant = "t" + std::to_string(w)});
        if (!handle.ok()) {
          ++failures;
          continue;
        }
        if (i % 2 == 0 && !handle->Cancel().ok()) ++failures;
      }
    });
  }
  for (auto& worker : workers) worker.join();
  stop.store(true);
  pumper.join();
  feeder.join();

  EXPECT_EQ(failures.load(), 0);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.total_registered, kThreads * kPerThread);
  EXPECT_EQ(stats.live_queries,
            kThreads * kPerThread - stats.cancelled_queries);
  engine.RunToCompletion();
}

}  // namespace
}  // namespace pipes::engine
