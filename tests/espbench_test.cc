// Tests for the ESPBench enterprise workload: generator determinism, the
// burst / disorder / late-data knobs (including the slack property the
// dataflow disorder annotations rely on), the ERP dimensions, the typed
// query fragments, and the CQL/Engine integration.

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/engine/engine.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/espbench_cql.h"
#include "src/workloads/espbench_queries.h"

namespace pipes::workloads {
namespace {

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 512);
  driver.RunToCompletion();
}

std::vector<MachineEvent> DrainGenerator(const EspbenchOptions& options) {
  EspbenchGenerator generator(options);
  std::vector<MachineEvent> events;
  while (auto e = generator.Next()) events.push_back(*e);
  return events;
}

EspbenchOptions SmallOptions() {
  EspbenchOptions options;
  options.num_machines = 6;
  options.sensors_per_machine = 2;
  options.duration_ms = 10'000;
  options.mean_interarrival_ms = 4.0;
  return options;
}

// --- Generator ---------------------------------------------------------------

TEST(EspbenchGenerator, DeterministicPerSeedAndCoversMachines) {
  const EspbenchOptions options = SmallOptions();
  const std::vector<MachineEvent> a = DrainGenerator(options);
  const std::vector<MachineEvent> b = DrainGenerator(options);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  EspbenchOptions other = options;
  other.seed = 7;
  EXPECT_NE(a, DrainGenerator(other));

  std::set<std::int64_t> machines;
  std::set<std::int32_t> sensors;
  for (const MachineEvent& e : a) {
    EXPECT_GE(e.timestamp, 0);
    EXPECT_LT(e.timestamp, options.duration_ms);
    EXPECT_GE(e.power_w, 0.0);
    machines.insert(e.machine);
    sensors.insert(e.sensor);
  }
  EXPECT_EQ(machines.size(), 6u);
  EXPECT_EQ(sensors.size(), 2u);
}

TEST(EspbenchGenerator, OrderedWhenDisorderKnobsAreZero) {
  const std::vector<MachineEvent> events = DrainGenerator(SmallOptions());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].timestamp, events[i].timestamp);
  }
}

TEST(EspbenchGenerator, BurstKnobRaisesInBurstRate) {
  EspbenchOptions options = SmallOptions();
  options.duration_ms = 40'000;
  options.burst_period_ms = 10'000;
  options.burst_duty = 0.2;
  options.burst_intensity = 5.0;
  const std::vector<MachineEvent> events = DrainGenerator(options);
  ASSERT_FALSE(events.empty());
  std::size_t in_burst = 0;
  for (const MachineEvent& e : events) {
    if (e.timestamp % options.burst_period_ms < 2'000) ++in_burst;
  }
  const std::size_t off_burst = events.size() - in_burst;
  // The burst phase is 20% of the time at 5x the rate: its event density
  // (count / phase length) must clearly exceed the off-phase density.
  const double burst_density = static_cast<double>(in_burst) / 0.2;
  const double off_density = static_cast<double>(off_burst) / 0.8;
  EXPECT_GT(burst_density, 2.0 * off_density);
}

// The late-data property the PR 9 dataflow certificates rely on: for ANY
// seed and declared disorder bound, a delivered timestamp regresses from
// the running maximum by at most the bound — so a ReorderingSource with
// exactly that slack restores order without dropping anything.
TEST(EspbenchGenerator, DisorderRespectsDeclaredSlackForAnySeed) {
  for (const std::uint64_t seed : {1ull, 17ull, 42ull, 9001ull}) {
    for (const Timestamp slack : {Timestamp{1}, Timestamp{25}, Timestamp{200}}) {
      EspbenchOptions options = SmallOptions();
      options.seed = seed;
      options.disorder_slack_ms = slack;
      options.disorder_fraction = 0.5;
      Timestamp max_seen = 0;
      bool disordered = false;
      for (const MachineEvent& e : DrainGenerator(options)) {
        EXPECT_GE(e.timestamp, max_seen - slack)
            << "seed " << seed << " slack " << slack;
        if (e.timestamp < max_seen) disordered = true;
        max_seen = std::max(max_seen, e.timestamp);
      }
      // A 1 ms slack cannot produce a visible inversion (gaps are >= 1 ms
      // and equal arrivals release FIFO); beyond that, disorder must show.
      if (slack > 1) {
        EXPECT_TRUE(disordered) << "knobs set but feed came out ordered";
      }
    }
  }
}

TEST(EspbenchGenerator, ReorderingSourceRestoresOrderWithoutDrops) {
  EspbenchOptions options = SmallOptions();
  options.disorder_slack_ms = 50;
  options.disorder_fraction = 0.5;
  QueryGraph graph;
  auto& source = AddReorderedEspbenchSource(graph, options);
  std::vector<Timestamp> starts;
  auto& sink = graph.Add<CallbackSink<MachineEvent>>(
      [&](const StreamElement<MachineEvent>& e) {
        starts.push_back(e.start());
      });
  source.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(starts.empty());
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
  EXPECT_EQ(source.dropped_count(), 0u)
      << "in-slack disorder must never be dropped";
  EXPECT_EQ(starts.size(), DrainGenerator(options).size());
}

TEST(EspbenchGenerator, BeyondSlackStragglersAreDroppedAndCounted) {
  EspbenchOptions options = SmallOptions();
  options.disorder_slack_ms = 20;
  options.disorder_fraction = 0.3;
  options.late_fraction = 0.05;
  options.late_extra_ms = 100;
  QueryGraph graph;
  auto& source = AddReorderedEspbenchSource(graph, options);
  std::vector<Timestamp> starts;
  auto& sink = graph.Add<CallbackSink<MachineEvent>>(
      [&](const StreamElement<MachineEvent>& e) {
        starts.push_back(e.start());
      });
  source.AddSubscriber(sink.input());
  Drain(graph);

  EspbenchGenerator reference(options);
  while (reference.Next()) {
  }
  ASSERT_GT(reference.late_injected(), 0u);
  EXPECT_GT(source.dropped_count(), 0u);
  EXPECT_LE(source.dropped_count(), reference.late_injected())
      << "only injected stragglers may be dropped";
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
}

// Pins the Dataflow annotations the certificates consume: the reordered
// source declares its slack as both reorder bound and watermark lag, plus
// the raw feed's cardinality / rate / validity contract.
TEST(EspbenchGenerator, ReorderedSourceDeclaresDisorderAnnotations) {
  EspbenchOptions options = SmallOptions();
  options.disorder_slack_ms = 40;
  QueryGraph graph;
  auto& source = AddReorderedEspbenchSource(graph, options);
  const NodeDescriptor d = source.Describe();
  EXPECT_EQ(d.dataflow.reorder_slack, 40);
  EXPECT_EQ(d.dataflow.watermark_lag, 40);
  EXPECT_EQ(d.dataflow.total_elements,
            static_cast<std::uint64_t>(options.duration_ms));
  EXPECT_GT(d.dataflow.rate_per_unit, 0.0);
  EXPECT_EQ(d.dataflow.validity_extent, 1);
  EXPECT_TRUE(d.emits_heartbeats);
}

TEST(EspbenchGenerator, OrderedSourceRejectsDisorderKnobs) {
  EspbenchOptions options = SmallOptions();
  options.disorder_slack_ms = 10;
  QueryGraph graph;
  EXPECT_DEATH(AddEspbenchSource(graph, options), "Reordered");
}

// --- ERP dimensions ----------------------------------------------------------

TEST(EspbenchDimensions, MachinesAreDeterministicAndRatedAboveBase) {
  const EspbenchOptions options = SmallOptions();
  const std::vector<MachineInfo> a = GenerateMachines(options);
  EXPECT_EQ(a, GenerateMachines(options));
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_GE(a[i].rated_power_w, options.base_power_w * 1.15);
    EXPECT_LE(a[i].rated_power_w, options.base_power_w * 1.5);
    EXPECT_FALSE(a[i].type.empty());
  }
}

TEST(EspbenchDimensions, OrdersAreSortedByStartAndInsideTheRun) {
  const EspbenchOptions options = SmallOptions();
  const std::vector<ProductionOrder> orders = GenerateOrders(options);
  ASSERT_EQ(orders.size(), 30u);
  for (std::size_t i = 0; i < orders.size(); ++i) {
    if (i > 0) EXPECT_GE(orders[i].start, orders[i - 1].start);
    EXPECT_LT(orders[i].start, orders[i].due);
    EXPECT_GE(orders[i].machine, 0);
    EXPECT_LT(orders[i].machine, options.num_machines);
  }
}

// --- Typed query fragments ---------------------------------------------------

TEST(EspbenchQueries, ThresholdAlertFiresOnlyForOverloadedMachine) {
  EspbenchOptions options = SmallOptions();
  options.duration_ms = 30'000;
  options.overloads = {{/*begin=*/5'000, /*end=*/20'000, /*machine=*/2,
                        /*power_factor=*/2.0}};
  QueryGraph graph;
  auto& events = AddEspbenchSource(graph, options);
  // Normal draw tops out near base * 0.9 plus noise; rated capacity starts
  // at base * 1.15, so 1.3 * base separates overload from noise.
  auto& alerts = BuildPowerThresholdAlertQuery(
      graph, events, /*threshold_w=*/1.3 * options.base_power_w,
      /*min_duration=*/2'000);
  auto& sink = graph.Add<CollectorSink<Sustained<std::int64_t>>>();
  alerts.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    EXPECT_EQ(e.payload.key, 2);
    // Window segments can lead/trail the episode by up to one window.
    EXPECT_GE(e.payload.since, 5'000 - 1'000);
    EXPECT_LE(e.payload.since + e.payload.duration, 20'000 + 1'000);
  }
}

TEST(EspbenchQueries, OrderEnrichmentJoinMatchesActiveOrdersOnly) {
  const EspbenchOptions options = SmallOptions();
  const std::vector<ProductionOrder> orders = GenerateOrders(options);
  QueryGraph graph;
  auto& events = AddEspbenchSource(graph, options);
  auto& order_source = AddOrderDimensionSource(graph, orders);
  auto& joined = BuildOrderEnrichmentJoin(graph, events, order_source);
  auto& sink = graph.Add<CollectorSink<EventWithOrder>>();
  joined.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    EXPECT_EQ(e.payload.event.machine, e.payload.order.machine);
    // Interval semantics: the order was scheduled at event time.
    EXPECT_GE(e.payload.event.timestamp, e.payload.order.start);
    EXPECT_LT(e.payload.event.timestamp,
              std::max(e.payload.order.due, e.payload.order.start + 1));
  }
}

TEST(EspbenchQueries, MachinePowerAveragesSitInTheDrawRange) {
  const EspbenchOptions options = SmallOptions();
  QueryGraph graph;
  auto& events = AddEspbenchSource(graph, options);
  auto& power = BuildMachinePowerQuery(graph, events, /*range=*/1'000,
                                       /*slide=*/500);
  auto& sink = graph.Add<CollectorSink<std::pair<std::int64_t, double>>>();
  power.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    EXPECT_EQ(e.start() % 500, 0) << "slide-aligned windows";
    EXPECT_GT(e.payload.second, 0.3 * options.base_power_w);
    EXPECT_LT(e.payload.second, 1.3 * options.base_power_w);
  }
}

TEST(EspbenchQueries, OverCapacityKeepsOnlyEventsAboveRatedPower) {
  EspbenchOptions options = SmallOptions();
  options.duration_ms = 30'000;
  options.overloads = {{/*begin=*/0, /*end=*/30'000, /*machine=*/1,
                        /*power_factor=*/2.5}};
  QueryGraph graph;
  auto& events = AddEspbenchSource(graph, options);
  auto& machines = AddMachineDimensionSource(graph, GenerateMachines(options));
  auto& over = BuildOverCapacityQuery(graph, events, machines);
  auto& sink = graph.Add<CollectorSink<EventWithMachine>>();
  over.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  std::set<std::int64_t> flagged;
  for (const auto& e : sink.elements()) {
    EXPECT_GT(e.payload.event.power_w, e.payload.machine.rated_power_w);
    EXPECT_EQ(e.payload.event.machine, e.payload.machine.id);
    flagged.insert(e.payload.event.machine);
  }
  EXPECT_TRUE(flagged.count(1)) << "the permanently overloaded machine";
}

TEST(EspbenchQueries, LateDataAuditCountsMatchManualBucketsWhenOrdered) {
  const EspbenchOptions options = SmallOptions();
  QueryGraph graph;
  auto& events = AddEspbenchSource(graph, options);
  auto& audit = BuildLateDataAuditQuery(graph, events, /*period=*/1'000);
  auto& sink =
      graph.Add<CollectorSink<std::pair<std::int64_t, std::uint64_t>>>();
  std::map<std::pair<Timestamp, std::int64_t>, std::uint64_t> manual;
  auto& manual_sink = graph.Add<CallbackSink<MachineEvent>>(
      [&](const StreamElement<MachineEvent>& e) {
        // The tumbling segment holding t starts at AlignUp(t) (window.h).
        const Timestamp bucket = ((e.start() + 999) / 1'000) * 1'000;
        ++manual[{bucket, e.payload.machine}];
      });
  audit.AddSubscriber(sink.input());
  events.AddSubscriber(manual_sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    auto it = manual.find({e.start(), e.payload.first});
    if (e.start() % 1'000 == 0 && it != manual.end()) {
      EXPECT_EQ(e.payload.second, it->second)
          << "machine " << e.payload.first << " at " << e.start();
    }
  }
}

// --- CQL / Engine integration ------------------------------------------------

TEST(EspbenchCql, CatalogQueriesRegisterAndProduceResults) {
  EspbenchOptions options = SmallOptions();
  options.disorder_slack_ms = 30;  // the relational rows are pre-reordered
  engine::Engine engine{engine::EngineOptions{}};
  ASSERT_TRUE(BindEspbenchStreams(engine, options).ok());

  std::vector<engine::QueryHandle> handles;
  for (const EspbenchCqlQuery& q : EspbenchCqlCatalog()) {
    Result<engine::QueryHandle> handle = engine.Register(q.text);
    ASSERT_TRUE(handle.ok()) << q.name << ": " << handle.status().ToString();
    handles.push_back(std::move(*handle));
  }
  engine.RunToCompletion();

  const std::vector<EspbenchCqlQuery>& catalog = EspbenchCqlCatalog();
  bool any_results = false;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto results = handles[i].Poll();
    if (!results.empty()) any_results = true;
    // Output shape: machine-power and late-data-audit emit (key, agg).
    if (catalog[i].name == "machine-power" ||
        catalog[i].name == "late-data-audit") {
      ASSERT_FALSE(results.empty()) << catalog[i].name;
      EXPECT_EQ(results.front().payload.arity(), 2u) << catalog[i].name;
    }
    if (catalog[i].name == "order-enrichment") {
      for (const auto& e : results) {
        EXPECT_EQ(e.payload.arity(), 3u);
      }
    }
  }
  EXPECT_TRUE(any_results);
}

TEST(EspbenchCql, EventRowsAreOrderedAndMatchTheSchema) {
  EspbenchOptions options = SmallOptions();
  options.disorder_slack_ms = 25;
  options.disorder_fraction = 0.5;
  const auto rows = EspbenchEventRows(options);
  ASSERT_FALSE(rows.empty());
  const relational::Schema schema = EspbenchEventSchema();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) EXPECT_LE(rows[i - 1].start(), rows[i].start());
    ASSERT_EQ(rows[i].payload.arity(), schema.arity());
  }
}

}  // namespace
}  // namespace pipes::workloads
