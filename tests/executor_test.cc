// Tests for the executor-polled execution model (DESIGN.md §4f): the
// `Pipe` edge three-state machine, staged delivery with preserved
// element/control interleaving, the `PipeExecutor` driver, stack safety on
// deep chains (the non-recursion argument), and end-state equivalence with
// the recursive publish-subscribe reference.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using namespace pipes::algebra;    // NOLINT: test-local convenience
using namespace pipes::testing;    // NOLINT: test-local convenience
using scheduler::PipeExecutor;
using scheduler::RoundRobinStrategy;
using scheduler::SingleThreadScheduler;

/// A source staged by hand, for driving the pipe state machine directly.
class ManualSource : public Source<int> {
 public:
  explicit ManualSource(std::string name = "manual")
      : Source<int>(std::move(name)) {}

  void Emit(int payload, Timestamp t) {
    Transfer(StreamElement<int>::Point(payload, t));
  }
  void EmitHeartbeat(Timestamp t) { TransferHeartbeat(t); }
  void EmitDone() { TransferDone(); }
};

/// ExecutorLink that only records readiness notifications.
class RecordingLink : public ExecutorLink {
 public:
  void PipeReady(PipeBase* pipe) override { ready.push_back(pipe); }
  std::vector<PipeBase*> ready;
};

/// Sink recording elements and progress callbacks in arrival order.
class ProbeSink : public Sink<int> {
 public:
  explicit ProbeSink(std::string name = "probe") : Sink<int>(std::move(name)) {}

  std::vector<StreamElement<int>> elements;
  std::vector<Timestamp> progress;

 protected:
  void PortElement(int /*port_id*/, const StreamElement<int>& e) override {
    elements.push_back(e);
  }
  void PortProgress(int port_id, Timestamp watermark) override {
    progress.push_back(watermark);
    Sink<int>::PortProgress(port_id, watermark);
  }
};

TEST(PipeStateMachine, PollRequestSupplyDeliverCycle) {
  ManualSource source;
  ProbeSink sink;
  source.AddSubscriber(sink.input());
  RecordingLink link;

  PipeBase* pipe = source.AttachExecutor(&link);
  ASSERT_NE(pipe, nullptr);
  EXPECT_TRUE(source.executor_attached());
  EXPECT_EQ(pipe->state(), PipeState::kIdle);
  EXPECT_FALSE(pipe->HasStaged());

  // Poll with no supply: Idle -> Request -> Idle.
  pipe->MarkPolled();
  EXPECT_EQ(pipe->state(), PipeState::kRequest);
  pipe->MarkPollDone();
  EXPECT_EQ(pipe->state(), PipeState::kIdle);

  // Staging flips to Supply and notifies exactly once until dequeued.
  pipe->MarkPolled();
  source.Emit(1, 10);
  EXPECT_EQ(pipe->state(), PipeState::kSupply);
  EXPECT_TRUE(pipe->in_queue());
  ASSERT_EQ(link.ready.size(), 1u);
  EXPECT_EQ(link.ready[0], pipe);
  source.Emit(2, 11);
  EXPECT_EQ(link.ready.size(), 1u);  // already queued: no second notify
  pipe->MarkPollDone();               // Supply is sticky through poll end
  EXPECT_EQ(pipe->state(), PipeState::kSupply);
  EXPECT_EQ(pipe->staged_units(), 2u);
  EXPECT_TRUE(sink.elements.empty());  // nothing delivered downstream yet

  // Deliver drains everything and returns to Idle.
  pipe->ClearInQueue();
  EXPECT_EQ(pipe->Deliver(), 2u);
  EXPECT_EQ(pipe->state(), PipeState::kIdle);
  EXPECT_FALSE(pipe->HasStaged());
  ASSERT_EQ(sink.elements.size(), 2u);
  EXPECT_EQ(sink.elements[0].payload, 1);
  EXPECT_EQ(sink.elements[1].payload, 2);

  source.DetachExecutor();
  EXPECT_FALSE(source.executor_attached());
}

TEST(PipeStateMachine, PassiveProducerSkipsRequest) {
  ManualSource source;
  ProbeSink sink;
  source.AddSubscriber(sink.input());
  RecordingLink link;
  PipeBase* pipe = source.AttachExecutor(&link);

  // No poll preceded the staging: Idle -> Supply directly.
  source.Emit(7, 3);
  EXPECT_EQ(pipe->state(), PipeState::kSupply);

  pipe->ClearInQueue();
  pipe->Deliver();
  source.DetachExecutor();
}

TEST(PipeStateMachine, DeliveryPreservesControlInterleaving) {
  ManualSource source;
  ProbeSink sink;
  source.AddSubscriber(sink.input());
  RecordingLink link;
  PipeBase* pipe = source.AttachExecutor(&link);

  // element(5) | heartbeat(8) | element(9) | done — two separate runs with
  // the heartbeat pinned between them, then end-of-stream.
  source.Emit(1, 5);
  source.EmitHeartbeat(8);
  source.Emit(2, 9);
  source.EmitDone();
  EXPECT_EQ(pipe->staged_units(), 4u);
  EXPECT_FALSE(sink.done());

  pipe->ClearInQueue();
  EXPECT_EQ(pipe->Deliver(), 4u);
  ASSERT_EQ(sink.elements.size(), 2u);
  EXPECT_EQ(sink.elements[0].start(), 5);
  EXPECT_EQ(sink.elements[1].start(), 9);
  EXPECT_TRUE(sink.done());
  EXPECT_EQ(sink.watermark(), kMaxTimestamp);
  // The staged heartbeat reached the sink between the two elements: its
  // level (8) must appear in the progress sequence before element 2's (9).
  const auto it8 =
      std::find(sink.progress.begin(), sink.progress.end(), Timestamp{8});
  const auto it9 =
      std::find(sink.progress.begin(), sink.progress.end(), Timestamp{9});
  ASSERT_NE(it8, sink.progress.end());
  ASSERT_NE(it9, sink.progress.end());
  EXPECT_LT(it8 - sink.progress.begin(), it9 - sink.progress.begin());

  source.DetachExecutor();
}

TEST(PipeExecutorTest, DrivesLinearChainToCompletion) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2, 3, 4, 5, 6}), "src", /*batch_size=*/2);
  auto pred = [](int v) { return v % 2 == 0; };
  auto& filter = graph.Add<Filter<int, decltype(pred)>>(pred);
  auto fn = [](int v) { return v * 10; };
  auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  map.AddSubscriber(sink.input());

  RoundRobinStrategy strategy;
  PipeExecutor executor(graph, strategy, /*batch_size=*/4);
  const scheduler::RunStats stats = executor.RunToCompletion();

  ASSERT_EQ(sink.elements().size(), 3u);
  EXPECT_EQ(sink.elements()[0].payload, 20);
  EXPECT_EQ(sink.elements()[1].payload, 40);
  EXPECT_EQ(sink.elements()[2].payload, 60);
  EXPECT_TRUE(sink.done());
  EXPECT_TRUE(executor.AllPipesIdle());
  EXPECT_GT(stats.units, 0u);
  EXPECT_TRUE(graph.Finished());
}

// The headline stack-safety property: a 1000-operator chain drains with
// constant call depth. Under the recursive path every element would nest
// ~1000 frames of Receive/PortElement/Transfer; under the executor each
// hop is a separate FIFO-queued delivery, asserted via the nesting metric.
TEST(PipeExecutorTest, Depth1000ChainRunsWithoutRecursion) {
  constexpr std::size_t kDepth = 1000;
  constexpr int kElements = 50;

  QueryGraph graph;
  std::vector<int> payloads(kElements);
  for (int i = 0; i < kElements; ++i) payloads[i] = i;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points(payloads), "src", /*batch_size=*/8);
  auto fn = [](int v) { return v + 1; };
  using Inc = Map<int, int, decltype(fn)>;
  Source<int>* tail = &source;
  for (std::size_t d = 0; d < kDepth; ++d) {
    auto& stage = graph.Add<Inc>(fn, "map-" + std::to_string(d));
    tail->AddSubscriber(stage.input());
    tail = &stage;
  }
  auto& sink = graph.Add<CollectorSink<int>>();
  tail->AddSubscriber(sink.input());

  RoundRobinStrategy strategy;
  PipeExecutor executor(graph, strategy, /*batch_size=*/16);
  executor.RunToCompletion();

  ASSERT_EQ(sink.elements().size(), static_cast<std::size_t>(kElements));
  for (int i = 0; i < kElements; ++i) {
    EXPECT_EQ(sink.elements()[i].payload, i + static_cast<int>(kDepth));
    EXPECT_EQ(sink.elements()[i].start(), i);
  }
  EXPECT_TRUE(sink.done());
  // Delivery never nested: one pipe's Deliver() finished before the next
  // began, independent of chain depth.
  EXPECT_EQ(executor.max_deliver_nesting(), 1u);
}

TEST(PipeExecutorTest, MatchesRecursiveSchedulerEndState) {
  Random rng(20240601);
  const auto a = RandomIntStream(rng);
  const auto b = RandomIntStream(rng);

  auto build = [&](QueryGraph& graph, CollectorSink<int>*& sink_out) {
    auto& sa = graph.Add<VectorSource<int>>(a, "a", /*batch_size=*/4);
    auto& sb = graph.Add<VectorSource<int>>(b, "b", /*batch_size=*/4);
    auto pred = [](int v) { return v % 3 != 0; };
    auto& filter = graph.Add<Filter<int, decltype(pred)>>(pred);
    auto fn = [](int v) { return v * 2; };
    auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
    auto& window = graph.Add<TimeWindow<int>>(/*size=*/16);
    auto& u = graph.Add<Union<int>>();
    auto& sink = graph.Add<CollectorSink<int>>();
    sa.AddSubscriber(filter.input());
    filter.AddSubscriber(map.input());
    map.AddSubscriber(u.left());
    sb.AddSubscriber(window.input());
    window.AddSubscriber(u.right());
    u.AddSubscriber(sink.input());
    sink_out = &sink;
  };

  QueryGraph ref_graph;
  CollectorSink<int>* ref_sink = nullptr;
  build(ref_graph, ref_sink);
  RoundRobinStrategy ref_strategy;
  SingleThreadScheduler ref_driver(ref_graph, ref_strategy, /*batch_size=*/4);
  ref_driver.RunToCompletion();

  QueryGraph exe_graph;
  CollectorSink<int>* exe_sink = nullptr;
  build(exe_graph, exe_sink);
  RoundRobinStrategy exe_strategy;
  PipeExecutor executor(exe_graph, exe_strategy, /*batch_size=*/4);
  executor.RunToCompletion();

  // The drivers interleave the two inputs differently, so compare
  // multisets: same elements, same done state, same final watermark.
  auto sorted = [](std::vector<StreamElement<int>> v) {
    std::sort(v.begin(), v.end(),
              [](const StreamElement<int>& x, const StreamElement<int>& y) {
                return std::tuple(x.start(), x.end(), x.payload) <
                       std::tuple(y.start(), y.end(), y.payload);
              });
    return v;
  };
  EXPECT_EQ(sorted(exe_sink->elements()), sorted(ref_sink->elements()));
  EXPECT_TRUE(exe_sink->done());
  EXPECT_EQ(exe_sink->watermark(), ref_sink->watermark());
  EXPECT_TRUE(executor.AllPipesIdle());
}

TEST(PipeExecutorTest, DetachRestoresDirectDelivery) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2, 3}), "src");
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());

  {
    RoundRobinStrategy strategy;
    PipeExecutor executor(graph, strategy);
    EXPECT_TRUE(source.executor_attached());
    // Destroyed without running: pipes are empty, detach is clean.
  }
  EXPECT_FALSE(source.executor_attached());

  RoundRobinStrategy strategy;
  SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
  EXPECT_EQ(sink.elements().size(), 3u);
  EXPECT_TRUE(sink.done());
}

TEST(PipeExecutorTest, DrainsBufferedGraphAndStaysBounded) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2, 3, 4, 5, 6, 7, 8}), "src",
      /*batch_size=*/3);
  auto& buffer = graph.Add<Buffer<int>>();
  auto fn = [](int v) { return v - 1; };
  auto& map = graph.Add<Map<int, int, decltype(fn)>>(fn);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(map.input());
  map.AddSubscriber(sink.input());

  RoundRobinStrategy strategy;
  PipeExecutor executor(graph, strategy, /*batch_size=*/2);
  executor.RunToCompletion();

  ASSERT_EQ(sink.elements().size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sink.elements()[i].payload, i);
  }
  EXPECT_TRUE(sink.done());
  EXPECT_TRUE(graph.Finished());
  EXPECT_EQ(executor.max_deliver_nesting(), 1u);
}

}  // namespace
}  // namespace pipes
