// Tests for the extension features: multiset intersection, the historical
// stream archive, the umbrella header, and assorted cross-module edge
// cases (cycle detection, slide-window grid semantics, dynamic tuple
// aggregates, CQL ROWS windows end-to-end).

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/pipes.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using namespace pipes::algebra;  // NOLINT: test-local convenience
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(Intersect, KeepsMinimumMultiplicity) {
  QueryGraph graph;
  // Left: two copies of 5 on [0,10). Right: one copy on [5,15).
  std::vector<StreamElement<int>> left = {StreamElement<int>(5, 0, 10),
                                          StreamElement<int>(5, 0, 10)};
  std::vector<StreamElement<int>> right = {StreamElement<int>(5, 5, 15)};
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto& intersect = graph.Add<Intersect<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  l.AddSubscriber(intersect.left());
  r.AddSubscriber(intersect.right());
  intersect.AddSubscriber(sink.input());
  Drain(graph);

  // Only [5,10) has both sides; min(2,1) = 1 copy.
  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0], StreamElement<int>(5, 5, 10));
}

class IntersectProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntersectProperty, SnapshotEquivalent) {
  Random rng(GetParam());
  testing::RandomStreamOptions options;
  options.count = 120;
  options.payload_domain = 4;
  const auto left = testing::RandomIntStream(rng, options);
  const auto right = testing::RandomIntStream(rng, options);

  QueryGraph graph;
  auto& l = graph.Add<VectorSource<int>>(left);
  auto& r = graph.Add<VectorSource<int>>(right);
  auto& intersect = graph.Add<Intersect<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  l.AddSubscriber(intersect.left());
  r.AddSubscriber(intersect.right());
  intersect.AddSubscriber(sink.input());

  scheduler::RandomStrategy strategy(GetParam());
  scheduler::SingleThreadScheduler driver(graph, strategy,
                                          1 + GetParam() % 13);
  driver.RunToCompletion();

  for (std::size_t i = 1; i < sink.elements().size(); ++i) {
    ASSERT_LE(sink.elements()[i - 1].start(), sink.elements()[i].start());
  }
  auto instants = testing::CriticalInstants<int>({&left, &right});
  for (Timestamp t : instants) {
    auto snap_l = testing::SnapshotAt(left, t);    // sorted
    auto snap_r = testing::SnapshotAt(right, t);   // sorted
    std::vector<int> expected;
    std::set_intersection(snap_l.begin(), snap_l.end(), snap_r.begin(),
                          snap_r.end(), std::back_inserter(expected));
    ASSERT_EQ(testing::SnapshotAt(sink.elements(), t), expected)
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectProperty,
                         ::testing::Values(3, 7, 31, 127));

TEST(StreamArchive, SupportsHistoricalQueries) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input = {
      StreamElement<int>(1, 0, 10), StreamElement<int>(2, 5, 15),
      StreamElement<int>(3, 20, 30)};
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& archive = graph.Add<cursors::StreamArchive<int>>();
  source.AddSubscriber(archive.input());
  Drain(graph);

  EXPECT_EQ(archive.size(), 3u);

  auto all = archive.ScanAll();
  EXPECT_EQ(cursors::Collect(*all).size(), 3u);

  // Historical snapshot at t=7: payloads 1 and 2.
  auto snapshot = archive.SnapshotAt(7);
  auto payloads = cursors::Collect(*snapshot);
  std::sort(payloads.begin(), payloads.end());
  EXPECT_EQ(payloads, (std::vector<int>{1, 2}));

  // Range [12, 25) overlaps elements 2 and 3.
  auto range = archive.QueryRange(TimeInterval(12, 25));
  EXPECT_EQ(cursors::Collect(*range).size(), 2u);

  // Empty epochs yield nothing.
  EXPECT_TRUE(cursors::Collect(*archive.SnapshotAt(17)).empty());
  EXPECT_TRUE(cursors::Collect(*archive.SnapshotAt(100)).empty());
}

TEST(StreamArchive, QueryableWhileStreamStillRuns) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2, 3, 4}));
  auto& archive = graph.Add<cursors::StreamArchive<int>>();
  source.AddSubscriber(archive.input());
  source.DoWork(2);
  EXPECT_EQ(archive.size(), 2u);
  EXPECT_EQ(cursors::Collect(*archive.SnapshotAt(0)),
            (std::vector<int>{1}));
  Drain(graph);
  EXPECT_EQ(archive.size(), 4u);
}

TEST(Graph, ValidateDetectsCycle) {
  QueryGraph graph;
  struct Identity {
    int operator()(int v) const { return v; }
  };
  auto& a = graph.Add<Map<int, int, Identity>>(Identity{}, "a");
  auto& b = graph.Add<Map<int, int, Identity>>(Identity{}, "b");
  a.AddSubscriber(b.input());
  b.AddSubscriber(a.input());
  const Status status = graph.Validate();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(status.message().find("cycle"), std::string::npos);
}

TEST(Graph, ValidateRejectsEdgesToForeignNodes) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1}));
  CollectorSink<int> outside("outside");  // not owned by the graph
  source.AddSubscriber(outside.input());
  EXPECT_EQ(graph.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST(SlideWindow, SnapshotCorrectAtGridInstants) {
  Random rng(77);
  testing::RandomStreamOptions options;
  options.max_duration = 1;
  options.count = 150;
  const auto input = testing::RandomIntStream(rng, options);
  const Timestamp w = 20;
  const Timestamp s = 5;

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& window = graph.Add<SlideWindow<int>>(w, s);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  Drain(graph);

  // At every grid instant τ = k*s the snapshot must contain exactly the
  // payloads with t in (τ - w, τ].
  const Timestamp horizon = testing::Horizon(input).end + w + s;
  for (Timestamp tau = 0; tau <= horizon; tau += s) {
    std::vector<int> expected;
    for (const auto& e : input) {
      if (tau - w < e.start() && e.start() <= tau) {
        expected.push_back(e.payload);
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(testing::SnapshotAt(sink.elements(), tau), expected)
        << "grid instant " << tau;
  }
}

TEST(TupleAggPolicy, AllAggregateKinds) {
  using optimizer::AggKind;
  using optimizer::AggSpec;
  std::vector<AggSpec> specs;
  specs.push_back({AggKind::kCount, nullptr, "n"});
  specs.push_back({AggKind::kSum, relational::MakeField(0, "x"), "sum"});
  specs.push_back({AggKind::kAvg, relational::MakeField(0, "x"), "avg"});
  specs.push_back({AggKind::kMin, relational::MakeField(1, "s"), "min"});
  specs.push_back({AggKind::kMax, relational::MakeField(1, "s"), "max"});
  optimizer::TupleAggPolicy policy(specs);

  auto state = policy.Init();
  policy.Add(state, Tuple{Value(std::int64_t{4}), Value("beta")});
  policy.Add(state, Tuple{Value(std::int64_t{6}), Value("alpha")});
  const Tuple result = policy.Result(state);

  EXPECT_EQ(result.field(0).AsInt(), 2);       // COUNT(*)
  EXPECT_EQ(result.field(1).AsInt(), 10);      // int SUM stays int
  EXPECT_DOUBLE_EQ(result.field(2).AsDouble(), 5.0);
  EXPECT_EQ(result.field(3).AsString(), "alpha");  // MIN over strings
  EXPECT_EQ(result.field(4).AsString(), "beta");
}

TEST(TupleAggPolicy, MixedIntDoubleSumPromotes) {
  using optimizer::AggKind;
  using optimizer::AggSpec;
  std::vector<AggSpec> specs;
  specs.push_back({AggKind::kSum, relational::MakeField(0, "x"), "sum"});
  optimizer::TupleAggPolicy policy(specs);
  auto state = policy.Init();
  policy.Add(state, Tuple{Value(std::int64_t{1})});
  policy.Add(state, Tuple{Value(2.5)});
  EXPECT_DOUBLE_EQ(policy.Result(state).field(0).AsDouble(), 3.5);
  EXPECT_EQ(policy.Result(state).field(0).type(), ValueType::kDouble);
}

TEST(TupleAggPolicy, NullArgumentsAreIgnored) {
  using optimizer::AggKind;
  using optimizer::AggSpec;
  std::vector<AggSpec> specs;
  specs.push_back({AggKind::kMin, relational::MakeField(0, "x"), "min"});
  specs.push_back({AggKind::kAvg, relational::MakeField(0, "x"), "avg"});
  optimizer::TupleAggPolicy policy(specs);
  auto state = policy.Init();
  policy.Add(state, Tuple{Value::Null()});
  EXPECT_TRUE(policy.Result(state).field(0).is_null());   // MIN of nothing
  EXPECT_TRUE(policy.Result(state).field(1).is_null());   // AVG of nothing
}

TEST(CqlEndToEnd, RowsWindowKeepsLastN) {
  QueryGraph graph;
  std::vector<StreamElement<Tuple>> input;
  for (int i = 0; i < 6; ++i) {
    input.push_back(StreamElement<Tuple>::Point(
        Tuple{Value(std::int64_t{i})}, i * 10));
  }
  auto& source = graph.Add<VectorSource<Tuple>>(input, "nums");
  cql::Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterStream("nums",
                                  Schema({{"v", ValueType::kInt}}), &source)
                  .ok());
  optimizer::PlanManager manager(&graph, &catalog);
  auto query = manager.InstallQuery(
      "SELECT COUNT(*) AS n FROM nums [ROWS 2]");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto& sink = graph.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());
  Drain(graph);

  // After warm-up the window always holds exactly two rows.
  ASSERT_FALSE(sink.elements().empty());
  std::int64_t max_count = 0;
  for (const auto& e : sink.elements()) {
    max_count = std::max(max_count, e.payload.field(0).AsInt());
    EXPECT_LE(e.payload.field(0).AsInt(), 2);
  }
  EXPECT_EQ(max_count, 2);
}

TEST(CqlEndToEnd, DistinctQueryCollapsesDuplicates) {
  QueryGraph graph;
  std::vector<StreamElement<Tuple>> input;
  for (int i = 0; i < 9; ++i) {
    input.push_back(StreamElement<Tuple>(
        Tuple{Value(std::int64_t{i % 3})}, i, i + 10));
  }
  auto& source = graph.Add<VectorSource<Tuple>>(input, "keys");
  cql::Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterStream("keys",
                                  Schema({{"k", ValueType::kInt}}), &source)
                  .ok());
  optimizer::PlanManager manager(&graph, &catalog);
  auto query = manager.InstallQuery("SELECT DISTINCT k FROM keys");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto& sink = graph.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());
  Drain(graph);

  // Snapshot-distinct: at t = 8 all three keys are valid exactly once.
  auto snapshot = testing::SnapshotAt(sink.elements(), 8);
  EXPECT_EQ(snapshot.size(), 3u);
}

TEST(UmbrellaHeader, EverythingIsReachable) {
  // Compile-time test: src/pipes.h included above pulls in the full API.
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(
      VectorSource<int>::Points({1, 2, 3}));
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(sink.input());
  Drain(graph);
  EXPECT_EQ(sink.count(), 3u);
}

}  // namespace
}  // namespace pipes
