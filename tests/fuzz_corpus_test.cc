// Replays every seed in tests/fuzz_corpus.txt through the full simulation
// harness (all schedule arms, all fault injections, all oracles). The
// corpus pins structurally diverse cases plus shrunk repros of past
// findings, so a regression in any operator/scheduler/oracle combination
// fails here deterministically — no fuzzing luck required.
//
// FUZZ_CORPUS_PATH is injected by tests/CMakeLists.txt and points at the
// checked-in corpus file.

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/testing/harness.h"

namespace pipes::testing {
namespace {

std::vector<std::uint64_t> LoadCorpus(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open corpus at " << path;
  std::vector<std::uint64_t> seeds;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first)) continue;       // blank line
    if (first[0] == '#') continue;          // comment line
    seeds.push_back(std::stoull(first));    // trailing "# ..." is ignored
  }
  return seeds;
}

TEST(FuzzCorpus, HasDiverseSeeds) {
  const std::vector<std::uint64_t> seeds = LoadCorpus(FUZZ_CORPUS_PATH);
  EXPECT_GE(seeds.size(), 10u) << "corpus shrank; keep it structurally "
                                  "diverse (see the file header)";
}

TEST(FuzzCorpus, EverySeedReplaysClean) {
  const std::vector<std::uint64_t> seeds = LoadCorpus(FUZZ_CORPUS_PATH);
  ASSERT_FALSE(seeds.empty());
  for (const std::uint64_t seed : seeds) {
    const CaseResult r = RunCase(seed);
    EXPECT_TRUE(r.ok()) << "corpus seed " << seed << " failed: "
                        << r.Summary()
                        << "\nreproduce with: pipes_fuzz --replay " << seed;
  }
}

// The corpus must stay replayable byte-for-byte: the same seed must derive
// the same case and verdict twice (generator and harness are pure functions
// of the seed — no wall-clock, no global state).
TEST(FuzzCorpus, ReplayIsDeterministic) {
  const std::vector<std::uint64_t> seeds = LoadCorpus(FUZZ_CORPUS_PATH);
  ASSERT_FALSE(seeds.empty());
  const std::uint64_t seed = seeds.front();
  const CaseResult a = RunCase(seed);
  const CaseResult b = RunCase(seed);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.failing_arm, b.failing_arm);
  EXPECT_EQ(a.Summary(), b.Summary());
}

}  // namespace
}  // namespace pipes::testing
