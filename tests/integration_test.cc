// Full-prototype integration test: the paper's thesis is that PIPES'
// building blocks assemble into a working DSMS prototype. This test builds
// one — catalog + CQL plan manager + scheduler + memory manager + metadata
// monitor + historical archive — runs two application domains (traffic and
// auctions) concurrently on one graph, exercises dynamic query install /
// uninstall mid-run, and checks that every component held up its contract.

#include <optional>
#include <sstream>

#include <gtest/gtest.h>

#include "src/pipes.h"

namespace pipes {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;
using workloads::NexmarkEvent;
using workloads::NexmarkGenerator;
using workloads::NexmarkKind;
using workloads::NexmarkOptions;
using workloads::TrafficGenerator;
using workloads::TrafficOptions;
using workloads::TrafficReading;

TEST(Integration, PrototypeDsmsEndToEnd) {
  QueryGraph graph;

  // --- Sources: two application domains -----------------------------------
  TrafficOptions traffic_options;
  traffic_options.num_detectors = 4;
  traffic_options.num_lanes = 2;
  traffic_options.duration_ms = 1'800'000;  // 30 minutes
  traffic_options.base_rate_per_s = 0.2;
  auto traffic_gen = std::make_shared<TrafficGenerator>(traffic_options);
  auto& traffic = graph.Add<FunctionSource<Tuple>>(
      [traffic_gen]() -> std::optional<StreamElement<Tuple>> {
        auto r = traffic_gen->Next();
        if (!r.has_value()) return std::nullopt;
        return StreamElement<Tuple>::Point(
            Tuple{Value(static_cast<std::int64_t>(r->detector)),
                  Value(static_cast<std::int64_t>(r->lane)),
                  Value(r->speed_kmh)},
            r->timestamp);
      },
      "traffic");

  NexmarkOptions nexmark_options;
  nexmark_options.num_events = 20'000;
  nexmark_options.mean_interarrival_ms = 90.0;  // also ~30 minutes
  auto nexmark_gen = std::make_shared<NexmarkGenerator>(nexmark_options);
  auto& events = graph.Add<FunctionSource<NexmarkEvent>>(
      [nexmark_gen]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto e = nexmark_gen->Next();
        if (!e.has_value()) return std::nullopt;
        const Timestamp t = e->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*e), t);
      },
      "nexmark-events");
  auto& bids = workloads::BuildBidStream(graph, events);
  auto to_tuple = [](const workloads::Bid& b) {
    return Tuple{Value(b.auction), Value(b.price)};
  };
  auto& bid_tuples =
      graph.Add<algebra::Map<workloads::Bid, Tuple, decltype(to_tuple)>>(
          to_tuple, "bid-tuples");
  bids.AddSubscriber(bid_tuples.input());

  cql::Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterStream("traffic",
                                  Schema({{"detector", ValueType::kInt},
                                          {"lane", ValueType::kInt},
                                          {"speed", ValueType::kDouble}}),
                                  &traffic, /*rate_hint=*/20.0)
                  .ok());
  ASSERT_TRUE(catalog
                  .RegisterStream("bids",
                                  Schema({{"auction", ValueType::kInt},
                                          {"price", ValueType::kDouble}}),
                                  &bid_tuples, /*rate_hint=*/10.0)
                  .ok());

  // --- Continuous queries via the plan manager ----------------------------
  optimizer::PlanManager manager(&graph, &catalog);
  auto traffic_query = manager.InstallQuery(
      "SELECT detector, AVG(speed) AS avg_speed FROM traffic "
      "[RANGE 5 MINUTES SLIDE 1 MINUTES] GROUP BY detector");
  ASSERT_TRUE(traffic_query.ok()) << traffic_query.status().ToString();
  auto bid_query = manager.InstallQuery(
      "SELECT MAX(price) AS high FROM bids [RANGE 5 MINUTES SLIDE 5 "
      "MINUTES]");
  ASSERT_TRUE(bid_query.ok()) << bid_query.status().ToString();
  // A short-lived query, uninstalled mid-run.
  auto temporary = manager.InstallQuery(
      "SELECT detector, AVG(speed) AS avg_speed FROM traffic "
      "[RANGE 5 MINUTES SLIDE 1 MINUTES] GROUP BY detector");
  ASSERT_TRUE(temporary.ok());
  EXPECT_EQ(temporary->operators_created, 0u);  // fully shared

  auto& traffic_sink = graph.Add<CollectorSink<Tuple>>("traffic-results");
  auto& bid_sink = graph.Add<CollectorSink<Tuple>>("bid-results");
  traffic_query->output->AddSubscriber(traffic_sink.input());
  bid_query->output->AddSubscriber(bid_sink.input());

  // Historical archive on the bid results (demand-driven access later).
  auto& archive = graph.Add<cursors::StreamArchive<Tuple>>("bid-archive");
  bid_query->output->AddSubscriber(archive.input());

  // --- Runtime components --------------------------------------------------
  memory::MemoryManager memory_manager(
      1 << 20, std::make_unique<memory::ProportionalStrategy>());
  metadata::Monitor monitor;
  monitor.Watch(traffic, {metadata::MetricKind::kOutputRate});
  monitor.Watch(bid_tuples, {metadata::MetricKind::kOutputRate,
                             metadata::MetricKind::kSelectivity});

  scheduler::ChainStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 512);
  int steps = 0;
  bool uninstalled = false;
  while (driver.Step()) {
    ++steps;
    if (steps % 8 == 0) {
      monitor.Sample();
      memory_manager.Redistribute();
    }
    if (!uninstalled && steps > 20) {
      ASSERT_TRUE(manager.UninstallQuery(temporary->query_id).ok());
      uninstalled = true;
    }
  }
  EXPECT_TRUE(uninstalled);
  EXPECT_TRUE(graph.Finished());
  ASSERT_TRUE(graph.Validate().ok());

  // --- Results: both domains produced sensible output ----------------------
  ASSERT_FALSE(traffic_sink.elements().empty());
  for (const auto& e : traffic_sink.elements()) {
    const double avg = e.payload.field(1).AsDouble();
    EXPECT_GT(avg, 10.0);
    EXPECT_LT(avg, 200.0);
  }
  ASSERT_FALSE(bid_sink.elements().empty());
  // Surviving queries kept their subscriptions through the uninstall.
  EXPECT_EQ(manager.installed_queries(), 2u);

  // --- Metadata was collected ----------------------------------------------
  EXPECT_GT(monitor.samples_taken(), 0u);
  std::ostringstream csv;
  monitor.WriteCsv(csv);
  EXPECT_NE(csv.str().find("output_rate"), std::string::npos);

  // --- Historical queries over the archived results -------------------------
  EXPECT_EQ(archive.size(), bid_sink.elements().size());
  auto historic = archive.SnapshotAt(10 * 60 * 1000);  // minute 10
  const auto snapshot = cursors::Collect(*historic);
  ASSERT_EQ(snapshot.size(), 1u);  // one scalar MAX per instant
  EXPECT_GT(snapshot[0].field(0).AsDouble(), 0.0);
}

}  // namespace
}  // namespace pipes
