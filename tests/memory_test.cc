// Tests for the adaptive memory manager and its assignment strategies, and
// for end-to-end load shedding when the manager denies a join the memory it
// wants (the graceful-degradation contract the fuzz harness's fault-memory
// arm leans on).

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/join.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/memory/memory_manager.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/scheduler.h"

namespace pipes::memory {
namespace {

/// Scripted memory user for manager tests.
class FakeUser : public MemoryUser {
 public:
  explicit FakeUser(std::size_t usage, std::size_t min_bytes = 0,
                    std::size_t preferred =
                        std::numeric_limits<std::size_t>::max())
      : usage_(usage), min_(min_bytes), preferred_(preferred) {}

  std::size_t MemoryUsage() const override { return usage_; }
  void SetMemoryLimit(std::size_t bytes) override {
    limit_ = bytes;
    if (usage_ > bytes) usage_ = bytes;  // "shed" to fit
  }
  std::size_t MinMemoryBytes() const override { return min_; }
  std::size_t PreferredMemoryBytes() const override { return preferred_; }

  std::size_t limit() const { return limit_; }
  void set_usage(std::size_t usage) { usage_ = usage; }

 private:
  std::size_t usage_;
  std::size_t min_;
  std::size_t preferred_;
  std::size_t limit_ = std::numeric_limits<std::size_t>::max();
};

TEST(MemoryManager, UniformSplitsEvenly) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(0), b(0);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  EXPECT_EQ(a.limit(), 500u);
  EXPECT_EQ(b.limit(), 500u);
}

TEST(MemoryManager, UniformRespectsPreferredCapAndReoffers) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser capped(0, 0, /*preferred=*/100);
  FakeUser hungry(0);
  ASSERT_TRUE(manager.Register(capped).ok());
  ASSERT_TRUE(manager.Register(hungry).ok());
  EXPECT_EQ(capped.limit(), 100u);
  EXPECT_EQ(hungry.limit(), 900u);
}

TEST(MemoryManager, MinimaAreGrantedEvenOverBudget) {
  MemoryManager manager(100, std::make_unique<UniformStrategy>());
  FakeUser a(0, /*min=*/80), b(0, /*min=*/80);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  EXPECT_GE(a.limit(), 80u);
  EXPECT_GE(b.limit(), 80u);
}

TEST(MemoryManager, ProportionalFollowsUsage) {
  MemoryManager manager(900, std::make_unique<ProportionalStrategy>());
  FakeUser big(600), small(200);
  ASSERT_TRUE(manager.Register(big).ok());
  ASSERT_TRUE(manager.Register(small).ok());
  manager.Redistribute();
  EXPECT_GT(big.limit(), small.limit());
  // 3:1 usage ratio -> roughly 3:1 assignment.
  EXPECT_NEAR(static_cast<double>(big.limit()) /
                  static_cast<double>(small.limit()),
              3.0, 0.2);
}

TEST(MemoryManager, PriorityFollowsWeights) {
  MemoryManager manager(1000, std::make_unique<PriorityStrategy>());
  FakeUser gold(0), bronze(0);
  ASSERT_TRUE(manager.Register(gold, /*priority=*/4.0).ok());
  ASSERT_TRUE(manager.Register(bronze, /*priority=*/1.0).ok());
  EXPECT_EQ(gold.limit(), 800u);
  EXPECT_EQ(bronze.limit(), 200u);
}

TEST(MemoryManager, DoubleRegisterFails) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(0);
  ASSERT_TRUE(manager.Register(a).ok());
  EXPECT_EQ(manager.Register(a).code(), StatusCode::kAlreadyExists);
}

TEST(MemoryManager, UnregisterLiftsLimitAndRedistributes) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(0), b(0);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  ASSERT_TRUE(manager.Unregister(a).ok());
  EXPECT_EQ(a.limit(), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(b.limit(), 1000u);
  EXPECT_EQ(manager.Unregister(a).code(), StatusCode::kNotFound);
}

TEST(MemoryManager, ShrinkingBudgetShrinksAssignments) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(400), b(400);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  manager.set_budget(400);
  EXPECT_EQ(a.limit(), 200u);
  EXPECT_EQ(b.limit(), 200u);
  // FakeUser sheds to its limit.
  EXPECT_LE(manager.TotalUsage(), 400u);
}

TEST(MemoryManager, StrategySwapTakesEffect) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser big(900), small(100);
  ASSERT_TRUE(manager.Register(big).ok());
  ASSERT_TRUE(manager.Register(small).ok());
  EXPECT_EQ(big.limit(), small.limit());
  manager.set_strategy(std::make_unique<ProportionalStrategy>());
  EXPECT_GT(big.limit(), small.limit());
}

// --- Load shedding under allocation denial ----------------------------------

struct JoinKeyMod8 {
  int operator()(int v) const { return v % 8; }
};
struct CombinePair {
  int operator()(int l, int r) const { return l * 1000 + r; }
};

struct JoinRunResult {
  std::uint64_t out = 0;
  std::uint64_t shed = 0;
  std::uint64_t snapshot_shed = 0;
};

/// Drives source -> hash-join <- source to completion under a manager
/// budget (or unmanaged when budget == 0) and reports the join's output
/// count plus its shed counter as seen live and via CaptureSnapshot.
JoinRunResult RunJoinWithBudget(std::size_t budget) {
  std::vector<StreamElement<int>> left, right;
  for (int i = 0; i < 300; ++i) {
    // Long validity intervals keep both SweepAreas populated, so a denied
    // allocation has state to shed.
    left.emplace_back(i, i, i + 60);
    right.emplace_back(i + 1, i, i + 60);
  }

  QueryGraph graph;
  auto& src_l = graph.Add<VectorSource<int>>(left, "left");
  auto& src_r = graph.Add<VectorSource<int>>(right, "right");
  auto& join = graph.Add(algebra::MakeHashJoin<int, int>(
      JoinKeyMod8{}, JoinKeyMod8{}, CombinePair{}, "join"));
  auto& sink = graph.Add<CountingSink<int>>("sink");
  src_l.AddSubscriber(join.left());
  src_r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());

  std::unique_ptr<MemoryManager> manager;
  if (budget > 0) {
    manager = std::make_unique<MemoryManager>(
        budget, std::make_unique<UniformStrategy>());
    EXPECT_TRUE(manager->Register(join).ok());
  }

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  JoinRunResult r;
  r.out = sink.count();
  r.shed = join.ShedCount();
  const metadata::NodeSnapshot* js =
      metadata::CaptureSnapshot(graph).FindNode("join");
  EXPECT_NE(js, nullptr);
  if (js != nullptr) r.snapshot_shed = js->shed;
  return r;
}

TEST(LoadShedding, SufficientMemoryMeansNoShedding) {
  const JoinRunResult unmanaged = RunJoinWithBudget(0);
  const JoinRunResult roomy = RunJoinWithBudget(64u << 20);
  // A budget the join never reaches must not change the answer at all.
  EXPECT_EQ(roomy.shed, 0u);
  EXPECT_EQ(roomy.snapshot_shed, 0u);
  EXPECT_EQ(roomy.out, unmanaged.out);
  EXPECT_GT(roomy.out, 0u);
}

TEST(LoadShedding, AllocationDenialShedsAndIsObservable) {
  const JoinRunResult unmanaged = RunJoinWithBudget(0);
  const JoinRunResult starved = RunJoinWithBudget(2048);
  // The join kept running (graceful degradation), but shed state...
  EXPECT_GT(starved.shed, 0u);
  // ...and the loss shows up as missing join results, never as extras.
  EXPECT_LT(starved.out, unmanaged.out);
  EXPECT_GT(starved.out, 0u);
  // The metrics snapshot reports exactly the observed shed count, so an
  // operator can attribute the output loss without touching the node.
  EXPECT_EQ(starved.snapshot_shed, starved.shed);
}

}  // namespace
}  // namespace pipes::memory
