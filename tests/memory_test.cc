// Tests for the adaptive memory manager and its assignment strategies.

#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "src/memory/memory_manager.h"

namespace pipes::memory {
namespace {

/// Scripted memory user for manager tests.
class FakeUser : public MemoryUser {
 public:
  explicit FakeUser(std::size_t usage, std::size_t min_bytes = 0,
                    std::size_t preferred =
                        std::numeric_limits<std::size_t>::max())
      : usage_(usage), min_(min_bytes), preferred_(preferred) {}

  std::size_t MemoryUsage() const override { return usage_; }
  void SetMemoryLimit(std::size_t bytes) override {
    limit_ = bytes;
    if (usage_ > bytes) usage_ = bytes;  // "shed" to fit
  }
  std::size_t MinMemoryBytes() const override { return min_; }
  std::size_t PreferredMemoryBytes() const override { return preferred_; }

  std::size_t limit() const { return limit_; }
  void set_usage(std::size_t usage) { usage_ = usage; }

 private:
  std::size_t usage_;
  std::size_t min_;
  std::size_t preferred_;
  std::size_t limit_ = std::numeric_limits<std::size_t>::max();
};

TEST(MemoryManager, UniformSplitsEvenly) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(0), b(0);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  EXPECT_EQ(a.limit(), 500u);
  EXPECT_EQ(b.limit(), 500u);
}

TEST(MemoryManager, UniformRespectsPreferredCapAndReoffers) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser capped(0, 0, /*preferred=*/100);
  FakeUser hungry(0);
  ASSERT_TRUE(manager.Register(capped).ok());
  ASSERT_TRUE(manager.Register(hungry).ok());
  EXPECT_EQ(capped.limit(), 100u);
  EXPECT_EQ(hungry.limit(), 900u);
}

TEST(MemoryManager, MinimaAreGrantedEvenOverBudget) {
  MemoryManager manager(100, std::make_unique<UniformStrategy>());
  FakeUser a(0, /*min=*/80), b(0, /*min=*/80);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  EXPECT_GE(a.limit(), 80u);
  EXPECT_GE(b.limit(), 80u);
}

TEST(MemoryManager, ProportionalFollowsUsage) {
  MemoryManager manager(900, std::make_unique<ProportionalStrategy>());
  FakeUser big(600), small(200);
  ASSERT_TRUE(manager.Register(big).ok());
  ASSERT_TRUE(manager.Register(small).ok());
  manager.Redistribute();
  EXPECT_GT(big.limit(), small.limit());
  // 3:1 usage ratio -> roughly 3:1 assignment.
  EXPECT_NEAR(static_cast<double>(big.limit()) /
                  static_cast<double>(small.limit()),
              3.0, 0.2);
}

TEST(MemoryManager, PriorityFollowsWeights) {
  MemoryManager manager(1000, std::make_unique<PriorityStrategy>());
  FakeUser gold(0), bronze(0);
  ASSERT_TRUE(manager.Register(gold, /*priority=*/4.0).ok());
  ASSERT_TRUE(manager.Register(bronze, /*priority=*/1.0).ok());
  EXPECT_EQ(gold.limit(), 800u);
  EXPECT_EQ(bronze.limit(), 200u);
}

TEST(MemoryManager, DoubleRegisterFails) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(0);
  ASSERT_TRUE(manager.Register(a).ok());
  EXPECT_EQ(manager.Register(a).code(), StatusCode::kAlreadyExists);
}

TEST(MemoryManager, UnregisterLiftsLimitAndRedistributes) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(0), b(0);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  ASSERT_TRUE(manager.Unregister(a).ok());
  EXPECT_EQ(a.limit(), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(b.limit(), 1000u);
  EXPECT_EQ(manager.Unregister(a).code(), StatusCode::kNotFound);
}

TEST(MemoryManager, ShrinkingBudgetShrinksAssignments) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser a(400), b(400);
  ASSERT_TRUE(manager.Register(a).ok());
  ASSERT_TRUE(manager.Register(b).ok());
  manager.set_budget(400);
  EXPECT_EQ(a.limit(), 200u);
  EXPECT_EQ(b.limit(), 200u);
  // FakeUser sheds to its limit.
  EXPECT_LE(manager.TotalUsage(), 400u);
}

TEST(MemoryManager, StrategySwapTakesEffect) {
  MemoryManager manager(1000, std::make_unique<UniformStrategy>());
  FakeUser big(900), small(100);
  ASSERT_TRUE(manager.Register(big).ok());
  ASSERT_TRUE(manager.Register(small).ok());
  EXPECT_EQ(big.limit(), small.limit());
  manager.set_strategy(std::make_unique<ProportionalStrategy>());
  EXPECT_GT(big.limit(), small.limit());
}

}  // namespace
}  // namespace pipes::memory
