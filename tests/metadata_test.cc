// Tests for secondary metadata: estimators, registries, and the monitor.

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "src/algebra/filter.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/metadata/estimators.h"
#include "src/metadata/monitor.h"
#include "src/metadata/registry.h"
#include "src/scheduler/scheduler.h"

namespace pipes::metadata {
namespace {

TEST(Estimators, RunningStatsMatchesClosedForm) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 4.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Estimators, RunningStatsEmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);
}

TEST(Estimators, EwmaConvergesTowardConstantInput) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.seeded());
  ewma.Add(0.0);
  for (int i = 0; i < 20; ++i) ewma.Add(10.0);
  EXPECT_NEAR(ewma.value(), 10.0, 0.01);
}

TEST(Registry, GaugesAndStatsLifecycle) {
  Registry registry;
  EXPECT_EQ(registry.Gauge("x"), std::nullopt);
  registry.SetGauge("x", 3.0);
  EXPECT_DOUBLE_EQ(*registry.Gauge("x"), 3.0);

  registry.Observe("y", 1.0);
  registry.Observe("y", 3.0);
  EXPECT_DOUBLE_EQ(registry.Stats("y")->mean(), 2.0);

  registry.Remove("x");
  EXPECT_EQ(registry.Gauge("x"), std::nullopt);
  EXPECT_EQ(registry.GaugeNames().size(), 0u);
  EXPECT_EQ(registry.StatsNames().size(), 1u);
}

class MonitorTest : public ::testing::Test {
 protected:
  void RunPipeline() {
    std::vector<int> payloads;
    for (int i = 0; i < 100; ++i) payloads.push_back(i);
    auto& source = graph_.Add<VectorSource<int>>(
        VectorSource<int>::Points(std::move(payloads)));
    auto pred = [](int v) { return v % 4 == 0; };
    auto& filter = graph_.Add<algebra::Filter<int, decltype(pred)>>(pred);
    filter_ = &filter;
    auto& sink = graph_.Add<CountingSink<int>>();
    source.AddSubscriber(filter.input());
    filter.AddSubscriber(sink.input());

    monitor_.Watch(*filter_,
                   {MetricKind::kInputRate, MetricKind::kOutputRate,
                    MetricKind::kSelectivity, MetricKind::kSubscriberCount});

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph_, strategy,
                                            /*batch_size=*/25);
    while (driver.Step()) {
      monitor_.Sample();
    }
    monitor_.Sample();
  }

  QueryGraph graph_;
  Node* filter_ = nullptr;
  Monitor monitor_;
};

TEST_F(MonitorTest, DerivesRatesAndSelectivity) {
  RunPipeline();
  EXPECT_NEAR(*filter_->metadata().Gauge("selectivity"), 0.25, 0.01);
  EXPECT_DOUBLE_EQ(*filter_->metadata().Gauge("subscriber_count"), 1.0);
  // Rates observed across samples must average to (total / samples).
  auto stats = filter_->metadata().Stats("input_rate.stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->mean(), 0.0);
  EXPECT_NEAR(stats->mean() * static_cast<double>(stats->count()), 100.0,
              1.0);
}

TEST_F(MonitorTest, CsvContainsWatchedMetrics) {
  RunPipeline();
  std::ostringstream out;
  Monitor::WriteCsvHeader(out);
  monitor_.WriteCsv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("selectivity"), std::string::npos);
  EXPECT_NE(csv.find("input_rate"), std::string::npos);
  EXPECT_NE(csv.find("filter"), std::string::npos);
}

TEST_F(MonitorTest, RuntimeRecomposition) {
  RunPipeline();
  ASSERT_TRUE(monitor_.RemoveMetric(*filter_, MetricKind::kSelectivity).ok());
  EXPECT_EQ(filter_->metadata().Gauge("selectivity"), std::nullopt);
  ASSERT_TRUE(monitor_.AddMetric(*filter_, MetricKind::kQueueSize).ok());
  monitor_.Sample();
  EXPECT_DOUBLE_EQ(*filter_->metadata().Gauge("queue_size"), 0.0);
}

TEST_F(MonitorTest, UnwatchRemovesGauges) {
  RunPipeline();
  monitor_.Unwatch(*filter_);
  EXPECT_EQ(filter_->metadata().Gauge("selectivity"), std::nullopt);
  // Unknown node errors are reported.
  EXPECT_EQ(monitor_.AddMetric(*filter_, MetricKind::kQueueSize).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace pipes::metadata
