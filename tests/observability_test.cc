// Tests for the runtime observability layer: hot-path counters and the
// MetricsSnapshot walker, JSON/DOT exporters and the round-trip parser, the
// trace ring, the latency histogram, the scheduler profiler — and the two
// contracts everything else rests on: metrics never perturb the dataflow
// output, and capturing a snapshot is safe while a ThreadScheduler runs
// (this file is part of the TSAN CI job).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/metrics.h"
#include "src/core/sink.h"
#include "src/core/trace.h"
#include "src/memory/memory_manager.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/profiler.h"
#include "src/scheduler/scheduler.h"

namespace pipes {
namespace {

std::vector<StreamElement<int>> MakeInput(int n) {
  std::vector<StreamElement<int>> input;
  input.reserve(n);
  for (int i = 0; i < n; ++i) {
    input.push_back(StreamElement<int>::Point(i, i));
  }
  return input;
}

struct DropEveryFourth {
  bool operator()(int v) const { return v % 4 != 0; }
};
struct Negate {
  int operator()(int v) const { return -v; }
};

/// Restores global observability switches on scope exit so tests do not
/// leak state into each other.
struct ObservabilityGuard {
  ~ObservabilityGuard() {
    obs::SetMetricsEnabled(false);
    trace::SetEnabled(false);
    trace::SetSamplePeriod(1024);
    trace::GlobalRing().Clear();
  }
};

// --- Counters and CaptureSnapshot ------------------------------------------

TEST(ObservabilityTest, CountersAndSelectivity) {
  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(1000), "source", /*batch=*/64);
  auto& filter =
      graph.Add<algebra::Filter<int, DropEveryFourth>>(DropEveryFourth{},
                                                       "filter");
  auto& sink = graph.Add<CollectorSink<int>>("sink");
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  EXPECT_EQ(source.elements_out(), 1000u);
  EXPECT_EQ(filter.elements_in(), 1000u);
  EXPECT_EQ(filter.elements_out(), 750u);
  EXPECT_EQ(sink.elements_in(), 750u);
  // Batched path: 64-element trains -> ceil(1000/64) batches.
  EXPECT_EQ(source.batches_out(), 16u);
  EXPECT_EQ(filter.batches_in(), 16u);

  const metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(graph);
  const metadata::NodeSnapshot* fs = snap.FindNode("filter");
  ASSERT_NE(fs, nullptr);
  EXPECT_DOUBLE_EQ(fs->selectivity, 0.75);
  EXPECT_EQ(fs->subscribers, 1u);
  // Every node saw the final watermark, so nothing lags.
  for (const metadata::NodeSnapshot& n : snap.nodes) {
    if (n.has_progress) {
      EXPECT_EQ(n.watermark_lag, 0);
    }
  }
  EXPECT_EQ(snap.edges.size(), 2u);
}

TEST(ObservabilityTest, ProgressTracksWatermarks) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(MakeInput(100), "source");
  auto& sink = graph.Add<CollectorSink<int>>("sink");
  source.AddSubscriber(sink.input());

  // Produce half of the input: progress reflects the last transfer.
  while (source.elements_out() < 50) source.DoWork(1);
  const metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(graph);
  const metadata::NodeSnapshot* ss = snap.FindNode("source");
  ASSERT_NE(ss, nullptr);
  EXPECT_TRUE(ss->has_progress);
  EXPECT_EQ(ss->progress, 49);
  EXPECT_EQ(snap.high_watermark, 49);
}

// --- The no-perturbation contract ------------------------------------------

std::vector<StreamElement<int>> RunChainCollect() {
  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(5000), "source", /*batch=*/32);
  auto& filter = graph.Add<algebra::Filter<int, DropEveryFourth>>(
      DropEveryFourth{}, "filter");
  auto& map = graph.Add<algebra::Map<int, int, Negate>>(Negate{}, "map");
  auto& buffer = graph.Add<Buffer<int>>();
  auto& sink = graph.Add<CollectorSink<int>>("sink");
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  map.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
  return sink.elements();
}

TEST(ObservabilityTest, MetricsAndTracingNeverPerturbOutput) {
  ObservabilityGuard guard;
  obs::SetMetricsEnabled(false);
  trace::SetEnabled(false);
  const std::vector<StreamElement<int>> baseline = RunChainCollect();

  obs::SetMetricsEnabled(true);
  trace::SetEnabled(true);
  trace::SetSamplePeriod(1);  // trace every element — worst case
  const std::vector<StreamElement<int>> observed = RunChainCollect();

  EXPECT_EQ(baseline, observed);
}

// --- Latency histogram ------------------------------------------------------

TEST(LatencyHistogramTest, BucketBoundaries) {
  // Bucket 0 holds everything below 256 ns.
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(255), 0u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(256), 1u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(511), 1u);
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(512), 2u);
  // Everything huge lands in the last bucket.
  EXPECT_EQ(obs::LatencyHistogram::BucketIndex(std::uint64_t{1} << 60),
            obs::LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogramTest, RecordAndSnapshot) {
  obs::LatencyHistogram hist;
  hist.Record(100);
  hist.Record(300);
  hist.Record(300);
  const obs::HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum_ns, 700u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_DOUBLE_EQ(snap.MeanNs(), 700.0 / 3.0);
}

TEST(ObservabilityTest, SampledLatencyHistogramRecordsWhenEnabled) {
  ObservabilityGuard guard;
  obs::SetMetricsEnabled(true);
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(MakeInput(1000), "source");
  auto& sink = graph.Add<CollectorSink<int>>("sink");
  source.AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
  // 1000 deliveries at a 1-in-16 sample rate.
  EXPECT_GE(sink.service_histogram().count(), 1000u / obs::kLatencySamplePeriod);
}

// --- Trace ring -------------------------------------------------------------

TEST(TraceRingTest, RecordsAndSnapshots) {
  trace::TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  ring.Record(1, 10, trace::Hop::kEmit);
  ring.Record(2, 10, trace::Hop::kReceive);
  const std::vector<trace::Event> events = ring.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].node_id, 1u);
  EXPECT_EQ(events[0].hop, trace::Hop::kEmit);
  EXPECT_EQ(events[1].node_id, 2u);
  // Hops of one element are ordered by the monotonic clock.
  EXPECT_LE(events[0].steady_ns, events[1].steady_ns);
}

TEST(TraceRingTest, WrapsWithoutGrowing) {
  trace::TraceRing ring(4);
  for (int i = 0; i < 100; ++i) {
    ring.Record(static_cast<std::uint64_t>(i), i, trace::Hop::kEmit);
  }
  EXPECT_EQ(ring.recorded(), 100u);
  const std::vector<trace::Event> events = ring.Snapshot();
  EXPECT_LE(events.size(), 4u);
  for (const trace::Event& e : events) {
    EXPECT_GE(e.node_id, 96u);  // only the newest survive
  }
}

TEST(TraceRingTest, EndToEndJourney) {
  ObservabilityGuard guard;
  trace::SetEnabled(true);
  trace::SetSamplePeriod(64);
  trace::GlobalRing().Clear();

  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(256), "source", /*batch=*/16);
  auto& map = graph.Add<algebra::Map<int, int, Negate>>(Negate{}, "map");
  auto& sink = graph.Add<CollectorSink<int>>("sink");
  source.AddSubscriber(map.input());
  map.AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  // Element with start 64 is sampled: emitted by source and map, received
  // by map's and sink's ports — 4 hops, in clock order.
  std::vector<trace::Event> journey;
  for (const trace::Event& e : trace::GlobalRing().Snapshot()) {
    if (e.element_start == 64) journey.push_back(e);
  }
  // Single-threaded run: the ring preserves record order, and the
  // monotonic timestamps agree with it.
  ASSERT_EQ(journey.size(), 4u);
  for (std::size_t i = 1; i < journey.size(); ++i) {
    EXPECT_LE(journey[i - 1].steady_ns, journey[i].steady_ns);
  }
  EXPECT_EQ(journey[0].node_id, source.id());
  EXPECT_EQ(journey[0].hop, trace::Hop::kEmit);
  EXPECT_EQ(journey[1].node_id, map.id());
  EXPECT_EQ(journey[1].hop, trace::Hop::kReceive);
  EXPECT_EQ(journey[2].node_id, map.id());
  EXPECT_EQ(journey[2].hop, trace::Hop::kEmit);
  EXPECT_EQ(journey[3].node_id, sink.id());
  EXPECT_EQ(journey[3].hop, trace::Hop::kReceive);
}

// --- Scheduler profiler -----------------------------------------------------

TEST(ProfilerTest, AgreesWithRunStats) {
  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(2000), "source", /*batch=*/32);
  auto& buffer = graph.Add<Buffer<int>>();
  auto& sink = graph.Add<CollectorSink<int>>("sink");
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, /*batch_size=*/64);
  scheduler::Profiler profiler;
  driver.set_profiler(&profiler);
  const scheduler::RunStats stats = driver.RunToCompletion();

  EXPECT_EQ(profiler.decisions(), stats.iterations);
  EXPECT_EQ(profiler.total_units(), stats.units);
  const scheduler::NodeProfile sp = profiler.ForNode(source);
  EXPECT_GT(sp.quanta, 0u);
  EXPECT_EQ(sp.node_name, "source");
  EXPECT_GE(sp.max_service_ns, 1u);
  EXPECT_GT(sp.MeanTrainLength(), 1.0);  // 64-unit quanta, not singletons
  EXPECT_FALSE(profiler.Summary().empty());
}

TEST(ProfilerTest, MergeAccumulates) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(MakeInput(10), "source");
  scheduler::Profiler a;
  scheduler::Profiler b;
  a.RecordQuantum(source, 2, 10, 100);
  b.RecordQuantum(source, 4, 30, 50);
  a.Merge(b);
  EXPECT_EQ(a.decisions(), 2u);
  EXPECT_EQ(a.total_units(), 40u);
  const scheduler::NodeProfile p = a.ForNode(source);
  EXPECT_EQ(p.quanta, 2u);
  EXPECT_EQ(p.units, 40u);
  EXPECT_EQ(p.service_ns, 150u);
  EXPECT_EQ(p.max_service_ns, 100u);
  EXPECT_EQ(p.candidates_sum, 6u);
}

// --- Exporters --------------------------------------------------------------

/// Two queries sharing a filtered subplan — the multi-query shape the
/// exporters must represent (one node, several subscribers).
void BuildSharedPlan(QueryGraph& graph, memory::MemoryManager* manager) {
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(512), "source", /*batch=*/16);
  auto& filter = graph.Add<algebra::Filter<int, DropEveryFourth>>(
      DropEveryFourth{}, "shared-filter");
  auto& map = graph.Add<algebra::Map<int, int, Negate>>(Negate{}, "q1-map");
  auto& sink1 = graph.Add<CollectorSink<int>>("q1-sink");
  auto& sink2 = graph.Add<CollectorSink<int>>("q2-sink");
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());   // query 1
  filter.AddSubscriber(sink2.input());  // query 2 taps the shared subplan
  map.AddSubscriber(sink1.input());
  (void)manager;
}

TEST(SnapshotExportTest, JsonRoundTripsMultiQueryGraph) {
  ObservabilityGuard guard;
  obs::SetMetricsEnabled(true);

  QueryGraph graph;
  memory::MemoryManager manager(1 << 20,
                                std::make_unique<memory::UniformStrategy>());
  BuildSharedPlan(graph, &manager);
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  scheduler::Profiler profiler;
  driver.set_profiler(&profiler);
  driver.RunToCompletion();

  metadata::CaptureOptions options;
  options.memory_manager = &manager;
  options.profiler = &profiler;
  const metadata::MetricsSnapshot snap =
      metadata::CaptureSnapshot(graph, options);
  ASSERT_EQ(snap.nodes.size(), 5u);
  ASSERT_EQ(snap.edges.size(), 4u);
  EXPECT_TRUE(snap.memory.present);

  const std::string json = metadata::ToJson(snap);
  const Result<metadata::MetricsSnapshot> parsed =
      metadata::SnapshotFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value(), snap);
  // Round-tripping the reparsed snapshot is also lossless (fixed point).
  EXPECT_EQ(metadata::ToJson(parsed.value()), json);
}

TEST(SnapshotExportTest, JsonParserRejectsGarbage) {
  EXPECT_FALSE(metadata::SnapshotFromJson("").ok());
  EXPECT_FALSE(metadata::SnapshotFromJson("{\"nodes\":").ok());
  EXPECT_FALSE(metadata::SnapshotFromJson("{\"bogus\":1}").ok());
  EXPECT_FALSE(metadata::SnapshotFromJson("{} trailing").ok());
}

TEST(SnapshotExportTest, DotCarriesOverlay) {
  QueryGraph graph;
  BuildSharedPlan(graph, nullptr);
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  const metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(graph);
  const std::string dot = metadata::ToDot(snap);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("shared-filter"), std::string::npos);
  // The shared filter's 0.75 selectivity is printed on its outgoing edges.
  EXPECT_NE(dot.find("sel 0.75"), std::string::npos);
  // All four subscription edges are present.
  std::size_t arrows = 0;
  for (std::size_t pos = dot.find(" -> "); pos != std::string::npos;
       pos = dot.find(" -> ", pos + 1)) {
    ++arrows;
  }
  EXPECT_EQ(arrows, 4u);

  // Rate mode: with a previous snapshot, edges carry el/s labels.
  const std::string rate_dot = metadata::ToDot(
      snap,
      metadata::SnapshotOptions{.previous = &snap, .elapsed_seconds = 1.0});
  EXPECT_NE(rate_dot.find("el/s"), std::string::npos);
}

// --- Concurrent capture (exercised under TSAN in CI) ------------------------

TEST(ObservabilityTest, SnapshotWhileThreadSchedulerRuns) {
  ObservabilityGuard guard;
  obs::SetMetricsEnabled(true);

  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(50'000), "source", /*batch=*/32);
  auto& buffer = graph.Add<ConcurrentBuffer<int>>();
  auto& map = graph.Add<algebra::Map<int, int, Negate>>(Negate{}, "map");
  auto& sink = graph.Add<CountingSink<int>>("sink");
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(map.input());
  map.AddSubscriber(sink.input());

  scheduler::ThreadScheduler driver(
      graph, /*num_threads=*/2,
      [] { return std::make_unique<scheduler::RoundRobinStrategy>(); });
  scheduler::Profiler profiler;
  driver.set_profiler(&profiler);

  std::atomic<bool> done{false};
  std::thread runner([&] {
    driver.RunToCompletion();
    done.store(true, std::memory_order_release);
  });

  // Capture continuously while the graph drains; every counter must be
  // monotone from one capture to the next.
  metadata::MetricsSnapshot prev = metadata::CaptureSnapshot(graph);
  std::uint64_t captures = 0;
  while (!done.load(std::memory_order_acquire)) {
    const metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(graph);
    ++captures;
    for (const metadata::NodeSnapshot& n : snap.nodes) {
      const metadata::NodeSnapshot* p = prev.FindNode(n.id);
      ASSERT_NE(p, nullptr);
      EXPECT_GE(n.elements_in, p->elements_in);
      EXPECT_GE(n.elements_out, p->elements_out);
      EXPECT_GE(n.batches_in, p->batches_in);
      EXPECT_GE(n.service.count, p->service.count);
      if (p->has_progress) {
        EXPECT_TRUE(n.has_progress);
        EXPECT_GE(n.progress, p->progress);
      }
    }
    EXPECT_GE(snap.high_watermark, prev.high_watermark);
    prev = snap;
  }
  runner.join();
  EXPECT_GT(captures, 0u);
  EXPECT_EQ(sink.count(), 50'000u);
  // The merged profile covers the complete run: at least every element that
  // passed through the two scheduled nodes (source and buffer).
  EXPECT_GE(profiler.total_units(), 100'000u);
  EXPECT_GT(profiler.decisions(), 0u);
}

// --- Deterministic mid-run capture (virtual time) ----------------------------
// The single-threaded counterpart of the test above. The thread version
// necessarily races capture points against the scheduler (that is its
// point — TSAN watches the data paths), so *which* intermediate states it
// observes varies run to run. Here the scheduler is stepped explicitly and
// a snapshot is taken every few quanta: same graph, same stride, same
// intermediate states, every time. This is the pattern the fuzz harness
// uses for its mid-run snapshot oracle, and the reason the test suite
// needs no wall-clock sleeps anywhere (see docs/testing.md).

/// Canonical text of one capture: per-node counters keyed by name (node
/// ids are process-global and differ between graph instances).
std::string CanonicalCapture(const metadata::MetricsSnapshot& snap) {
  std::vector<std::string> lines;
  for (const metadata::NodeSnapshot& n : snap.nodes) {
    std::ostringstream line;
    line << n.name << " in=" << n.elements_in << " out=" << n.elements_out
         << " shed=" << n.shed << " queue=" << n.queue_size
         << " progress=" << (n.has_progress ? n.progress : kMinTimestamp);
    lines.push_back(line.str());
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  out << "wm=" << snap.high_watermark;
  for (const std::string& line : lines) out << '\n' << line;
  return out.str();
}

std::vector<std::string> StepAndCapture() {
  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(MakeInput(2000), "source", /*batch=*/16);
  auto& buffer = graph.Add<Buffer<int>>();
  auto& map = graph.Add<algebra::Map<int, int, Negate>>(Negate{}, "map");
  auto& sink = graph.Add<CountingSink<int>>("sink");
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(map.input());
  map.AddSubscriber(sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  std::vector<std::string> captures;
  int steps = 0;
  while (driver.Step()) {
    if (++steps % 5 == 0) {
      captures.push_back(CanonicalCapture(metadata::CaptureSnapshot(graph)));
    }
  }
  captures.push_back(CanonicalCapture(metadata::CaptureSnapshot(graph)));
  EXPECT_EQ(sink.count(), 2000u);
  return captures;
}

TEST(ObservabilityTest, MidRunCaptureIsDeterministicUnderVirtualTime) {
  const std::vector<std::string> first = StepAndCapture();
  const std::vector<std::string> second = StepAndCapture();
  // Genuinely mid-run: more than just the final quiescent state observed.
  ASSERT_GT(first.size(), 2u);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace pipes
