// Tests for the optimizer: rewrite rules, cost model, alternatives,
// physical instantiation, and multi-query sharing — including end-to-end
// CQL execution against vector-backed tuple streams.

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/optimizer/cost.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/physical.h"
#include "src/optimizer/plan_manager.h"
#include "src/optimizer/rules.h"
#include "src/scheduler/scheduler.h"

namespace pipes::optimizer {
namespace {

using relational::BinaryOp;
using relational::MakeBinary;
using relational::MakeField;
using relational::MakeLiteral;
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Schema BidSchema() {
  return Schema({{"auction", ValueType::kInt},
                 {"bidder", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

Schema PersonSchema() {
  return Schema({{"id", ValueType::kInt}, {"city", ValueType::kString}});
}

StreamElement<Tuple> BidAt(Timestamp t, std::int64_t auction,
                           std::int64_t bidder, double price) {
  return StreamElement<Tuple>::Point(
      Tuple{Value(auction), Value(bidder), Value(price)}, t);
}

StreamElement<Tuple> PersonAt(Timestamp t, std::int64_t id,
                              const char* city) {
  return StreamElement<Tuple>::Point(Tuple{Value(id), Value(city)}, t);
}

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(Rules, MergeFilters) {
  auto scan = ScanOp("s", BidSchema(), WindowSpec{});
  auto p1 = MakeBinary(BinaryOp::kGt, MakeField(2, "price"),
                       MakeLiteral(Value(10.0)));
  auto p2 = MakeBinary(BinaryOp::kLt, MakeField(0, "auction"),
                       MakeLiteral(Value(std::int64_t{5})));
  auto plan = FilterOp(FilterOp(scan, p1), p2);
  auto rules = DefaultRules();
  auto rewritten = Rewrite(plan, rules);
  EXPECT_EQ(rewritten->kind, LogicalOp::Kind::kFilter);
  EXPECT_EQ(rewritten->children[0]->kind, LogicalOp::Kind::kStreamScan);
}

TEST(Rules, ExtractJoinKeysAndPushSidePredicates) {
  auto left = ScanOp("bids", BidSchema().WithPrefix("b"), WindowSpec{});
  auto right = ScanOp("persons", PersonSchema().WithPrefix("p"),
                      WindowSpec{});
  auto join = JoinOp(left, right, {}, nullptr);
  // b.bidder = p.id AND b.price > 10 AND p.city = 'Paris'
  auto key_eq = MakeBinary(BinaryOp::kEq, MakeField(1, "b.bidder"),
                           MakeField(3, "p.id"));
  auto left_only = MakeBinary(BinaryOp::kGt, MakeField(2, "b.price"),
                              MakeLiteral(Value(10.0)));
  auto right_only = MakeBinary(BinaryOp::kEq, MakeField(4, "p.city"),
                               MakeLiteral(Value("Paris")));
  auto predicate = MakeBinary(
      BinaryOp::kAnd, MakeBinary(BinaryOp::kAnd, key_eq, left_only),
      right_only);
  auto plan = FilterOp(join, predicate);

  auto rules = DefaultRules();
  auto rewritten = Rewrite(plan, rules);

  ASSERT_EQ(rewritten->kind, LogicalOp::Kind::kJoin);
  ASSERT_EQ(rewritten->equi_keys.size(), 1u);
  EXPECT_EQ(rewritten->equi_keys[0].first, 1u);   // b.bidder
  EXPECT_EQ(rewritten->equi_keys[0].second, 0u);  // p.id in right schema
  EXPECT_EQ(rewritten->predicate, nullptr);
  // Side predicates pushed below the join.
  EXPECT_EQ(rewritten->children[0]->kind, LogicalOp::Kind::kFilter);
  EXPECT_EQ(rewritten->children[1]->kind, LogicalOp::Kind::kFilter);
}

TEST(Rules, PushFilterThroughProject) {
  auto scan = ScanOp("s", BidSchema(), WindowSpec{});
  auto project = ProjectOp(
      scan, {MakeField(2, "price"), MakeField(0, "auction")},
      {"price", "auction"});
  auto pred = MakeBinary(BinaryOp::kGt, MakeField(0, "price"),
                         MakeLiteral(Value(10.0)));
  auto plan = FilterOp(project, pred);
  auto rules = DefaultRules();
  auto rewritten = Rewrite(plan, rules);
  ASSERT_EQ(rewritten->kind, LogicalOp::Kind::kProject);
  ASSERT_EQ(rewritten->children[0]->kind, LogicalOp::Kind::kFilter);
  // The pushed predicate references the scan's field 2.
  EXPECT_NE(rewritten->children[0]->predicate->ToString().find("price"),
            std::string::npos);
}

TEST(Cost, FilterPushdownIsCheaper) {
  CostModel model;
  auto scan = ScanOp("s", BidSchema(), WindowSpec{});
  auto pred = MakeBinary(BinaryOp::kGt, MakeField(2, "price"),
                         MakeLiteral(Value(10.0)));
  auto cross = JoinOp(scan, scan, {}, nullptr);
  auto filter_above = FilterOp(cross, pred);
  auto filter_below = JoinOp(FilterOp(scan, pred), scan, {}, nullptr);
  EXPECT_LT(model.Estimate(filter_below).cost,
            model.Estimate(filter_above).cost);
}

TEST(Cost, SharedSubplanIsFree) {
  CostModel model;
  auto scan = ScanOp("s", BidSchema(), WindowSpec{});
  auto pred = MakeBinary(BinaryOp::kGt, MakeField(2, "price"),
                         MakeLiteral(Value(10.0)));
  auto plan = FilterOp(scan, pred);
  std::set<std::string> shared = {plan->Signature()};
  EXPECT_GT(model.Estimate(plan).cost, 0.0);
  EXPECT_DOUBLE_EQ(model.Estimate(plan, &shared).cost, 0.0);
}

TEST(Optimizer, EnumeratesJoinOrderAlternatives) {
  cql::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterStream("a", BidSchema()).ok());
  ASSERT_TRUE(catalog.RegisterStream("b", BidSchema()).ok());
  ASSERT_TRUE(catalog.RegisterStream("c", BidSchema()).ok());
  auto plan = cql::Compile(
      "SELECT 1 AS one FROM a [RANGE 1 SECONDS], b [RANGE 1 SECONDS], c "
      "[RANGE 1 SECONDS] WHERE a.auction = b.auction AND b.bidder = "
      "c.bidder",
      catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  Optimizer optimizer(&catalog);
  auto alternatives = optimizer.EnumerateAlternatives(plan->plan);
  // 3 leaves -> up to 6 join orders (plus the original), deduped.
  EXPECT_GE(alternatives.size(), 4u);

  auto result = optimizer.Optimize(plan->plan);
  EXPECT_GE(result.alternatives_considered, 4u);
  ASSERT_NE(result.plan, nullptr);
  EXPECT_GT(result.cost, 0.0);
}

class EndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    bid_source_ = &graph_.Add<VectorSource<Tuple>>(
        std::vector<StreamElement<Tuple>>{
            BidAt(1000, 1, 10, 25.0), BidAt(2000, 2, 11, 5.0),
            BidAt(3000, 1, 12, 40.0), BidAt(4000, 2, 10, 15.0)},
        "bids");
    person_source_ = &graph_.Add<VectorSource<Tuple>>(
        std::vector<StreamElement<Tuple>>{PersonAt(0, 10, "Paris"),
                                          PersonAt(0, 11, "Oakland"),
                                          PersonAt(0, 12, "Marburg")},
        "persons");
    ASSERT_TRUE(catalog_
                    .RegisterStream("bids", BidSchema(), bid_source_,
                                    /*rate_hint=*/100.0)
                    .ok());
    ASSERT_TRUE(catalog_
                    .RegisterStream("persons", PersonSchema(),
                                    person_source_, /*rate_hint=*/1.0)
                    .ok());
  }

  QueryGraph graph_;
  cql::Catalog catalog_;
  VectorSource<Tuple>* bid_source_ = nullptr;
  VectorSource<Tuple>* person_source_ = nullptr;
};

TEST_F(EndToEnd, FilterProjectQueryProducesExpectedTuples) {
  PlanManager manager(&graph_, &catalog_);
  auto installed = manager.InstallQuery(
      "SELECT price, auction FROM bids WHERE price > 20");
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  installed->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_DOUBLE_EQ(sink.elements()[0].payload.field(0).AsDouble(), 25.0);
  EXPECT_EQ(sink.elements()[0].payload.field(1).AsInt(), 1);
  EXPECT_DOUBLE_EQ(sink.elements()[1].payload.field(0).AsDouble(), 40.0);
}

TEST_F(EndToEnd, WindowedGroupedAggregateQuery) {
  PlanManager manager(&graph_, &catalog_);
  auto installed = manager.InstallQuery(
      "SELECT auction, MAX(price) AS top FROM bids [RANGE 10 SECONDS] "
      "GROUP BY auction");
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  installed->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_FALSE(sink.elements().empty());
  // The max over auction 1 must reach 40 in some segment.
  double best_auction1 = 0;
  for (const auto& e : sink.elements()) {
    if (e.payload.field(0).AsInt() == 1) {
      best_auction1 =
          std::max(best_auction1, e.payload.field(1).AsDouble());
    }
  }
  EXPECT_DOUBLE_EQ(best_auction1, 40.0);
}

TEST_F(EndToEnd, StreamJoinQueryMatchesBiddersToCities) {
  PlanManager manager(&graph_, &catalog_);
  auto installed = manager.InstallQuery(
      "SELECT b.price, p.city FROM bids [RANGE 1 HOURS] AS b, persons "
      "[UNBOUNDED] AS p WHERE b.bidder = p.id AND b.price > 20");
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  installed->output->AddSubscriber(sink.input());
  Drain(graph_);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].payload.field(1).AsString(), "Paris");
  EXPECT_EQ(sink.elements()[1].payload.field(1).AsString(), "Marburg");
}

TEST_F(EndToEnd, MultiQuerySharingReusesSubplans) {
  PlanManager manager(&graph_, &catalog_);
  auto first = manager.InstallQuery(
      "SELECT auction, MAX(price) AS top FROM bids [RANGE 10 SECONDS] "
      "GROUP BY auction");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->operators_reused, 0u);
  EXPECT_GT(first->operators_created, 0u);

  // The same query again: everything shared, nothing new built.
  auto second = manager.InstallQuery(
      "SELECT auction, MAX(price) AS top FROM bids [RANGE 10 SECONDS] "
      "GROUP BY auction");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->operators_created, 0u);
  EXPECT_GT(second->operators_reused, 0u);
  EXPECT_EQ(second->output, first->output);

  // An overlapping query shares the windowed scan at least.
  auto third = manager.InstallQuery(
      "SELECT auction, COUNT(*) AS n FROM bids [RANGE 10 SECONDS] GROUP BY "
      "auction");
  ASSERT_TRUE(third.ok());
  EXPECT_GT(third->operators_reused, 0u);

  // Both query outputs deliver to their sinks from the shared plan.
  auto& sink1 = graph_.Add<CollectorSink<Tuple>>("sink1");
  auto& sink3 = graph_.Add<CollectorSink<Tuple>>("sink3");
  first->output->AddSubscriber(sink1.input());
  third->output->AddSubscriber(sink3.input());
  Drain(graph_);
  EXPECT_FALSE(sink1.elements().empty());
  EXPECT_FALSE(sink3.elements().empty());
}

TEST_F(EndToEnd, SharingDisabledBuildsEverythingTwice) {
  PlanManager manager(&graph_, &catalog_, /*sharing=*/false);
  auto first =
      manager.InstallQuery("SELECT price FROM bids WHERE price > 20");
  auto second =
      manager.InstallQuery("SELECT price FROM bids WHERE price > 20");
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(second->operators_reused, 0u);
  EXPECT_EQ(second->operators_created, first->operators_created);
  EXPECT_NE(second->output, first->output);
}

TEST_F(EndToEnd, InstallFailsForUnknownStream) {
  PlanManager manager(&graph_, &catalog_);
  EXPECT_FALSE(manager.InstallQuery("SELECT * FROM nosuch").ok());
}

}  // namespace
}  // namespace pipes::optimizer
