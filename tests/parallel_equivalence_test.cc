// Property tests for keyed data parallelism: a plan replicated through
// `Partition` / `Merge` (src/core/parallel.h, src/algebra/parallel.h,
// dsl::Parallel) must be *element-for-element* equivalent to its
// single-replica form — same multiset of (start, end, payload), with the
// merged output globally start-ordered. Randomized keys, skew, batch sizes
// and scheduling orders stress the split/merge watermark machinery; a
// ThreadScheduler variant drives each replica chain on its own worker
// (exercised under TSan in CI).

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/join.h"
#include "src/algebra/parallel.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/parallel.h"
#include "src/core/pipeline.h"
#include "src/core/sink.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/scheduler.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using namespace pipes::algebra;  // NOLINT: test-local convenience
using namespace pipes::testing;  // NOLINT: test-local convenience

// --- Compile-time contract: what may and may not be replicated ------------

struct IdentityKey {
  int operator()(int v) const { return v; }
};
using GroupedCountOp =
    GroupedAggregate<int, CountAgg<int>, IdentityKey, IdentityKey>;

static_assert(KeyPartitionable<GroupedCountOp>::value,
              "grouped aggregation decomposes by key");
static_assert(KeyPartitionable<Distinct<int>>::value,
              "distinct decomposes by payload");
static_assert(KeyPartitionable<PartitionedWindow<int, IdentityKey>>::value,
              "partitioned windows decompose by key");
static_assert(
    !KeyPartitionable<TemporalAggregate<int, SumAgg<int>, IdentityKey>>::value,
    "a scalar aggregate needs every element — replication must be refused");
static_assert(!KeyPartitionable<TimeWindow<int>>::value,
              "windows without keyed state are not in the safe list");
static_assert(!KeyPartitionable<Union<int>>::value,
              "union is not in the safe list");

static_assert(dsl::IsKeyPartitionableSpec<dsl::DistinctSpec>::value);
static_assert(!dsl::IsKeyPartitionableSpec<dsl::TimeWindowSpec>::value);
static_assert(!dsl::IsKeyPartitionableSpec<dsl::CountWindowSpec>::value);

// --- Helpers ---------------------------------------------------------------

/// Drives the graph with a randomized strategy and batch size derived from
/// the seed, so different seeds exercise different interleavings.
void DrainRandomized(QueryGraph& graph, std::uint64_t seed) {
  scheduler::RandomStrategy strategy(seed);
  scheduler::SingleThreadScheduler driver(graph, strategy,
                                          /*batch_size=*/1 + seed % 17);
  driver.RunToCompletion();
}

template <typename T>
void ExpectStartOrdered(const std::vector<StreamElement<T>>& elements) {
  for (std::size_t i = 1; i < elements.size(); ++i) {
    ASSERT_LE(elements[i - 1].start(), elements[i].start())
        << "merged output not ordered at index " << i;
  }
}

/// Element-for-element equivalence: equal starts may interleave differently
/// across replicas (the merge only fixes (start, arrival) order), so compare
/// the full (start, end, payload) multisets.
template <typename T>
std::vector<std::tuple<Timestamp, Timestamp, T>> SortedTriples(
    const std::vector<StreamElement<T>>& elements) {
  std::vector<std::tuple<Timestamp, Timestamp, T>> triples;
  triples.reserve(elements.size());
  for (const StreamElement<T>& e : elements) {
    triples.emplace_back(e.start(), e.end(), e.payload);
  }
  std::sort(triples.begin(), triples.end());
  return triples;
}

template <typename T>
void ExpectSameElements(const std::vector<StreamElement<T>>& parallel,
                        const std::vector<StreamElement<T>>& single) {
  EXPECT_EQ(SortedTriples(parallel), SortedTriples(single));
}

/// Canonical form for operators whose output fragmentation is
/// pacing-dependent (`Distinct` may release [4,6)+[6,8) or the coalesced
/// [4,8) depending on when watermarks land): per payload, the coalesced
/// union of validity intervals. Two outputs with equal coalesced runs are
/// snapshot-identical at every instant.
template <typename T>
std::vector<std::tuple<T, Timestamp, Timestamp>> CoalescedRuns(
    const std::vector<StreamElement<T>>& elements) {
  std::map<T, std::vector<TimeInterval>> by_payload;
  for (const StreamElement<T>& e : elements) {
    by_payload[e.payload].push_back(e.interval);
  }
  std::vector<std::tuple<T, Timestamp, Timestamp>> runs;
  for (auto& [payload, intervals] : by_payload) {
    std::sort(intervals.begin(), intervals.end(),
              [](const TimeInterval& a, const TimeInterval& b) {
                return a.start < b.start;
              });
    TimeInterval current = intervals.front();
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].start <= current.end) {
        current.end = std::max(current.end, intervals[i].end);
      } else {
        runs.emplace_back(payload, current.start, current.end);
        current = intervals[i];
      }
    }
    runs.emplace_back(payload, current.start, current.end);
  }
  return runs;
}

class ParallelEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

// --- Partitioned operator vs single replica --------------------------------

TEST_P(ParallelEquivalence, GroupedCountMatchesSingleReplica) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  RandomStreamOptions options;
  // Small domains make hot keys: all-equal payloads route everything to one
  // replica, the worst skew the contract has to survive.
  options.payload_domain = 1 + static_cast<std::int64_t>(seed % 8);
  const auto input = RandomIntStream(rng, options);
  auto key = [](int v) { return v % 5; };
  auto value = [](int v) { return v; };
  using Op = GroupedAggregate<int, CountAgg<int>, decltype(key),
                              decltype(value)>;
  using Out = Op::Output;

  std::vector<StreamElement<Out>> single;
  {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto& agg = graph.Add<Op>(key, value);
    auto& sink = graph.Add<CollectorSink<Out>>();
    source.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  for (std::size_t n : {2u, 3u, 4u}) {
    SCOPED_TRACE("replicas=" + std::to_string(n));
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(
        input, "source", /*batch_size=*/1 + seed % 13);
    auto chain = MakeKeyedParallel<Op>(graph, n, key, key, value);
    auto& sink = graph.Add<CollectorSink<Out>>();
    source.AddSubscriber(*chain.input);
    chain.output->AddSubscriber(sink.input());
    DrainRandomized(graph, seed + n);

    ExpectStartOrdered(sink.elements());
    ExpectSameElements(sink.elements(), single);
    // Routing is conservative: every input element lands in exactly one
    // partition.
    std::uint64_t routed = 0;
    for (const std::uint64_t c : chain.splitters[0]->PartitionCounts()) {
      routed += c;
    }
    EXPECT_EQ(routed, input.size());
  }
}

TEST_P(ParallelEquivalence, DistinctMatchesSingleReplica) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  RandomStreamOptions options;
  options.payload_domain = 4;  // many duplicates per key
  const auto input = RandomIntStream(rng, options);
  auto key = [](int v) { return v; };  // partition by payload == the group

  std::vector<StreamElement<int>> single;
  {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto& distinct = graph.Add<Distinct<int>>();
    auto& sink = graph.Add<CollectorSink<int>>();
    source.AddSubscriber(distinct.input());
    distinct.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  for (std::size_t n : {2u, 3u}) {
    SCOPED_TRACE("replicas=" + std::to_string(n));
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(
        input, "source", /*batch_size=*/1 + seed % 7);
    auto chain = MakeKeyedParallel<Distinct<int>>(graph, n, key);
    auto& sink = graph.Add<CollectorSink<int>>();
    source.AddSubscriber(*chain.input);
    chain.output->AddSubscriber(sink.input());
    DrainRandomized(graph, seed + n);

    ExpectStartOrdered(sink.elements());
    EXPECT_EQ(CoalescedRuns(sink.elements()), CoalescedRuns(single));
  }
}

TEST_P(ParallelEquivalence, PartitionedWindowMatchesSingleReplica) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  RandomStreamOptions options;
  options.max_duration = 1;  // raw stream, windows assign validity
  const auto input = RandomIntStream(rng, options);
  auto key = [](int v) { return v % 3; };
  const std::size_t rows = 1 + seed % 4;
  using Op = PartitionedWindow<int, decltype(key)>;

  std::vector<StreamElement<int>> single;
  {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto& window = graph.Add<Op>(key, rows);
    auto& sink = graph.Add<CollectorSink<int>>();
    source.AddSubscriber(window.input());
    window.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  for (std::size_t n : {2u, 4u}) {
    SCOPED_TRACE("replicas=" + std::to_string(n));
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(
        input, "source", /*batch_size=*/1 + seed % 11);
    auto chain = MakeKeyedParallel<Op>(graph, n, key, key, rows);
    auto& sink = graph.Add<CollectorSink<int>>();
    source.AddSubscriber(*chain.input);
    chain.output->AddSubscriber(sink.input());
    DrainRandomized(graph, seed + n);

    ExpectStartOrdered(sink.elements());
    ExpectSameElements(sink.elements(), single);
  }
}

TEST_P(ParallelEquivalence, HashJoinMatchesSingleReplica) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  RandomStreamOptions options;
  options.count = 120;
  options.payload_domain = 5;  // frequent matches
  const auto left = RandomIntStream(rng, options);
  const auto right = RandomIntStream(rng, options);
  auto identity = [](int v) { return v; };
  auto combine = [](int a, int b) { return a * 100 + b; };

  std::vector<StreamElement<int>> single;
  {
    QueryGraph graph;
    auto& sl = graph.Add<VectorSource<int>>(left);
    auto& sr = graph.Add<VectorSource<int>>(right);
    auto& join =
        graph.Add(MakeHashJoin<int, int>(identity, identity, combine));
    auto& sink = graph.Add<CollectorSink<int>>();
    sl.AddSubscriber(join.left());
    sr.AddSubscriber(join.right());
    join.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  for (std::size_t n : {2u, 3u}) {
    SCOPED_TRACE("replicas=" + std::to_string(n));
    QueryGraph graph;
    auto& sl = graph.Add<VectorSource<int>>(
        left, "left", /*batch_size=*/1 + seed % 9);
    auto& sr = graph.Add<VectorSource<int>>(
        right, "right", /*batch_size=*/1 + (seed + 1) % 9);
    auto chain = MakeParallelHashJoin<int, int>(graph, n, identity, identity,
                                                combine);
    auto& sink = graph.Add<CollectorSink<int>>();
    sl.AddSubscriber(*chain.left);
    sr.AddSubscriber(*chain.right);
    chain.output->AddSubscriber(sink.input());
    DrainRandomized(graph, seed + n);

    ExpectStartOrdered(sink.elements());
    ExpectSameElements(sink.elements(), single);
  }
}

// --- dsl::Parallel ---------------------------------------------------------

TEST_P(ParallelEquivalence, DslParallelMatchesManualSingleReplica) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  const auto input = RandomIntStream(rng);
  auto key = [](int v) { return v % 4; };
  auto value = [](int v) { return v; };
  using Out = std::pair<int, std::uint64_t>;

  std::vector<StreamElement<Out>> single;
  {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto& agg = graph.Add<GroupedAggregate<int, CountAgg<int>, decltype(key),
                                           decltype(value)>>(key, value);
    auto& sink = graph.Add<CollectorSink<Out>>();
    source.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  QueryGraph graph;
  auto& sink =
      dsl::From(graph, std::make_unique<VectorSource<int>>(input)) |
      dsl::Parallel(3, key, dsl::GroupBy<CountAgg<int>>(key, value)) |
      dsl::Into(std::make_unique<CollectorSink<Out>>());
  DrainRandomized(graph, seed + 1);

  ExpectStartOrdered(sink.elements());
  ExpectSameElements(sink.elements(), single);
}

// --- ThreadScheduler: replica chains on their own workers ------------------

// Each replica's input buffer is pinned to its own worker, so replica
// operators genuinely run concurrently — under TSan this validates the
// cross-thread contract (ConcurrentBuffer edges, relaxed skew counters,
// single-worker merge drive).
TEST_P(ParallelEquivalence, ThreadSchedulerDrivesPinnedReplicas) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  RandomStreamOptions options;
  options.count = 400;
  const auto input = RandomIntStream(rng, options);
  auto key = [](int v) { return v; };
  auto value = [](int v) { return v; };
  using Op = GroupedAggregate<int, SumAgg<int>, decltype(key),
                              decltype(value)>;
  using Out = Op::Output;

  std::vector<StreamElement<Out>> single;
  {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto& agg = graph.Add<Op>(key, value);
    auto& sink = graph.Add<CollectorSink<Out>>();
    source.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  const std::size_t replicas = 4;
  // More replicas than workers (3 workers → replicas share) and one worker
  // per replica (5 workers) both have to produce identical output.
  for (int num_threads : {3, 5}) {
    SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(
        input, "source", /*batch_size=*/1 + seed % 13);
    auto chain = MakeKeyedParallel<Op>(graph, replicas, key, key, value);
    auto& sink = graph.Add<CollectorSink<Out>>();
    source.AddSubscriber(*chain.input);
    chain.output->AddSubscriber(sink.input());

    scheduler::ThreadScheduler driver(
        graph, num_threads,
        [] { return std::make_unique<scheduler::RoundRobinStrategy>(); },
        chain.PinnedAssignment(graph, num_threads),
        /*batch_size=*/32);
    driver.RunToCompletion();

    ExpectStartOrdered(sink.elements());
    ExpectSameElements(sink.elements(), single);
  }
}

TEST_P(ParallelEquivalence, ThreadSchedulerDrivesPinnedParallelJoin) {
  const std::uint64_t seed = GetParam();
  Random rng(seed);
  RandomStreamOptions options;
  options.count = 150;
  options.payload_domain = 6;
  const auto left = RandomIntStream(rng, options);
  const auto right = RandomIntStream(rng, options);
  auto identity = [](int v) { return v; };
  auto combine = [](int a, int b) { return a * 100 + b; };

  std::vector<StreamElement<int>> single;
  {
    QueryGraph graph;
    auto& sl = graph.Add<VectorSource<int>>(left);
    auto& sr = graph.Add<VectorSource<int>>(right);
    auto& join =
        graph.Add(MakeHashJoin<int, int>(identity, identity, combine));
    auto& sink = graph.Add<CollectorSink<int>>();
    sl.AddSubscriber(join.left());
    sr.AddSubscriber(join.right());
    join.AddSubscriber(sink.input());
    DrainRandomized(graph, seed);
    single = sink.elements();
  }

  QueryGraph graph;
  auto& sl = graph.Add<VectorSource<int>>(left, "left", /*batch_size=*/4);
  auto& sr = graph.Add<VectorSource<int>>(right, "right", /*batch_size=*/4);
  auto chain =
      MakeParallelHashJoin<int, int>(graph, /*n=*/3, identity, identity,
                                     combine);
  auto& sink = graph.Add<CollectorSink<int>>();
  sl.AddSubscriber(*chain.left);
  sr.AddSubscriber(*chain.right);
  chain.output->AddSubscriber(sink.input());

  const int num_threads = 4;
  scheduler::ThreadScheduler driver(
      graph, num_threads,
      [] { return std::make_unique<scheduler::RoundRobinStrategy>(); },
      chain.PinnedAssignment(graph, num_threads),
      /*batch_size=*/16);
  driver.RunToCompletion();

  ExpectStartOrdered(sink.elements());
  ExpectSameElements(sink.elements(), single);
}

// --- Heartbeat broadcast ---------------------------------------------------

// All elements route to one partition; the idle partition must still see
// progress (heartbeats are broadcast) and end-of-stream.
TEST(PartitionTest, HeartbeatsReachIdlePartitions) {
  QueryGraph graph;
  std::vector<StreamElement<int>> input;
  for (int i = 0; i < 10; ++i) {
    input.push_back(StreamElement<int>(7, i * 2, i * 2 + 5));
  }
  auto& source = graph.Add<VectorSource<int>>(input);
  auto constant_key = [](int) { return 0; };
  auto& split =
      graph.Add<Partition<int, decltype(constant_key)>>(2, constant_key);
  auto& busy = graph.Add<CollectorSink<int>>("busy");
  auto& idle = graph.Add<CollectorSink<int>>("idle");
  source.AddSubscriber(split.input());
  const std::size_t target = split.PartitionIndex(7);
  split.AddSubscriber(target, busy.input());
  split.AddSubscriber(1 - target, idle.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  EXPECT_EQ(busy.elements().size(), input.size());
  EXPECT_TRUE(idle.elements().empty());
  // The idle side's clock advanced with the busy side's elements and its
  // port reached end-of-stream — replicas behind it purge state and finish.
  EXPECT_TRUE(idle.input().done());
  EXPECT_EQ(idle.input().watermark(), kMaxTimestamp);
  EXPECT_EQ(split.partition_elements(target), input.size());
  EXPECT_EQ(split.partition_elements(1 - target), 0u);
}

// --- Skew metric through the snapshot layer --------------------------------

TEST(PartitionTest, SnapshotSurfacesPartitionSkew) {
  QueryGraph graph;
  Random rng(42);
  RandomStreamOptions options;
  options.payload_domain = 2;  // two keys onto three partitions: skewed
  const auto input = RandomIntStream(rng, options);
  auto& source = graph.Add<VectorSource<int>>(input);
  auto key = [](int v) { return v; };
  auto chain = MakeKeyedParallel<Distinct<int>>(graph, 3, key);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(*chain.input);
  chain.output->AddSubscriber(sink.input());
  DrainRandomized(graph, 42);

  const metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(graph);
  const metadata::NodeSnapshot* split = snap.FindNode("partition");
  ASSERT_NE(split, nullptr);
  ASSERT_EQ(split->partition_out.size(), 3u);
  std::uint64_t routed = 0;
  for (const std::uint64_t c : split->partition_out) routed += c;
  EXPECT_EQ(routed, input.size());
  // Two keys cannot cover three partitions: max/mean skew is at least 3/2.
  EXPECT_GE(split->PartitionSkew(), 1.5);
  // Non-splitter nodes carry no partition counts.
  const metadata::NodeSnapshot* merge = snap.FindNode("merge");
  ASSERT_NE(merge, nullptr);
  EXPECT_TRUE(merge->partition_out.empty());

  // The skew vector round-trips through the JSON exporter.
  const auto parsed = metadata::SnapshotFromJson(metadata::ToJson(snap));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(*parsed, snap);

  // ...and shows up in the DOT monitoring overlay.
  const std::string dot = metadata::ToDot(snap);
  EXPECT_NE(dot.find("skew"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelEquivalence,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace pipes
