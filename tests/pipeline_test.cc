// Tests for the fluent pipeline-construction API (src/core/pipeline.h) and
// the subscription/graph API it is sugar over: `Source::AddSubscriber`,
// `InputPort::SubscribeTo`, and the unified `QueryGraph::Add` overload set.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/algebra/aggregate.h"
#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/pipeline.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace pipes {
namespace {

std::vector<StreamElement<int>> MakeInput(int n) {
  std::vector<StreamElement<int>> input;
  input.reserve(n);
  for (int i = 0; i < n; ++i) {
    input.push_back(StreamElement<int>::Point(i, i));
  }
  return input;
}

struct KeepOdd {
  bool operator()(int v) const { return v % 2 != 0; }
};
struct Double {
  int operator()(int v) const { return 2 * v; }
};

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(PipelineTest, ChainMatchesManualConstruction) {
  // Manual construction, the reference.
  QueryGraph manual;
  {
    auto& source = manual.Add<VectorSource<int>>(MakeInput(500), "src", 16);
    auto& filter = manual.Add<algebra::Filter<int, KeepOdd>>(KeepOdd{});
    auto& map = manual.Add<algebra::Map<int, int, Double>>(Double{});
    auto& window = manual.Add<algebra::TimeWindow<int>>(50);
    auto& sink = manual.Add<CollectorSink<int>>();
    source.AddSubscriber(filter.input());
    filter.AddSubscriber(map.input());
    map.AddSubscriber(window.input());
    window.AddSubscriber(sink.input());
  }
  Drain(manual);
  const auto* manual_sink =
      dynamic_cast<CollectorSink<int>*>(manual.nodes().back());
  ASSERT_NE(manual_sink, nullptr);

  // Same query through the DSL.
  QueryGraph fluent;
  auto& sink = dsl::From(fluent,
                         std::make_unique<VectorSource<int>>(MakeInput(500),
                                                             "src", 16))
             | dsl::Filter(KeepOdd{})
             | dsl::Map(Double{})
             | dsl::TimeWindow(50)
             | dsl::Into(std::make_unique<CollectorSink<int>>());
  EXPECT_EQ(fluent.nodes().size(), 5u);
  Drain(fluent);

  EXPECT_EQ(sink.elements(), manual_sink->elements());
  EXPECT_FALSE(sink.elements().empty());
}

TEST(PipelineTest, MapDeducesOutputType) {
  QueryGraph graph;
  auto& sink =
      dsl::From(graph, std::make_unique<VectorSource<int>>(MakeInput(10)))
      | dsl::Map([](int v) { return v * 0.5; })  // int -> double
      | dsl::Into(std::make_unique<CollectorSink<double>>());
  Drain(graph);
  ASSERT_EQ(sink.elements().size(), 10u);
  EXPECT_DOUBLE_EQ(sink.elements()[3].payload, 1.5);
}

TEST(PipelineTest, AverageAggregates) {
  QueryGraph graph;
  auto& sink =
      dsl::From(graph, std::make_unique<VectorSource<int>>(MakeInput(100)))
      | dsl::TimeWindow(10)
      | dsl::Average([](int v) { return static_cast<double>(v); })
      | dsl::Into(std::make_unique<CollectorSink<double>>());
  Drain(graph);
  ASSERT_FALSE(sink.elements().empty());
  // Temporal aggregation: at instant 9 the window [i, i+10) of elements
  // 0..9 is alive, so the result valid at 9 is their average.
  bool found = false;
  for (const StreamElement<double>& e : sink.elements()) {
    if (e.start() <= 9 && 9 < e.end()) {
      EXPECT_DOUBLE_EQ(e.payload, 4.5);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(PipelineTest, FanOutFromSharedStage) {
  QueryGraph graph;
  auto stage =
      dsl::From(graph, std::make_unique<VectorSource<int>>(MakeInput(100)))
      | dsl::Filter(KeepOdd{}, "shared");
  auto& raw = stage | dsl::Into(std::make_unique<CollectorSink<int>>());
  auto& doubled = stage | dsl::Map(Double{})
                        | dsl::Into(std::make_unique<CollectorSink<int>>());
  Drain(graph);
  EXPECT_EQ(raw.elements().size(), 50u);
  EXPECT_EQ(doubled.elements().size(), 50u);
  EXPECT_EQ(doubled.elements()[0].payload, 2 * raw.elements()[0].payload);
}

TEST(PipelineTest, IntoPortWiresManualOperators) {
  // A union built manually, both inputs fed by DSL chains.
  QueryGraph graph;
  auto& u = graph.Add<algebra::Union<int>>();
  dsl::From(graph, std::make_unique<VectorSource<int>>(MakeInput(10), "a"))
      | dsl::Into(u.left());
  dsl::From(graph, std::make_unique<VectorSource<int>>(MakeInput(10), "b"))
      | dsl::Into(u.right());
  auto& sink = dsl::From(graph, u)
             | dsl::Into(std::make_unique<CollectorSink<int>>());
  Drain(graph);
  EXPECT_EQ(sink.elements().size(), 20u);
}

TEST(PipelineTest, DetachInsertsSchedulableBuffer) {
  QueryGraph graph;
  auto& sink =
      dsl::From(graph, std::make_unique<VectorSource<int>>(MakeInput(50)))
      | dsl::Detach("boundary")
      | dsl::Into(std::make_unique<CollectorSink<int>>());
  bool found_buffer = false;
  for (const Node* node : graph.nodes()) {
    if (node->name() == "boundary") {
      EXPECT_TRUE(node->is_active());
      found_buffer = true;
    }
  }
  EXPECT_TRUE(found_buffer);
  Drain(graph);
  EXPECT_EQ(sink.elements().size(), 50u);
}

// --- The subscription API the DSL is sugar over ----------------------------

TEST(SubscriptionApiTest, SubscribeToMirrorsAddSubscriber) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(MakeInput(5), "src");
  auto& sink = graph.Add<CollectorSink<int>>();
  // The port-side spelling: subscribe this input to that source.
  sink.input().SubscribeTo(source);
  ASSERT_EQ(source.downstream().size(), 1u);
  EXPECT_EQ(source.downstream()[0], &sink);
  Drain(graph);
  EXPECT_EQ(sink.elements().size(), 5u);
}

TEST(GraphApiTest, AddAcceptsConstructedNodes) {
  QueryGraph graph;
  // Emplace form.
  auto& a = graph.Add<VectorSource<int>>(MakeInput(3), "emplaced");
  // unique_ptr form (one overload set, no separate AddNode).
  auto& b = graph.Add(std::make_unique<CollectorSink<int>>("owned"));
  a.AddSubscriber(b.input());
  EXPECT_TRUE(graph.Contains(a));
  EXPECT_TRUE(graph.Contains(b));
  EXPECT_EQ(graph.nodes().size(), 2u);

  Drain(graph);
  EXPECT_EQ(b.elements().size(), 3u);

  // Remove destroys: detach the subscription first, then Remove.
  ASSERT_TRUE(a.UnsubscribeFrom(b.input()).ok());
  ASSERT_TRUE(graph.Remove(b).ok());
  ASSERT_EQ(graph.nodes().size(), 1u);
  EXPECT_EQ(graph.nodes()[0]->name(), "emplaced");
}

}  // namespace
}  // namespace pipes
