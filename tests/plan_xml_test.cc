// Tests for XML plan persistence: round-trips of every operator kind, and
// executing a plan that was saved and reloaded.

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/optimizer/plan_manager.h"
#include "src/optimizer/plan_xml.h"
#include "src/scheduler/scheduler.h"

namespace pipes::optimizer {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

cql::Catalog MakeCatalog() {
  cql::Catalog catalog;
  PIPES_CHECK(catalog
                  .RegisterStream("bids",
                                  Schema({{"auction", ValueType::kInt},
                                          {"bidder", ValueType::kInt},
                                          {"price", ValueType::kDouble}}))
                  .ok());
  PIPES_CHECK(catalog
                  .RegisterStream("persons",
                                  Schema({{"id", ValueType::kInt},
                                          {"city", ValueType::kString}}))
                  .ok());
  return catalog;
}

void ExpectRoundTrip(const std::string& query_text) {
  cql::Catalog catalog = MakeCatalog();
  auto plan = cql::Compile(query_text, catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  const std::string xml = ToXml(plan->plan);
  auto revived = FromXml(xml);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString() << "\n" << xml;
  EXPECT_EQ((*revived)->Signature(), (plan->plan)->Signature()) << xml;
  EXPECT_EQ((*revived)->schema, (plan->plan)->schema);
  // Serialization is stable: a second trip produces identical XML.
  EXPECT_EQ(ToXml(*revived), xml);
}

TEST(PlanXml, RoundTripsScanVariants) {
  ExpectRoundTrip("SELECT * FROM bids");
  ExpectRoundTrip("SELECT * FROM bids [RANGE 10 SECONDS]");
  ExpectRoundTrip("SELECT * FROM bids [RANGE 10 SECONDS SLIDE 2 SECONDS]");
  ExpectRoundTrip("SELECT * FROM bids [ROWS 50]");
  ExpectRoundTrip("SELECT * FROM bids [UNBOUNDED]");
}

TEST(PlanXml, RoundTripsFilterProjectExpressions) {
  ExpectRoundTrip(
      "SELECT price * 2 AS twice, auction FROM bids WHERE price > 10 AND "
      "NOT (bidder = 3)");
  ExpectRoundTrip("SELECT price FROM bids WHERE bidder % 2 = 0");
}

TEST(PlanXml, RoundTripsStringLiterals) {
  ExpectRoundTrip("SELECT id FROM persons WHERE city = 'Paris'");
}

TEST(PlanXml, RoundTripsJoinGroupDistinctStreams) {
  ExpectRoundTrip(
      "SELECT b.price, p.city FROM bids [RANGE 1 MINUTES] AS b, persons "
      "[UNBOUNDED] AS p WHERE b.bidder = p.id");
  ExpectRoundTrip(
      "SELECT auction, MAX(price) AS top, COUNT(*) AS n, STDDEV(price) AS "
      "sd FROM bids [RANGE 10 MINUTES SLIDE 1 MINUTES] GROUP BY auction "
      "HAVING top > 5");
  ExpectRoundTrip("SELECT DISTINCT bidder FROM bids");
  ExpectRoundTrip("SELECT ISTREAM auction FROM bids [RANGE 1 MINUTES]");
  ExpectRoundTrip("SELECT DSTREAM auction FROM bids [RANGE 1 MINUTES]");
}

TEST(PlanXml, RoundTripsOptimizedPlans) {
  cql::Catalog catalog = MakeCatalog();
  auto plan = cql::Compile(
      "SELECT b.price, p.city FROM bids [RANGE 1 MINUTES] AS b, persons "
      "[UNBOUNDED] AS p WHERE b.bidder = p.id AND b.price > 10",
      catalog);
  ASSERT_TRUE(plan.ok());
  Optimizer optimizer(&catalog);
  auto optimized = optimizer.Optimize(plan->plan);
  const std::string xml = ToXml(optimized.plan);
  auto revived = FromXml(xml);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString() << "\n" << xml;
  EXPECT_EQ((*revived)->Signature(), optimized.plan->Signature());
}

TEST(PlanXml, ReloadedPlanExecutes) {
  QueryGraph graph;
  std::vector<StreamElement<Tuple>> input;
  for (int i = 0; i < 10; ++i) {
    input.push_back(StreamElement<Tuple>::Point(
        Tuple{Value(static_cast<std::int64_t>(i % 2)),
              Value(static_cast<std::int64_t>(i)),
              Value(static_cast<double>(i * 10))},
        i * 100));
  }
  auto& source = graph.Add<VectorSource<Tuple>>(input, "bids");
  cql::Catalog catalog;
  ASSERT_TRUE(catalog
                  .RegisterStream("bids",
                                  Schema({{"auction", ValueType::kInt},
                                          {"bidder", ValueType::kInt},
                                          {"price", ValueType::kDouble}}),
                                  &source)
                  .ok());

  auto plan =
      cql::Compile("SELECT price FROM bids WHERE price > 40", catalog);
  ASSERT_TRUE(plan.ok());
  auto revived = FromXml(ToXml(plan->plan));
  ASSERT_TRUE(revived.ok());

  PlanManager manager(&graph, &catalog);
  auto installed = manager.InstallPlan(*revived);
  ASSERT_TRUE(installed.ok()) << installed.status().ToString();
  auto& sink = graph.Add<CollectorSink<Tuple>>();
  installed->output->AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler(graph, strategy).RunToCompletion();
  EXPECT_EQ(sink.elements().size(), 5u);  // prices 50..90
}

TEST(PlanXml, RejectsMalformedDocuments) {
  EXPECT_FALSE(FromXml("").ok());
  EXPECT_FALSE(FromXml("<plan></plan>").ok());
  EXPECT_FALSE(FromXml("<plan><op kind=\"nope\"></op></plan>").ok());
  EXPECT_FALSE(FromXml("<plan><op kind=\"scan\"></op></plan>").ok());
  EXPECT_FALSE(FromXml("<plan><op kind=\"filter\"></op></plan>").ok());
  EXPECT_FALSE(FromXml("<plan><op kind=\"scan\" stream=\"s\" "
                       "window=\"NOW\"></wrong></plan>")
                   .ok());
}

TEST(PlanXml, EscapesSpecialCharacters) {
  // Predicate with < and string quotes must survive the trip.
  ExpectRoundTrip("SELECT id FROM persons WHERE id < 5 AND city <> 'a<b'");
}

}  // namespace
}  // namespace pipes::optimizer
