// Tests for the relational layer: values, tuples, schemas, expressions.

#include <vector>

#include <gtest/gtest.h>

#include "src/relational/expression.h"
#include "src/relational/schema.h"
#include "src/relational/tuple.h"
#include "src/relational/value.h"

namespace pipes::relational {
namespace {

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(std::int64_t{42}).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value(3.5).AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).AsDouble(), 3.0);  // promotion
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(Value, EqualityWithNumericPromotion) {
  EXPECT_EQ(Value(std::int64_t{3}), Value(3.0));
  EXPECT_NE(Value(std::int64_t{3}), Value(3.5));
  EXPECT_EQ(Value("x"), Value("x"));
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(std::int64_t{0}));
}

TEST(Value, HashConsistentWithPromotionEquality) {
  EXPECT_EQ(Value(std::int64_t{7}).Hash(), Value(7.0).Hash());
}

TEST(Value, Ordering) {
  EXPECT_LT(Value(std::int64_t{1}), Value(2.5));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value::Null(), Value(std::int64_t{0}));
}

TEST(Value, Truthiness) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_TRUE(Value(std::int64_t{1}).Truthy());
  EXPECT_FALSE(Value(0.0).Truthy());
  EXPECT_TRUE(Value(true).Truthy());
}

TEST(Tuple, FieldsConcatProject) {
  Tuple t{Value(std::int64_t{1}), Value("x"), Value(2.5)};
  EXPECT_EQ(t.arity(), 3u);
  EXPECT_EQ(t.field(1).AsString(), "x");

  Tuple u{Value(true)};
  Tuple cat = t.Concat(u);
  EXPECT_EQ(cat.arity(), 4u);
  EXPECT_TRUE(cat.field(3).AsBool());

  Tuple proj = t.Project({2, 0});
  EXPECT_EQ(proj.arity(), 2u);
  EXPECT_DOUBLE_EQ(proj.field(0).AsDouble(), 2.5);
  EXPECT_EQ(proj.field(1).AsInt(), 1);
}

TEST(Tuple, HashAndEquality) {
  Tuple a{Value(std::int64_t{1}), Value("x")};
  Tuple b{Value(std::int64_t{1}), Value("x")};
  Tuple c{Value(std::int64_t{2}), Value("x")};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(Schema, LookupQualifiedAndAmbiguous) {
  Schema s({{"a.id", ValueType::kInt},
            {"a.price", ValueType::kDouble},
            {"b.id", ValueType::kInt}});
  EXPECT_EQ(s.IndexOf("a.price"), 1u);
  EXPECT_EQ(s.IndexOf("price"), 1u);           // unique suffix
  EXPECT_EQ(s.IndexOf("id"), std::nullopt);    // ambiguous suffix
  EXPECT_EQ(s.IndexOf("nope"), std::nullopt);  // unknown
}

TEST(Schema, PrefixAndConcat) {
  Schema s({{"id", ValueType::kInt}});
  Schema p = s.WithPrefix("bids");
  EXPECT_EQ(p.field(0).name, "bids.id");
  Schema both = p.Concat(s);
  EXPECT_EQ(both.arity(), 2u);
}

TEST(Expression, ArithmeticIntAndDouble) {
  Tuple t{Value(std::int64_t{7}), Value(2.0)};
  auto seven = MakeField(0, "a");
  auto two = MakeField(1, "b");
  EXPECT_EQ(MakeBinary(BinaryOp::kAdd, seven, MakeLiteral(Value(std::int64_t{3})))
                ->Eval(t)
                .AsInt(),
            10);
  EXPECT_DOUBLE_EQ(MakeBinary(BinaryOp::kDiv, seven, two)->Eval(t).AsDouble(),
                   3.5);
  // Int division truncates.
  EXPECT_EQ(MakeBinary(BinaryOp::kDiv, seven,
                       MakeLiteral(Value(std::int64_t{2})))
                ->Eval(t)
                .AsInt(),
            3);
  // Division by zero yields NULL.
  EXPECT_TRUE(MakeBinary(BinaryOp::kDiv, seven,
                         MakeLiteral(Value(std::int64_t{0})))
                  ->Eval(t)
                  .is_null());
}

TEST(Expression, ComparisonsAndLogic) {
  Tuple t{Value(std::int64_t{5})};
  auto five = MakeField(0, "x");
  auto lit3 = MakeLiteral(Value(std::int64_t{3}));
  auto gt = MakeBinary(BinaryOp::kGt, five, lit3);
  EXPECT_TRUE(gt->Eval(t).AsBool());
  auto lt = MakeBinary(BinaryOp::kLt, five, lit3);
  EXPECT_FALSE(lt->Eval(t).AsBool());
  EXPECT_TRUE(MakeBinary(BinaryOp::kAnd, gt, MakeUnary(UnaryOp::kNot, lt))
                  ->Eval(t)
                  .AsBool());
  EXPECT_TRUE(MakeBinary(BinaryOp::kOr, lt, gt)->Eval(t).AsBool());
  // NULL comparisons are false.
  auto null_cmp = MakeBinary(BinaryOp::kEq, five, MakeLiteral(Value::Null()));
  EXPECT_FALSE(null_cmp->Eval(t).AsBool());
}

TEST(Expression, ConjunctSplitAndCombine) {
  auto a = MakeBinary(BinaryOp::kGt, MakeField(0, "x"),
                      MakeLiteral(Value(std::int64_t{1})));
  auto b = MakeBinary(BinaryOp::kLt, MakeField(1, "y"),
                      MakeLiteral(Value(std::int64_t{9})));
  auto c = MakeBinary(BinaryOp::kEq, MakeField(2, "z"),
                      MakeLiteral(Value(std::int64_t{5})));
  auto all = MakeBinary(BinaryOp::kAnd, MakeBinary(BinaryOp::kAnd, a, b), c);

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(all, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 3u);

  auto combined = CombineConjuncts(conjuncts);
  Tuple t{Value(std::int64_t{2}), Value(std::int64_t{3}),
          Value(std::int64_t{5})};
  EXPECT_TRUE(combined->Eval(t).AsBool());
  EXPECT_TRUE(all->Eval(t).AsBool());
}

TEST(Expression, RemapFields) {
  auto expr = MakeBinary(BinaryOp::kAdd, MakeField(2, "c"), MakeField(0, "a"));
  // Fields 0 and 2 move to 1 and 0.
  auto remapped = expr->RemapFields({1, -1, 0});
  ASSERT_NE(remapped, nullptr);
  Tuple t{Value(std::int64_t{10}), Value(std::int64_t{20})};
  EXPECT_EQ(remapped->Eval(t).AsInt(), 30);

  // Referencing an unavailable field fails the remap.
  auto bad = expr->RemapFields({-1, 0, 1});
  EXPECT_EQ(bad, nullptr);
}

TEST(Expression, CollectFieldRefs) {
  auto expr = MakeBinary(
      BinaryOp::kMul, MakeField(1, "x"),
      MakeBinary(BinaryOp::kAdd, MakeField(3, "y"), MakeField(1, "x")));
  std::vector<std::size_t> refs;
  expr->CollectFieldRefs(&refs);
  EXPECT_EQ(refs, (std::vector<std::size_t>{1, 3, 1}));
}

}  // namespace
}  // namespace pipes::relational
