// Robustness properties: operator correctness must be independent of
// physical execution details — buffering boundaries, batch sizes, input
// disorder (within slack), and rate-reducing rewrites (coalescing).

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/coalesce.h"
#include "src/algebra/join.h"
#include "src/algebra/reorder.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/sweeparea/multiway_join.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using namespace pipes::algebra;  // NOLINT: test-local convenience
using namespace pipes::testing;  // NOLINT

class Robustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Robustness, BuffersDoNotChangeJoinResults) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.count = 100;
  options.payload_domain = 5;
  const auto left = RandomIntStream(rng, options);
  const auto right = RandomIntStream(rng, options);

  auto run = [&](bool buffered) {
    QueryGraph graph;
    auto& l = graph.Add<VectorSource<int>>(left);
    auto& r = graph.Add<VectorSource<int>>(right);
    auto identity = [](int v) { return v; };
    auto combine = [](int a, int b) { return a * 100 + b; };
    auto& join =
        graph.Add(MakeHashJoin<int, int>(identity, identity, combine));
    auto& sink = graph.Add<CollectorSink<int>>();
    if (buffered) {
      auto& bl = graph.Add<Buffer<int>>("bl");
      auto& br = graph.Add<Buffer<int>>("br");
      l.AddSubscriber(bl.input());
      r.AddSubscriber(br.input());
      bl.AddSubscriber(join.left());
      br.AddSubscriber(join.right());
    } else {
      l.AddSubscriber(join.left());
      r.AddSubscriber(join.right());
    }
    join.AddSubscriber(sink.input());
    scheduler::RandomStrategy strategy(GetParam() + (buffered ? 7 : 0));
    scheduler::SingleThreadScheduler driver(graph, strategy,
                                            1 + GetParam() % 9);
    driver.RunToCompletion();
    auto out = sink.elements();
    std::sort(out.begin(), out.end(),
              [](const StreamElement<int>& a, const StreamElement<int>& b) {
                return std::tie(a.interval.start, a.interval.end, a.payload) <
                       std::tie(b.interval.start, b.interval.end, b.payload);
              });
    return out;
  };

  EXPECT_EQ(run(false), run(true));
}

TEST_P(Robustness, BatchSizeDoesNotChangeAggregateResults) {
  Random rng(GetParam());
  const auto input = RandomIntStream(rng);

  auto run = [&](std::size_t batch) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto value = [](int v) { return v; };
    auto& agg =
        graph.Add<TemporalAggregate<int, SumAgg<int>, decltype(value)>>(
            value);
    auto& sink = graph.Add<CollectorSink<int>>();
    source.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, batch);
    driver.RunToCompletion();
    return sink.elements();
  };

  const auto baseline = run(1);
  EXPECT_EQ(run(7), baseline);
  EXPECT_EQ(run(1000), baseline);
}

TEST_P(Robustness, CoalesceIsSnapshotEquivalentToIdentity) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.payload_domain = 3;  // plenty of adjacent duplicates
  options.max_duration = 6;
  const auto input = RandomIntStream(rng, options);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& coalesce = graph.Add<Coalesce<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(coalesce.input());
  coalesce.AddSubscriber(sink.input());
  scheduler::RandomStrategy strategy(GetParam());
  scheduler::SingleThreadScheduler driver(graph, strategy,
                                          1 + GetParam() % 11);
  driver.RunToCompletion();

  // Snapshot-equivalence holds only where multiplicity is not collapsed:
  // coalesce merges overlapping equal payloads, which is snapshot-exact
  // for duplicate-free streams. Our random stream may contain concurrent
  // duplicates, so compare distinct snapshots.
  auto instants = CriticalInstants(input);
  for (Timestamp t : instants) {
    auto expected = SnapshotAt(input, t);
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    auto actual = SnapshotAt(sink.elements(), t);
    actual.erase(std::unique(actual.begin(), actual.end()), actual.end());
    ASSERT_EQ(actual, expected) << "t=" << t;
  }
}

TEST_P(Robustness, ReorderingSourceRestoresRandomDisorder) {
  Random rng(GetParam());
  // Ordered ground truth, then shuffle within windows of `slack`.
  std::vector<StreamElement<int>> ordered;
  Timestamp t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.UniformInt(0, 3);
    ordered.push_back(StreamElement<int>::Point(i, t));
  }
  std::vector<StreamElement<int>> shuffled = ordered;
  const Timestamp slack = 10;
  for (std::size_t i = 0; i + 1 < shuffled.size(); ++i) {
    const std::size_t j = i + rng.NextBounded(4);
    if (j < shuffled.size() &&
        std::llabs(shuffled[i].start() - shuffled[j].start()) <= slack / 2) {
      std::swap(shuffled[i], shuffled[j]);
    }
  }

  QueryGraph graph;
  std::size_t next = 0;
  auto& source = graph.Add<ReorderingSource<int>>(
      [&]() -> std::optional<StreamElement<int>> {
        if (next >= shuffled.size()) return std::nullopt;
        return shuffled[next++];
      },
      slack);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy,
                                          1 + GetParam() % 5);
  driver.RunToCompletion();

  EXPECT_EQ(source.dropped_count(), 0u);
  ASSERT_EQ(sink.elements().size(), ordered.size());
  for (std::size_t i = 1; i < sink.elements().size(); ++i) {
    ASSERT_LE(sink.elements()[i - 1].start(), sink.elements()[i].start());
  }
  // Same multiset of payloads.
  std::vector<int> got;
  for (const auto& e : sink.elements()) got.push_back(e.payload);
  std::sort(got.begin(), got.end());
  std::vector<int> want;
  for (const auto& e : ordered) want.push_back(e.payload);
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST_P(Robustness, FourWayMultiwayJoinMatchesReference) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.count = 40;
  options.payload_domain = 3;
  std::vector<std::vector<StreamElement<int>>> streams;
  for (int i = 0; i < 4; ++i) {
    streams.push_back(RandomIntStream(rng, options));
  }

  QueryGraph graph;
  auto key = [](int v) { return v; };
  auto& join = graph.Add<sweeparea::MultiwayJoin<int, decltype(key)>>(4, key);
  for (std::size_t i = 0; i < 4; ++i) {
    auto& source = graph.Add<VectorSource<int>>(streams[i]);
    source.AddSubscriber(join.input(i));
  }
  auto& sink = graph.Add<CollectorSink<std::vector<int>>>();
  join.AddSubscriber(sink.input());
  scheduler::RandomStrategy strategy(GetParam());
  scheduler::SingleThreadScheduler driver(graph, strategy, 3);
  driver.RunToCompletion();

  auto instants = CriticalInstants<int>(
      {&streams[0], &streams[1], &streams[2], &streams[3]});
  for (Timestamp t : instants) {
    std::vector<std::vector<int>> expected;
    for (int a : SnapshotAt(streams[0], t)) {
      for (int b : SnapshotAt(streams[1], t)) {
        for (int c : SnapshotAt(streams[2], t)) {
          for (int d : SnapshotAt(streams[3], t)) {
            if (a == b && b == c && c == d) expected.push_back({a, b, c, d});
          }
        }
      }
    }
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(SnapshotAt(sink.elements(), t), expected) << "t=" << t;
  }
}

TEST_P(Robustness, CountWindowMatchesDirectConstruction) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.max_duration = 1;
  options.count = 80;
  const auto input = RandomIntStream(rng, options);
  const std::size_t rows = 1 + GetParam() % 5;

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& window = graph.Add<CountWindow<int>>(rows);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler(graph, strategy).RunToCompletion();

  // Reference: element i valid from its start until the start of element
  // i+rows (clamped up when starts are equal), forever for the last rows.
  std::vector<StreamElement<int>> expected;
  for (std::size_t i = 0; i < input.size(); ++i) {
    Timestamp end = kMaxTimestamp;
    if (i + rows < input.size()) {
      end = std::max(input[i + rows].start(), input[i].start() + 1);
    }
    expected.push_back(
        StreamElement<int>(input[i].payload, input[i].start(), end));
  }
  auto instants = CriticalInstants(expected);
  for (Timestamp t : instants) {
    ASSERT_EQ(SnapshotAt(sink.elements(), t), SnapshotAt(expected, t))
        << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Robustness,
                         ::testing::Values(2, 11, 23, 47, 97));

}  // namespace
}  // namespace pipes
