// Tests for the 3-layer scheduling framework: strategies (layer 2), the
// deterministic driver, virtual-node fusion semantics (layer 1: buffers are
// the only scheduling boundaries), and the thread scheduler (layer 3).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/filter.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/fusion.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/strategy.h"

namespace pipes::scheduler {
namespace {

std::vector<StreamElement<int>> Ints(int n) {
  std::vector<StreamElement<int>> elements;
  for (int i = 0; i < n; ++i) {
    elements.push_back(StreamElement<int>::Point(i, i));
  }
  return elements;
}

TEST(Strategies, RoundRobinCycles) {
  QueryGraph graph;
  auto& a = graph.Add<VectorSource<int>>(Ints(100), "a");
  auto& b = graph.Add<VectorSource<int>>(Ints(100), "b");
  std::vector<Node*> candidates = {&a, &b};
  RoundRobinStrategy strategy;
  const std::size_t first = strategy.Select(candidates);
  const std::size_t second = strategy.Select(candidates);
  const std::size_t third = strategy.Select(candidates);
  EXPECT_NE(first, second);
  EXPECT_EQ(first, third);
}

TEST(Strategies, FifoPrefersOldestNode) {
  QueryGraph graph;
  auto& a = graph.Add<VectorSource<int>>(Ints(10), "a");
  auto& b = graph.Add<VectorSource<int>>(Ints(10), "b");
  std::vector<Node*> candidates = {&b, &a};
  FifoStrategy strategy;
  EXPECT_EQ(candidates[strategy.Select(candidates)], &a);
}

TEST(Strategies, LongestQueuePicksFullestBuffer) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(Ints(10));
  auto& small = graph.Add<Buffer<int>>("small");
  auto& big = graph.Add<Buffer<int>>("big");
  source.AddSubscriber(small.input());
  source.AddSubscriber(big.input());
  source.DoWork(10);
  small.DoWork(8);  // drain most of the small buffer

  std::vector<Node*> candidates = {&small, &big};
  LongestQueueStrategy strategy;
  EXPECT_EQ(candidates[strategy.Select(candidates)], &big);
}

TEST(Strategies, ChainPrefersSelectiveDownstreamChains) {
  QueryGraph graph;
  // Buffer A feeds a highly selective filter (sheds memory fast); buffer B
  // feeds a pass-through chain.
  auto& source_a = graph.Add<VectorSource<int>>(Ints(1000), "sa");
  auto& source_b = graph.Add<VectorSource<int>>(Ints(1000), "sb");
  auto& buffer_a = graph.Add<Buffer<int>>("ba");
  auto& buffer_b = graph.Add<Buffer<int>>("bb");
  auto selective = [](int v) { return v % 100 == 0; };
  auto& filter_a =
      graph.Add<algebra::Filter<int, decltype(selective)>>(selective, "fa");
  auto pass = [](int) { return true; };
  auto& filter_b =
      graph.Add<algebra::Filter<int, decltype(pass)>>(pass, "fb");
  auto& sink_a = graph.Add<CountingSink<int>>("ka");
  auto& sink_b = graph.Add<CountingSink<int>>("kb");
  source_a.AddSubscriber(buffer_a.input());
  source_b.AddSubscriber(buffer_b.input());
  buffer_a.AddSubscriber(filter_a.input());
  buffer_b.AddSubscriber(filter_b.input());
  filter_a.AddSubscriber(sink_a.input());
  filter_b.AddSubscriber(sink_b.input());

  // Warm up: push some elements through so selectivities are observable.
  source_a.DoWork(200);
  source_b.DoWork(200);
  buffer_a.DoWork(100);
  buffer_b.DoWork(100);

  EXPECT_GT(ChainStrategy::Priority(buffer_a),
            ChainStrategy::Priority(buffer_b));
  std::vector<Node*> candidates = {&buffer_b, &buffer_a};
  ChainStrategy strategy;
  EXPECT_EQ(candidates[strategy.Select(candidates)], &buffer_a);
}

TEST(Strategies, RateBasedPrefersProductiveChains) {
  QueryGraph graph;
  auto& source_a = graph.Add<VectorSource<int>>(Ints(1000), "sa");
  auto& source_b = graph.Add<VectorSource<int>>(Ints(1000), "sb");
  auto& buffer_a = graph.Add<Buffer<int>>("ba");
  auto& buffer_b = graph.Add<Buffer<int>>("bb");
  auto selective = [](int v) { return v % 100 == 0; };
  auto& filter_a =
      graph.Add<algebra::Filter<int, decltype(selective)>>(selective, "fa");
  auto pass = [](int) { return true; };
  auto& filter_b = graph.Add<algebra::Filter<int, decltype(pass)>>(pass, "fb");
  auto& sink_a = graph.Add<CountingSink<int>>("ka");
  auto& sink_b = graph.Add<CountingSink<int>>("kb");
  source_a.AddSubscriber(buffer_a.input());
  source_b.AddSubscriber(buffer_b.input());
  buffer_a.AddSubscriber(filter_a.input());
  buffer_b.AddSubscriber(filter_b.input());
  filter_a.AddSubscriber(sink_a.input());
  filter_b.AddSubscriber(sink_b.input());

  source_a.DoWork(200);
  source_b.DoWork(200);
  buffer_a.DoWork(100);
  buffer_b.DoWork(100);

  // The pass-through chain delivers more results per unit of work.
  EXPECT_GT(RateBasedStrategy::Priority(buffer_b),
            RateBasedStrategy::Priority(buffer_a));
}

TEST(Strategies, RandomIsDeterministicPerSeed) {
  QueryGraph graph;
  auto& a = graph.Add<VectorSource<int>>(Ints(10), "a");
  auto& b = graph.Add<VectorSource<int>>(Ints(10), "b");
  std::vector<Node*> candidates = {&a, &b};
  RandomStrategy s1(123), s2(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(s1.Select(candidates), s2.Select(candidates));
  }
}

TEST(Scheduler, AllStrategiesDrainTheSameGraphToTheSameResult) {
  auto build_and_run = [](Strategy& strategy) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(Ints(500));
    auto& buffer = graph.Add<Buffer<int>>();
    auto pred = [](int v) { return v % 3 == 0; };
    auto& filter = graph.Add<algebra::Filter<int, decltype(pred)>>(pred);
    auto& sink = graph.Add<CountingSink<int>>();
    source.AddSubscriber(buffer.input());
    buffer.AddSubscriber(filter.input());
    filter.AddSubscriber(sink.input());
    SingleThreadScheduler driver(graph, strategy, /*batch_size=*/17);
    driver.RunToCompletion();
    EXPECT_TRUE(graph.Finished());
    return sink.count();
  };

  RoundRobinStrategy rr;
  FifoStrategy fifo;
  LongestQueueStrategy lq;
  ChainStrategy chain;
  RateBasedStrategy rate;
  RandomStrategy random(5);
  const auto expected = build_and_run(rr);
  EXPECT_EQ(expected, 167u);
  EXPECT_EQ(build_and_run(fifo), expected);
  EXPECT_EQ(build_and_run(lq), expected);
  EXPECT_EQ(build_and_run(chain), expected);
  EXPECT_EQ(build_and_run(rate), expected);
  EXPECT_EQ(build_and_run(random), expected);
}

TEST(Scheduler, CollectsQueueStatistics) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(Ints(100));
  auto& buffer = graph.Add<Buffer<int>>();
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());

  // FIFO drives the source fully before draining the buffer -> the queue
  // peak approaches the input size.
  FifoStrategy strategy;
  SingleThreadScheduler driver(graph, strategy, /*batch_size=*/1000);
  const RunStats stats = driver.RunToCompletion();
  EXPECT_GT(stats.peak_total_queue, 90u);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.units, 0u);
}

TEST(Scheduler, StepReturnsFalseWhenNoWork) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(Ints(1));
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(sink.input());
  RoundRobinStrategy strategy;
  SingleThreadScheduler driver(graph, strategy);
  EXPECT_TRUE(driver.Step());
  EXPECT_FALSE(driver.Step());
  EXPECT_TRUE(graph.Finished());
}

TEST(Fusion, SpliceBufferSplitsAVirtualNode) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(Ints(50));
  auto pred = [](int v) { return v % 2 == 0; };
  auto& filter = graph.Add<algebra::Filter<int, decltype(pred)>>(pred);
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(sink.input());
  ASSERT_EQ(graph.ActiveNodes().size(), 1u);  // one fused virtual node

  auto spliced = SpliceBuffer<int>(graph, source, filter.input());
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(graph.ActiveNodes().size(), 2u);  // boundary created
  EXPECT_TRUE(graph.Validate().ok());

  RoundRobinStrategy strategy;
  SingleThreadScheduler(graph, strategy).RunToCompletion();
  EXPECT_EQ(sink.count(), 25u);

  // Splicing a non-existent edge reports NotFound.
  auto again = SpliceBuffer<int>(graph, source, filter.input());
  EXPECT_EQ(again.status().code(), StatusCode::kNotFound);
}

TEST(Fusion, SpliceConcurrentBufferForThreadEdges) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(Ints(100));
  auto& sink = graph.Add<CountingSink<int>>();
  source.AddSubscriber(sink.input());
  auto spliced = SpliceConcurrentBuffer<int>(graph, source, sink.input());
  ASSERT_TRUE(spliced.ok());

  ThreadScheduler scheduler(
      graph, /*num_threads=*/2,
      []() { return std::make_unique<RoundRobinStrategy>(); });
  scheduler.RunToCompletion();
  EXPECT_EQ(sink.count(), 100u);
}

TEST(ThreadScheduler, DrainsDisjointChainsAcrossThreads) {
  QueryGraph graph;
  constexpr int kChains = 4;
  constexpr int kPerChain = 2000;
  std::vector<CountingSink<int>*> sinks;
  for (int c = 0; c < kChains; ++c) {
    auto& source = graph.Add<VectorSource<int>>(Ints(kPerChain));
    auto& buffer = graph.Add<ConcurrentBuffer<int>>();
    auto& sink = graph.Add<CountingSink<int>>();
    source.AddSubscriber(buffer.input());
    buffer.AddSubscriber(sink.input());
    sinks.push_back(&sink);
  }

  // Keep each chain's source and buffer on the same worker: active nodes
  // are ordered [src0, buf0, src1, buf1, ...] per graph insertion order.
  std::vector<int> assignment;
  for (int c = 0; c < kChains; ++c) {
    assignment.push_back(c % 2);
    assignment.push_back(c % 2);
  }
  ThreadScheduler scheduler(
      graph, /*num_threads=*/2,
      []() { return std::make_unique<RoundRobinStrategy>(); }, assignment);
  const RunStats stats = scheduler.RunToCompletion();

  EXPECT_TRUE(graph.Finished());
  EXPECT_GT(stats.units, 0u);
  for (auto* sink : sinks) {
    EXPECT_EQ(sink->count(), static_cast<std::uint64_t>(kPerChain));
    EXPECT_TRUE(sink->done());
  }
}

}  // namespace
}  // namespace pipes::scheduler
