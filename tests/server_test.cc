// Tests for the continuous-query server: the wire codec (pure functions —
// framing round-trips, chunked delivery, truncation and garbage handling)
// and a loopback end-to-end conversation through PipesServer + Client.
// The socket tests skip gracefully in sandboxes that refuse loopback
// listeners; the codec tests always run.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"

namespace pipes::server {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

// --- Codec ------------------------------------------------------------------

TEST(ProtocolTest, BodyPrimitivesRoundTrip) {
  const std::string body = BodyWriter()
                               .PutU32(0)
                               .PutU32(0xdeadbeef)
                               .PutU64(0x0123456789abcdefull)
                               .PutTimestamp(-42)
                               .PutString("")
                               .PutString("hello \x01\xff world")
                               .Take();
  BodyReader reader(body);
  EXPECT_EQ(reader.U32().value(), 0u);
  EXPECT_EQ(reader.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.U64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.GetTimestamp().value(), -42);
  EXPECT_EQ(reader.String().value(), "");
  EXPECT_EQ(reader.String().value(), "hello \x01\xff world");
  EXPECT_TRUE(reader.Finish().ok());
}

TEST(ProtocolTest, ReaderRejectsTruncationAndTrailingBytes) {
  const std::string body = BodyWriter().PutU32(7).Take();
  {
    BodyReader reader(body);
    EXPECT_FALSE(reader.U64().ok());  // only 4 bytes available
  }
  {
    BodyReader reader(body);
    ASSERT_TRUE(reader.U32().ok());
    EXPECT_FALSE(reader.U32().ok());
    EXPECT_FALSE(reader.String().ok());
  }
  {
    BodyReader reader(body);
    EXPECT_FALSE(reader.Finish().ok());  // unread bytes
  }
  // A string whose length prefix overruns the body.
  const std::string lying = BodyWriter().PutU32(1000).Take();
  BodyReader reader(lying);
  EXPECT_FALSE(reader.String().ok());
}

TEST(ProtocolTest, FramesRoundTripUnderArbitraryChunking) {
  const std::vector<Message> messages = {
      HelloMessage("tenant-a"),
      RegisterMessage("SELECT * FROM s"),
      CancelMessage(77),
      FetchMessage(12, 256),
      {MsgType::kPing, {}},
      ErrorMessage(Status::NotFound("nope")),
  };
  std::string wire;
  for (const Message& m : messages) wire += EncodeFrame(m);

  // Feed one byte at a time — the decoder must reassemble exactly.
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, wire.size()}) {
    FrameDecoder decoder;
    std::vector<Message> decoded;
    for (std::size_t i = 0; i < wire.size(); i += chunk) {
      decoder.Feed(std::string_view(wire).substr(i, chunk));
      while (true) {
        auto next = decoder.Next();
        ASSERT_TRUE(next.ok());
        if (!next->has_value()) break;
        decoded.push_back(**next);
      }
    }
    EXPECT_EQ(decoded, messages) << "chunk size " << chunk;
    EXPECT_EQ(decoder.buffered_bytes(), 0u);
  }
}

TEST(ProtocolTest, DecoderRejectsGarbageFrames) {
  {
    FrameDecoder decoder;
    decoder.Feed(std::string("\x00\x00\x00\x00", 4));  // zero-length frame
    EXPECT_FALSE(decoder.Next().ok());
  }
  {
    FrameDecoder decoder;
    decoder.Feed(std::string("\xff\xff\xff\xff", 4));  // 4GiB frame
    EXPECT_FALSE(decoder.Next().ok());
  }
  {
    FrameDecoder decoder;
    decoder.Feed(std::string("\x00\x00", 2));  // incomplete header
    auto next = decoder.Next();
    ASSERT_TRUE(next.ok());
    EXPECT_FALSE(next->has_value());
  }
}

TEST(ProtocolTest, ErrorMessageRoundTripsStatus) {
  const Status original =
      Status::ResourceExhausted("tenant over 3-query quota");
  const Status decoded = StatusFromError(ErrorMessage(original));
  EXPECT_EQ(decoded.code(), original.code());
  EXPECT_EQ(decoded.message(), original.message());
  EXPECT_FALSE(StatusFromError({MsgType::kOk, {}}).ok());
}

// --- End-to-end over loopback ----------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<engine::Engine>();
    auto writer = engine_->AddStream(
        "trades",
        Schema({{"symbol", ValueType::kInt}, {"price", ValueType::kDouble}}),
        /*rate_hint=*/10.0);
    ASSERT_TRUE(writer.ok());
    writer_ = *writer;
    server_ = std::make_unique<PipesServer>(*engine_);
    const Status started = server_->Start();
    if (!started.ok()) {
      GTEST_SKIP() << "no loopback sockets here: " << started.ToString();
    }
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  void Feed(int n, Timestamp t0) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(writer_
                      .Push(Tuple{Value(static_cast<std::int64_t>(i % 2)),
                                  Value(100.0 + i)},
                            t0 + i * 100)
                      .ok());
    }
  }

  std::unique_ptr<engine::Engine> engine_;
  engine::StreamWriter writer_;
  std::unique_ptr<PipesServer> server_;
};

TEST_F(ServerTest, FullConversation) {
  auto client = Client::Connect("127.0.0.1", server_->port(), "acme");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client->Ping().ok());

  auto registered = client->Register(
      "SELECT symbol, AVG(price) AS avg_price FROM trades "
      "[RANGE 1 SECONDS SLIDE 1 SECONDS] GROUP BY symbol");
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  EXPECT_GT(registered->query_id, 0u);
  EXPECT_NE(registered->schema.find("avg_price"), std::string::npos);

  // Bad CQL surfaces as a typed error, connection intact.
  auto bad = client->Register("SELEC nonsense");
  ASSERT_FALSE(bad.ok());
  ASSERT_TRUE(client->Ping().ok());

  // Feed past a few window closes, then fetch until results arrive (the
  // server's pump thread drives the executor).
  Feed(50, 0);
  std::vector<Client::Row> rows;
  for (int attempt = 0; attempt < 500 && rows.empty(); ++attempt) {
    auto fetched = client->Fetch(registered->query_id, 16);
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    rows = *fetched;
    if (rows.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  ASSERT_FALSE(rows.empty());
  EXPECT_LE(rows.size(), 16u);
  EXPECT_LT(rows[0].start, rows[0].end);
  EXPECT_FALSE(rows[0].tuple.empty());

  // Snapshots: tenant-scoped and whole-graph.
  auto tenant_json = client->SnapshotJson(/*whole_graph=*/false);
  ASSERT_TRUE(tenant_json.ok());
  EXPECT_NE(tenant_json->find("\"scope\""), std::string::npos);
  auto whole_json = client->SnapshotJson(/*whole_graph=*/true);
  ASSERT_TRUE(whole_json.ok());
  EXPECT_GT(whole_json->size(), tenant_json->size() / 2);

  // Cancel, then operations on the dead query fail cleanly.
  ASSERT_TRUE(client->Cancel(registered->query_id).ok());
  EXPECT_FALSE(client->Fetch(registered->query_id, 16).ok());
  EXPECT_FALSE(client->Cancel(registered->query_id).ok());
}

TEST_F(ServerTest, HelloIsRequiredAndDisconnectCancelsTenant) {
  // The server refuses an empty tenant name at HELLO time.
  EXPECT_FALSE(Client::Connect("127.0.0.1", server_->port(), "").ok());

  auto client = Client::Connect("127.0.0.1", server_->port(), "ghost");
  ASSERT_TRUE(client.ok());
  auto registered = client->Register(
      "SELECT symbol, MAX(price) AS high FROM trades "
      "[RANGE 1 SECONDS SLIDE 1 SECONDS] GROUP BY symbol");
  ASSERT_TRUE(registered.ok());
  EXPECT_EQ(engine_->tenant_counters("ghost").live, 1u);

  client->Close();
  // The server notices the disconnect and cancels everything "ghost" owns.
  for (int attempt = 0; attempt < 500; ++attempt) {
    if (engine_->tenant_counters("ghost").live == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(engine_->tenant_counters("ghost").live, 0u);
  EXPECT_EQ(engine_->tenant_counters("ghost").cancelled, 1u);
}

TEST_F(ServerTest, TenantsAreIsolated) {
  auto alice = Client::Connect("127.0.0.1", server_->port(), "alice");
  auto bob = Client::Connect("127.0.0.1", server_->port(), "bob");
  ASSERT_TRUE(alice.ok() && bob.ok());

  auto qa = alice->Register(
      "SELECT symbol, COUNT(*) AS n FROM trades "
      "[RANGE 1 SECONDS SLIDE 1 SECONDS] GROUP BY symbol");
  ASSERT_TRUE(qa.ok());

  // Bob cannot fetch from Alice's query through his connection.
  EXPECT_FALSE(bob->Fetch(qa->query_id, 16).ok());

  // Both tenants are visible engine-side with their own counters.
  EXPECT_EQ(engine_->tenant_counters("alice").live, 1u);
  EXPECT_EQ(engine_->tenant_counters("bob").live, 0u);
}

}  // namespace
}  // namespace pipes::server
