// Tests for the deterministic simulation harness itself: the query-graph
// generator only emits valid plans, the differential oracles actually
// detect the bug classes they claim to (via planted canaries), a failing
// case shrinks to a minimal repro, and the whole pipeline is a pure
// function of its seed. The full-scale campaigns live in CI
// (examples/pipes_fuzz); this file keeps the harness honest at unit cost.

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/testing/generate.h"
#include "src/testing/harness.h"
#include "src/testing/oracles.h"
#include "src/testing/reference.h"
#include "src/testing/spec.h"

namespace pipes::testing {
namespace {

/// Mirrors RunCase's seed -> (plan, streams) derivation (also used by
/// `pipes_fuzz --replay`).
void Regenerate(std::uint64_t case_seed, PlanSpec* spec,
                std::vector<Stream>* raw,
                std::vector<StreamProfile>* profiles) {
  Random rng(case_seed);
  GeneratedCase gc = GenerateCase(rng, GenOptions{});
  *spec = gc.spec;
  *profiles = gc.profiles;
  raw->clear();
  for (const StreamProfile& profile : gc.profiles) {
    raw->push_back(GenerateStream(rng, profile));
  }
}

// --- Generator --------------------------------------------------------------

// GenerateCase runs CheckValid on every plan, so structural violations
// abort. This asserts the subtler contracts on top: the segmentation rule
// (boundary-reading ops never consume resegmenting subplans) and that the
// catalog actually gets explored.
TEST(SimulationGenerator, PlansAreValidAndDiverse) {
  std::set<OpKind> seen;
  int resegmenting_plans = 0;
  for (std::uint64_t i = 0; i < 200; ++i) {
    Random rng(CaseSeed(99, i));
    GeneratedCase gc = GenerateCase(rng, GenOptions{});
    const std::vector<bool> resegmented = gc.spec.ResegmentedSubplans();
    for (const SpecNode& n : gc.spec.nodes) {
      seen.insert(n.kind);
      if (TraitsOf(n.kind).segmentation_sensitive) {
        ASSERT_GE(n.in0, 0);
        EXPECT_FALSE(resegmented[n.in0])
            << OpKindName(n.kind) << " consumes a resegmenting subplan";
      }
    }
    if (gc.spec.Resegmenting()) ++resegmenting_plans;
    EXPECT_EQ(gc.profiles.size(),
              static_cast<std::size_t>(gc.spec.NumStreams()));
  }
  // Every catalog entry appears somewhere across 200 plans.
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumOpKinds));
  // The constraint must not have priced Distinct out of the pool.
  EXPECT_GT(resegmenting_plans, 10);
}

TEST(SimulationGenerator, RewritesPreserveReferenceSemantics) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    PlanSpec spec;
    std::vector<Stream> raw;
    std::vector<StreamProfile> profiles;
    Regenerate(CaseSeed(123, i), &spec, &raw, &profiles);
    std::vector<Stream> canonical;
    for (const Stream& s : raw) canonical.push_back(Canonicalize(s));
    const Stream expected = EvalReference(spec, canonical);

    Random rng(CaseSeed(123, i) ^ 0xabc);
    const PlanSpec rewritten = ApplyRandomRewrites(rng, spec, 4);
    const Stream actual = EvalReference(rewritten, canonical);
    const auto violation =
        CompareSnapshots(actual, expected, SnapRel::kEqual);
    EXPECT_FALSE(violation.has_value())
        << "rewrite changed semantics on seed " << CaseSeed(123, i) << ": "
        << *violation;
  }
}

// --- Oracles ----------------------------------------------------------------

TEST(SimulationOracles, SnapshotCompareFindsMultiplicityDrift) {
  const Stream expected = {Elem(7, TimeInterval(0, 10)),
                           Elem(7, TimeInterval(5, 15))};
  Stream actual = expected;
  EXPECT_FALSE(
      CompareSnapshots(actual, expected, SnapRel::kEqual).has_value());

  // Same payloads, same total mass, shifted boundary: snapshot at t in
  // [10, 12) now has multiplicity 2 instead of 1.
  actual[0].interval = TimeInterval(0, 12);
  EXPECT_TRUE(
      CompareSnapshots(actual, expected, SnapRel::kEqual).has_value());
  // ...and that is not a subset either (extra mass).
  EXPECT_TRUE(
      CompareSnapshots(actual, expected, SnapRel::kSubset).has_value());

  // Dropping an element is a subset but not equal.
  Stream lossy = {expected[0]};
  EXPECT_TRUE(
      CompareSnapshots(lossy, expected, SnapRel::kEqual).has_value());
  EXPECT_FALSE(
      CompareSnapshots(lossy, expected, SnapRel::kSubset).has_value());
}

TEST(SimulationOracles, MultisetCompareIsExact) {
  const Stream expected = {Elem(1, TimeInterval(0, 5)),
                           Elem(2, TimeInterval(3, 9))};
  Stream reordered = {expected[1], expected[0]};
  EXPECT_FALSE(CompareMultisets(reordered, expected).has_value());
  Stream corrupted = expected;
  corrupted[1].payload = 3;
  EXPECT_TRUE(CompareMultisets(corrupted, expected).has_value());
}

TEST(SimulationOracles, ConservationRules) {
  EXPECT_FALSE(CheckConservation(ConservationRule::kExact, 10, 10, 0, 0, "n")
                   .has_value());
  EXPECT_TRUE(CheckConservation(ConservationRule::kExact, 10, 9, 0, 0, "n")
                  .has_value());
  EXPECT_FALSE(
      CheckConservation(ConservationRule::kExactPlusShed, 10, 7, 3, 0, "n")
          .has_value());
  EXPECT_TRUE(
      CheckConservation(ConservationRule::kExactPlusShed, 10, 7, 2, 0, "n")
          .has_value());
  EXPECT_FALSE(
      CheckConservation(ConservationRule::kAtMostDoubleIn, 10, 21, 0, 0, "n")
          .has_value());
  EXPECT_TRUE(
      CheckConservation(ConservationRule::kAtMostDoubleIn, 10, 22, 0, 0, "n")
          .has_value());
}

// --- End-to-end harness -----------------------------------------------------

TEST(SimulationHarness, SmallCampaignPassesClean) {
  std::ostringstream log;
  const FuzzStats stats = RunFuzz(/*base_seed=*/2026, /*num_cases=*/60,
                                  HarnessOptions{}, &log);
  EXPECT_EQ(stats.failed_cases, 0u) << stats.first_failure.Summary();
  EXPECT_EQ(stats.cases_run, 60u);
  // Each case runs the fixed arms plus schedule variants.
  EXPECT_GT(stats.arms_run, stats.cases_run * 4);
}

TEST(SimulationHarness, SelfCheckCatchesEveryCanary) {
  std::ostringstream log;
  EXPECT_TRUE(SelfCheck(/*seed=*/5, &log)) << log.str();
}

TEST(SimulationHarness, CaseVerdictIsDeterministic) {
  HarnessOptions options;
  options.canary = CanaryKind::kCorruptPayload;
  const CaseResult a = RunCase(CaseSeed(17, 0), options);
  const CaseResult b = RunCase(CaseSeed(17, 0), options);
  EXPECT_EQ(a.ok(), b.ok());
  EXPECT_EQ(a.failing_arm, b.failing_arm);
  EXPECT_EQ(a.Summary(), b.Summary());
}

// A hand-broken pipeline (planted element-dropping bug) must shrink to a
// minimal repro — the ISSUE acceptance bar is <= 5 nodes — that still fails
// with the same harness options, so the printed replay line works.
TEST(SimulationHarness, ShrinkReducesPlantedBugToMinimalRepro) {
  HarnessOptions options;
  options.canary = CanaryKind::kDropElement;
  const std::uint64_t case_seed = CaseSeed(7, 0);

  PlanSpec spec;
  std::vector<Stream> raw;
  std::vector<StreamProfile> profiles;
  Regenerate(case_seed, &spec, &raw, &profiles);
  const CaseResult broken = RunCaseOnSpec(spec, raw, profiles, case_seed,
                                          options);
  ASSERT_FALSE(broken.ok()) << "canary was not detected at all";
  ASSERT_GT(spec.nodes.size(), 5u) << "pick a seed with a bigger plan";

  const ShrinkResult shrunk =
      Shrink(spec, raw, profiles, case_seed, options, /*max_reruns=*/300);
  EXPECT_FALSE(shrunk.result.ok());
  EXPECT_LE(shrunk.spec.nodes.size(), 5u);
  // The shrunk case must replay: running it again reproduces a failure.
  const CaseResult replay = RunCaseOnSpec(shrunk.spec, shrunk.inputs,
                                          shrunk.profiles, case_seed, options);
  EXPECT_FALSE(replay.ok());
}

}  // namespace
}  // namespace pipes::testing
