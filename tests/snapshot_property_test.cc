// Property tests: every physical operator must be *snapshot-equivalent* to
// its logical counterpart. For randomized input streams we compare, at every
// critical instant, the multiset snapshot of the operator's output against
// the logical operator applied to the multiset snapshots of its inputs
// (naive materializing reference). Randomized scheduling (strategy + batch
// size) stresses the watermark machinery.

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/difference.h"
#include "src/algebra/distinct.h"
#include "src/algebra/filter.h"
#include "src/algebra/join.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "tests/snapshot_reference.h"

namespace pipes {
namespace {

using namespace pipes::algebra;    // NOLINT: test-local convenience
using namespace pipes::testing;    // NOLINT: test-local convenience

/// Drives the graph with a randomized strategy and batch size derived from
/// the seed, so different seeds exercise different interleavings.
void DrainRandomized(QueryGraph& graph, std::uint64_t seed) {
  scheduler::RandomStrategy strategy(seed);
  scheduler::SingleThreadScheduler driver(graph, strategy,
                                          /*batch_size=*/1 + seed % 17);
  driver.RunToCompletion();
}

/// Checks the global output-ordering invariant.
template <typename T>
void ExpectStartOrdered(const std::vector<StreamElement<T>>& elements) {
  for (std::size_t i = 1; i < elements.size(); ++i) {
    ASSERT_LE(elements[i - 1].start(), elements[i].start())
        << "output not ordered at index " << i;
  }
}

/// Asserts output snapshots equal `expected_at(t)` at all critical instants
/// of inputs and output.
template <typename T>
void ExpectSnapshotsEqual(
    const std::vector<Timestamp>& instants,
    const std::vector<StreamElement<T>>& actual,
    const std::function<std::vector<T>(Timestamp)>& expected_at) {
  for (Timestamp t : instants) {
    auto actual_snapshot = SnapshotAt(actual, t);
    auto expected_snapshot = expected_at(t);
    std::sort(expected_snapshot.begin(), expected_snapshot.end());
    ASSERT_EQ(actual_snapshot, expected_snapshot) << "snapshot at t=" << t;
  }
}

class SnapshotProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotProperty, FilterIsSnapshotEquivalent) {
  Random rng(GetParam());
  const auto input = RandomIntStream(rng);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto pred = [](int v) { return v % 3 != 0; };
  auto& filter = graph.Add<Filter<int, decltype(pred)>>(pred);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(filter.input());
  filter.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants(input);
  ExpectSnapshotsEqual<int>(
      instants, sink.elements(), [&](Timestamp t) {
        std::vector<int> expected;
        for (int v : SnapshotAt(input, t)) {
          if (pred(v)) expected.push_back(v);
        }
        return expected;
      });
}

TEST_P(SnapshotProperty, TimeWindowIsSnapshotEquivalent) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.max_duration = 1;  // raw point stream
  const auto input = RandomIntStream(rng, options);
  const Timestamp w = 5 + static_cast<Timestamp>(GetParam() % 20);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& window = graph.Add<TimeWindow<int>>(w);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  // Reference: widen intervals directly.
  std::vector<StreamElement<int>> expected_elements;
  for (const auto& e : input) {
    expected_elements.push_back(
        StreamElement<int>(e.payload, e.start(), e.start() + w));
  }
  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants(expected_elements);
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    return SnapshotAt(expected_elements, t);
  });
}

TEST_P(SnapshotProperty, UnionIsSnapshotEquivalent) {
  Random rng(GetParam());
  const auto a = RandomIntStream(rng);
  const auto b = RandomIntStream(rng);

  QueryGraph graph;
  auto& sa = graph.Add<VectorSource<int>>(a);
  auto& sb = graph.Add<VectorSource<int>>(b);
  auto& u = graph.Add<Union<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  sa.AddSubscriber(u.left());
  sb.AddSubscriber(u.right());
  u.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants<int>({&a, &b});
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    auto expected = SnapshotAt(a, t);
    auto more = SnapshotAt(b, t);
    expected.insert(expected.end(), more.begin(), more.end());
    return expected;
  });
}

TEST_P(SnapshotProperty, HashJoinIsSnapshotEquivalent) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.count = 120;
  options.payload_domain = 5;  // frequent key collisions
  const auto left = RandomIntStream(rng, options);
  const auto right = RandomIntStream(rng, options);

  QueryGraph graph;
  auto& sl = graph.Add<VectorSource<int>>(left);
  auto& sr = graph.Add<VectorSource<int>>(right);
  auto identity = [](int v) { return v; };
  auto combine = [](int a, int b) { return a * 100 + b; };
  auto& join =
      graph.Add(MakeHashJoin<int, int>(identity, identity, combine));
  auto& sink = graph.Add<CollectorSink<int>>();
  sl.AddSubscriber(join.left());
  sr.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants<int>({&left, &right});
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    std::vector<int> expected;
    for (int l : SnapshotAt(left, t)) {
      for (int r : SnapshotAt(right, t)) {
        if (l == r) expected.push_back(combine(l, r));
      }
    }
    return expected;
  });
}

TEST_P(SnapshotProperty, NestedLoopsBandJoinIsSnapshotEquivalent) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.count = 60;
  options.payload_domain = 10;
  const auto left = RandomIntStream(rng, options);
  const auto right = RandomIntStream(rng, options);

  QueryGraph graph;
  auto& sl = graph.Add<VectorSource<int>>(left);
  auto& sr = graph.Add<VectorSource<int>>(right);
  auto pred = [](int l, int r) { return l <= r && r <= l + 2; };
  auto combine = [](int a, int b) { return a * 100 + b; };
  auto& join =
      graph.Add(MakeNestedLoopsJoin<int, int>(pred, combine));
  auto& sink = graph.Add<CollectorSink<int>>();
  sl.AddSubscriber(join.left());
  sr.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants<int>({&left, &right});
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    std::vector<int> expected;
    for (int l : SnapshotAt(left, t)) {
      for (int r : SnapshotAt(right, t)) {
        if (pred(l, r)) expected.push_back(combine(l, r));
      }
    }
    return expected;
  });
}

TEST_P(SnapshotProperty, SumAggregateIsSnapshotEquivalent) {
  Random rng(GetParam());
  const auto input = RandomIntStream(rng);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto value = [](int v) { return v; };
  auto& agg =
      graph.Add<TemporalAggregate<int, SumAgg<int>, decltype(value)>>(value);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants(input);
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    auto snapshot = SnapshotAt(input, t);
    std::vector<int> expected;
    if (!snapshot.empty()) {
      int sum = 0;
      for (int v : snapshot) sum += v;
      expected.push_back(sum);
    }
    return expected;
  });
}

TEST_P(SnapshotProperty, MaxAggregateIsSnapshotEquivalent) {
  Random rng(GetParam());
  const auto input = RandomIntStream(rng);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto value = [](int v) { return v; };
  auto& agg =
      graph.Add<TemporalAggregate<int, MaxAgg<int>, decltype(value)>>(value);
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  auto instants = CriticalInstants(input);
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    auto snapshot = SnapshotAt(input, t);
    std::vector<int> expected;
    if (!snapshot.empty()) {
      expected.push_back(*std::max_element(snapshot.begin(), snapshot.end()));
    }
    return expected;
  });
}

TEST_P(SnapshotProperty, GroupedCountIsSnapshotEquivalent) {
  Random rng(GetParam());
  const auto input = RandomIntStream(rng);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto key = [](int v) { return v % 3; };
  auto value = [](int v) { return v; };
  auto& agg = graph.Add<
      GroupedAggregate<int, CountAgg<int>, decltype(key), decltype(value)>>(
      key, value);
  auto& sink = graph.Add<CollectorSink<std::pair<int, std::uint64_t>>>();
  source.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants(input);
  ExpectSnapshotsEqual<std::pair<int, std::uint64_t>>(
      instants, sink.elements(), [&](Timestamp t) {
        std::map<int, std::uint64_t> counts;
        for (int v : SnapshotAt(input, t)) ++counts[key(v)];
        std::vector<std::pair<int, std::uint64_t>> expected;
        for (const auto& [k, c] : counts) expected.emplace_back(k, c);
        return expected;
      });
}

TEST_P(SnapshotProperty, DistinctIsSnapshotEquivalent) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.payload_domain = 4;  // many duplicates
  const auto input = RandomIntStream(rng, options);

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& distinct = graph.Add<Distinct<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  source.AddSubscriber(distinct.input());
  distinct.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants(input);
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    auto snapshot = SnapshotAt(input, t);
    snapshot.erase(std::unique(snapshot.begin(), snapshot.end()),
                   snapshot.end());
    return snapshot;
  });
}

TEST_P(SnapshotProperty, DifferenceIsSnapshotEquivalent) {
  Random rng(GetParam());
  RandomStreamOptions options;
  options.count = 120;
  options.payload_domain = 4;
  const auto left = RandomIntStream(rng, options);
  const auto right = RandomIntStream(rng, options);

  QueryGraph graph;
  auto& sl = graph.Add<VectorSource<int>>(left);
  auto& sr = graph.Add<VectorSource<int>>(right);
  auto& diff = graph.Add<Difference<int>>();
  auto& sink = graph.Add<CollectorSink<int>>();
  sl.AddSubscriber(diff.left());
  sr.AddSubscriber(diff.right());
  diff.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  ExpectStartOrdered(sink.elements());
  auto instants = CriticalInstants<int>({&left, &right});
  ExpectSnapshotsEqual<int>(instants, sink.elements(), [&](Timestamp t) {
    auto l = SnapshotAt(left, t);   // sorted
    auto r = SnapshotAt(right, t);  // sorted
    std::vector<int> expected;
    std::size_t i = 0, j = 0;
    while (i < l.size()) {
      if (j < r.size() && r[j] == l[i]) {
        ++i;
        ++j;  // cancelled by one right copy
      } else if (j < r.size() && r[j] < l[i]) {
        ++j;
      } else {
        expected.push_back(l[i++]);
      }
    }
    return expected;
  });
}

TEST_P(SnapshotProperty, OperatorCompositionIsSnapshotEquivalent) {
  // window -> filter -> grouped count: a realistic mini-plan.
  Random rng(GetParam());
  RandomStreamOptions options;
  options.max_duration = 1;
  options.count = 150;
  const auto input = RandomIntStream(rng, options);
  const Timestamp w = 8;

  QueryGraph graph;
  auto& source = graph.Add<VectorSource<int>>(input);
  auto& window = graph.Add<TimeWindow<int>>(w);
  auto pred = [](int v) { return v != 0; };
  auto& filter = graph.Add<Filter<int, decltype(pred)>>(pred);
  auto key = [](int v) { return v % 2; };
  auto value = [](int v) { return v; };
  auto& agg = graph.Add<
      GroupedAggregate<int, CountAgg<int>, decltype(key), decltype(value)>>(
      key, value);
  auto& sink = graph.Add<CollectorSink<std::pair<int, std::uint64_t>>>();
  source.AddSubscriber(window.input());
  window.AddSubscriber(filter.input());
  filter.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  DrainRandomized(graph, GetParam());

  std::vector<StreamElement<int>> windowed;
  for (const auto& e : input) {
    windowed.push_back(StreamElement<int>(e.payload, e.start(),
                                          e.start() + w));
  }
  auto instants = CriticalInstants(windowed);
  ExpectSnapshotsEqual<std::pair<int, std::uint64_t>>(
      instants, sink.elements(), [&](Timestamp t) {
        std::map<int, std::uint64_t> counts;
        for (int v : SnapshotAt(windowed, t)) {
          if (pred(v)) ++counts[key(v)];
        }
        std::vector<std::pair<int, std::uint64_t>> expected;
        for (const auto& [k, c] : counts) expected.emplace_back(k, c);
        return expected;
      });
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace pipes
