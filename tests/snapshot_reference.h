#ifndef PIPES_TESTS_SNAPSHOT_REFERENCE_H_
#define PIPES_TESTS_SNAPSHOT_REFERENCE_H_

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/random.h"
#include "src/common/time.h"
#include "src/core/element.h"

/// \file
/// Naive materializing reference executor for snapshot-equivalence property
/// tests. The logical semantics of every operator in the temporal algebra
/// is defined per snapshot: for each time t, the multiset of payloads valid
/// at t. These helpers compute snapshots directly from element vectors so
/// that physical operator output can be checked against the logical
/// operator applied snapshot-by-snapshot — the central invariant of the
/// algebra (DESIGN.md section 4).

namespace pipes::testing {

/// Multiset snapshot (sorted vector) of `elements` at time `t`.
template <typename T>
std::vector<T> SnapshotAt(const std::vector<StreamElement<T>>& elements,
                          Timestamp t) {
  std::vector<T> snapshot;
  for (const StreamElement<T>& e : elements) {
    if (e.interval.Contains(t)) snapshot.push_back(e.payload);
  }
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

/// Smallest interval [lo, hi) covering every element's validity; empty
/// streams give [0, 0).
template <typename T>
TimeInterval Horizon(const std::vector<StreamElement<T>>& elements) {
  if (elements.empty()) return TimeInterval(0, 1);
  Timestamp lo = kMaxTimestamp;
  Timestamp hi = kMinTimestamp;
  for (const StreamElement<T>& e : elements) {
    lo = std::min(lo, e.start());
    hi = std::max(hi, e.end());
  }
  return TimeInterval(lo, hi);
}

/// All instants worth checking: every interval endpoint and its
/// predecessor (piecewise-constant snapshots change only at endpoints).
template <typename T>
std::vector<Timestamp> CriticalInstants(
    const std::vector<StreamElement<T>>& elements) {
  std::vector<Timestamp> instants;
  for (const StreamElement<T>& e : elements) {
    instants.push_back(e.start());
    if (e.start() > kMinTimestamp) instants.push_back(e.start() - 1);
    instants.push_back(e.end() - 1);
    if (e.end() < kMaxTimestamp) instants.push_back(e.end());
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());
  return instants;
}

/// Union of critical instants of several streams.
template <typename T>
std::vector<Timestamp> CriticalInstants(
    std::initializer_list<const std::vector<StreamElement<T>>*> streams) {
  std::vector<Timestamp> instants;
  for (const auto* s : streams) {
    auto part = CriticalInstants(*s);
    instants.insert(instants.end(), part.begin(), part.end());
  }
  std::sort(instants.begin(), instants.end());
  instants.erase(std::unique(instants.begin(), instants.end()),
                 instants.end());
  return instants;
}

/// Random start-ordered stream of int payloads with point or short
/// intervals — the raw material of the property tests.
struct RandomStreamOptions {
  std::size_t count = 200;
  std::int64_t payload_domain = 8;  // payloads drawn from [0, domain)
  Timestamp max_step = 3;           // gap between consecutive starts
  Timestamp max_duration = 10;      // interval length in [1, max_duration]
};

inline std::vector<StreamElement<int>> RandomIntStream(
    Random& rng, const RandomStreamOptions& options = {}) {
  std::vector<StreamElement<int>> elements;
  elements.reserve(options.count);
  Timestamp t = 0;
  for (std::size_t i = 0; i < options.count; ++i) {
    t += rng.UniformInt(0, options.max_step);
    const Timestamp duration = rng.UniformInt(1, options.max_duration);
    elements.push_back(StreamElement<int>(
        static_cast<int>(rng.UniformInt(0, options.payload_domain - 1)), t,
        t + duration));
  }
  return elements;
}

}  // namespace pipes::testing

#endif  // PIPES_TESTS_SNAPSHOT_REFERENCE_H_
