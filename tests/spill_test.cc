// Tests for the lossless spill-to-disk state tier (docs/memory.md): run
// write / merge-read round-trips, crash-safe temp files, the spillable
// hash SweepArea's epoch-gated deferred probing, the RAM → disk → shed
// ladder inside the temporal join (100% recall under budgets far below
// state size), memory-manager disk arbitration, and the spill fields of
// the metrics snapshot.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/algebra/join.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/engine/engine.h"
#include "src/memory/memory_manager.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/scheduler.h"
#include "src/sweeparea/spill.h"
#include "src/sweeparea/spillable_hash_sweep_area.h"

namespace pipes::sweeparea {
namespace {

using Elem = StreamElement<std::int64_t>;

ColumnarRun<std::int64_t> MakeRun(const std::vector<Elem>& elements) {
  ColumnarRun<std::int64_t> run;
  run.reserve(elements.size());
  for (const Elem& e : elements) run.Append(e);
  return run;
}

std::vector<Elem> ReadAll(const SpilledRun<std::int64_t>& run) {
  std::vector<Elem> out;
  RunReader<std::int64_t> reader(run);
  while (auto e = reader.Next()) out.push_back(*e);
  return out;
}

bool SameElement(const Elem& a, const Elem& b) {
  return a.payload == b.payload && a.start() == b.start() &&
         a.end() == b.end();
}

// --- Run write / read round-trip ---------------------------------------------

TEST(SpilledRun, WriteReadRoundTrip) {
  std::vector<Elem> elements;
  // More than one reader page, so the paged fseek/fread path is exercised.
  const std::size_t n = 3 * RunReader<std::int64_t>::kPageElements + 17;
  elements.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    elements.emplace_back(static_cast<std::int64_t>(i * 7),
                          static_cast<Timestamp>(i),
                          static_cast<Timestamp>(i + 100));
  }
  SpilledRun<std::int64_t> run(MakeRun(elements), /*seq=*/4, "/tmp");

  EXPECT_EQ(run.size(), n);
  EXPECT_EQ(run.seq(), 4u);
  EXPECT_EQ(run.min_start(), 0);
  EXPECT_EQ(run.max_end(), static_cast<Timestamp>(n - 1 + 100));
  EXPECT_EQ(run.bytes(), n * (2 * sizeof(Timestamp) + sizeof(std::int64_t)));

  const std::vector<Elem> back = ReadAll(run);
  ASSERT_EQ(back.size(), elements.size());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(SameElement(back[i], elements[i])) << "element " << i;
  }
}

TEST(MergedRunCursor, GlobalStartOrderAcrossRuns) {
  // Two runs with interleaved starts; ties broken by run epoch.
  std::vector<Elem> a, b;
  for (int i = 0; i < 50; ++i) a.emplace_back(1000 + i, 2 * i, 2 * i + 10);
  for (int i = 0; i < 50; ++i) b.emplace_back(2000 + i, 2 * i + 1, 2 * i + 11);
  b[0] = Elem(2000, 0, 10);  // start tie with a[0]: epoch must break it
  SpilledRun<std::int64_t> run_a(MakeRun(a), /*seq=*/0, "/tmp");
  SpilledRun<std::int64_t> run_b(MakeRun(b), /*seq=*/1, "/tmp");

  MergedRunCursor<std::int64_t> merge({&run_a, &run_b});
  std::vector<SpillScanItem<std::int64_t>> items;
  while (auto item = merge.Next()) items.push_back(*item);

  ASSERT_EQ(items.size(), 100u);
  for (std::size_t i = 1; i < items.size(); ++i) {
    const auto prev = std::make_tuple(items[i - 1].element.start(),
                                      items[i - 1].run_seq);
    const auto cur = std::make_tuple(items[i].element.start(),
                                     items[i].run_seq);
    EXPECT_LE(prev, cur) << "merge order violated at " << i;
  }
  // The tied pair comes out lower-epoch first.
  EXPECT_EQ(items[0].element.payload, 1000);
  EXPECT_EQ(items[1].element.payload, 2000);
}

// --- Crash-safe temp files ---------------------------------------------------

TEST(SpillFile, UnlinkedAfterOpenButStillReadable) {
  SpillFile file("/tmp");
  // The name is gone from the filesystem the moment the constructor
  // returns: a crash leaks nothing and no cleanup pass is ever needed.
  std::FILE* by_name = std::fopen(file.unlinked_path().c_str(), "rb");
  EXPECT_EQ(by_name, nullptr);
  if (by_name != nullptr) std::fclose(by_name);

  // The open handle still works for a full write/read cycle.
  const std::int64_t magic = 0x5150455350494C4C;
  ASSERT_EQ(std::fwrite(&magic, sizeof(magic), 1, file.handle()), 1u);
  std::fflush(file.handle());
  ASSERT_EQ(std::fseek(file.handle(), 0, SEEK_SET), 0);
  std::int64_t back = 0;
  ASSERT_EQ(std::fread(&back, sizeof(back), 1, file.handle()), 1u);
  EXPECT_EQ(back, magic);
}

// --- SpillableHashSweepArea --------------------------------------------------

struct KeyMod4 {
  std::int64_t operator()(const std::int64_t& v) const { return v % 4; }
};

using Area =
    SpillableHashSweepArea<std::int64_t, std::int64_t, KeyMod4, KeyMod4>;

TEST(SpillableHashSweepArea, SpillColdestMovesBytesToDisk) {
  Area area(KeyMod4{}, KeyMod4{});
  for (int i = 0; i < 10; ++i) area.Insert(Elem(i, i, i + 100));
  const std::size_t ram_before = area.ApproxBytes();
  EXPECT_EQ(area.SpilledBytes(), 0u);

  const std::size_t freed = area.SpillColdest();
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(area.ApproxBytes(), ram_before - freed);
  EXPECT_GT(area.SpilledBytes(), 0u);
  EXPECT_EQ(area.SpilledRunCount(), 1u);
  // Nothing was lost: hot + spilled still covers all ten elements.
  EXPECT_EQ(area.size(), 10u);
  EXPECT_EQ(area.hot_size() + area.spilled_size(), 10u);
  // Default keep_fraction 0.5: the oldest half paged out.
  EXPECT_EQ(area.spilled_size(), 5u);
}

TEST(SpillableHashSweepArea, DeferredProbeFindsSpilledMatches) {
  Area area(KeyMod4{}, KeyMod4{});
  for (int i = 0; i < 8; ++i) area.Insert(Elem(i, i, i + 100));
  area.SpillColdest();  // starts 0..3 now on disk

  // Probe key 0 (matches stored 0 and 4): the hot match comes back now,
  // the spilled one is staged for deferred service.
  std::vector<std::int64_t> hot;
  Elem probe(8, 10, 20);  // key 0, overlaps every stored interval
  area.Query(probe, [&](const Elem& s) { hot.push_back(s.payload); });
  EXPECT_EQ(hot, (std::vector<std::int64_t>{4}));
  EXPECT_TRUE(area.HasPendingProbes());
  EXPECT_EQ(area.MinPendingStart(), 10);

  std::vector<std::int64_t> deferred;
  area.ServicePendingProbes(
      [&](const Elem& p, const Elem& s) {
        EXPECT_EQ(p.payload, 8);
        deferred.push_back(s.payload);
      });
  EXPECT_EQ(deferred, (std::vector<std::int64_t>{0}));
  EXPECT_FALSE(area.HasPendingProbes());
}

TEST(SpillableHashSweepArea, EpochGateSkipsRunsSpilledAfterStaging) {
  Area area(KeyMod4{}, KeyMod4{});
  for (int i = 0; i < 8; ++i) area.Insert(Elem(i, i, i + 100));
  area.SpillColdest();  // run seq 0: starts 0..3

  // Stage a probe at epoch 1, collecting its hot matches immediately.
  std::vector<std::int64_t> hot;
  area.Query(Elem(8, 10, 20),
             [&](const Elem& s) { hot.push_back(s.payload); });
  EXPECT_EQ(hot, (std::vector<std::int64_t>{4}));

  // Spill again: 4 pages out into run seq 1 — but the probe already
  // matched it while resident, so deferred service must skip that run.
  area.SpillColdest();
  ASSERT_EQ(area.SpilledRunCount(), 2u);

  std::vector<std::int64_t> deferred;
  area.ServicePendingProbes(
      [&](const Elem&, const Elem& s) { deferred.push_back(s.payload); });
  // Exactly once overall: 0 from run seq 0, and 4 NOT repeated from seq 1.
  EXPECT_EQ(deferred, (std::vector<std::int64_t>{0}));
}

TEST(SpillableHashSweepArea, PurgeDropsDeadRunsUnread) {
  Area area(KeyMod4{}, KeyMod4{});
  for (int i = 0; i < 6; ++i) area.Insert(Elem(i, i, 50));
  area.SpillColdest();
  ASSERT_EQ(area.SpilledRunCount(), 1u);
  const std::size_t disk = area.SpilledBytes();
  EXPECT_GT(disk, 0u);

  // Watermark below max_end: the run survives.
  area.PurgeBefore(49);
  EXPECT_EQ(area.SpilledRunCount(), 1u);
  // Watermark at max_end: the whole run dies without being read.
  const std::size_t removed = area.PurgeBefore(50);
  EXPECT_EQ(area.SpilledRunCount(), 0u);
  EXPECT_EQ(area.SpilledBytes(), 0u);
  EXPECT_EQ(area.size(), 0u);
  EXPECT_EQ(removed, 6u);
}

}  // namespace
}  // namespace pipes::sweeparea

namespace pipes::algebra {
namespace {

struct KeyMod8 {
  std::int64_t operator()(const std::int64_t& v) const { return v % 8; }
};
struct CombinePair {
  std::int64_t operator()(const std::int64_t& l, const std::int64_t& r) const {
    return l * 100000 + r;
  }
};

using OutElem = StreamElement<std::int64_t>;

std::vector<std::tuple<Timestamp, Timestamp, std::int64_t>> Canon(
    const std::vector<OutElem>& elements) {
  std::vector<std::tuple<Timestamp, Timestamp, std::int64_t>> out;
  out.reserve(elements.size());
  for (const OutElem& e : elements) {
    out.emplace_back(e.start(), e.end(), e.payload);
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct SpillJoinRun {
  std::vector<OutElem> out;
  std::uint64_t shed = 0;
  /// High-water marks sampled every scheduler step: spilled runs hold the
  /// coldest state, so the watermark reaps them quickly and the end-of-run
  /// gauges read zero even when the join paged heavily.
  std::uint64_t peak_spilled_bytes = 0;
  std::uint64_t peak_spilled_partitions = 0;
  metadata::MetricsSnapshot snapshot;
};

/// Drives source -> join <- source to completion. `memory_limit` == max
/// means unmanaged; `spillable` selects the SweepArea flavour.
SpillJoinRun RunJoin(bool spillable, std::size_t memory_limit) {
  std::vector<StreamElement<std::int64_t>> left, right;
  for (std::int64_t i = 0; i < 400; ++i) {
    left.emplace_back(i, i, i + 80);
    right.emplace_back(i + 1, i, i + 80);
  }

  QueryGraph graph;
  auto& src_l =
      graph.Add<VectorSource<std::int64_t>>(left, "left", /*batch_size=*/16);
  auto& src_r =
      graph.Add<VectorSource<std::int64_t>>(right, "right", /*batch_size=*/16);
  auto* join_node = static_cast<Node*>(nullptr);
  memory::MemoryUser* user = nullptr;
  CollectorSink<std::int64_t>* sink = nullptr;
  if (spillable) {
    auto& join = graph.Add(MakeSpillableHashJoin<std::int64_t, std::int64_t>(
        KeyMod8{}, KeyMod8{}, CombinePair{}, "join"));
    src_l.AddSubscriber(join.left());
    src_r.AddSubscriber(join.right());
    auto& s = graph.Add<CollectorSink<std::int64_t>>("sink");
    join.AddSubscriber(s.input());
    join.SetMemoryLimit(memory_limit);
    join_node = &join;
    user = &join;
    sink = &s;
  } else {
    auto& join = graph.Add(MakeHashJoin<std::int64_t, std::int64_t>(
        KeyMod8{}, KeyMod8{}, CombinePair{}, "join"));
    src_l.AddSubscriber(join.left());
    src_r.AddSubscriber(join.right());
    auto& s = graph.Add<CollectorSink<std::int64_t>>("sink");
    join.AddSubscriber(s.input());
    join_node = &join;
    user = &join;
    sink = &s;
  }

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, /*batch_size=*/16);
  SpillJoinRun r;
  while (driver.Step()) {
    r.peak_spilled_bytes =
        std::max<std::uint64_t>(r.peak_spilled_bytes, join_node->SpilledBytes());
    r.peak_spilled_partitions = std::max<std::uint64_t>(
        r.peak_spilled_partitions, join_node->SpilledPartitions());
  }

  r.out = sink->elements();
  r.shed = join_node->ShedCount();
  r.snapshot = metadata::CaptureSnapshot(graph);
  (void)user;
  return r;
}

TEST(SpillableJoin, FullRecallUnderTightBudget) {
  const SpillJoinRun reference =
      RunJoin(/*spillable=*/false, std::numeric_limits<std::size_t>::max());
  ASSERT_GT(reference.out.size(), 0u);
  const std::size_t state_bytes = 2 * 400 * 56;  // rough: both areas full

  // A budget ~10x below peak state: the join must page, not shed, and the
  // output multiset must be exactly the unmanaged reference.
  const SpillJoinRun spilled = RunJoin(/*spillable=*/true, state_bytes / 10);
  EXPECT_EQ(spilled.shed, 0u);
  EXPECT_GT(spilled.peak_spilled_bytes, 0u);
  EXPECT_GT(spilled.peak_spilled_partitions, 0u);
  EXPECT_EQ(Canon(spilled.out), Canon(reference.out));
}

TEST(SpillableJoin, NoPressureMeansNoSpill) {
  const SpillJoinRun reference =
      RunJoin(/*spillable=*/false, std::numeric_limits<std::size_t>::max());
  const SpillJoinRun roomy =
      RunJoin(/*spillable=*/true, std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(roomy.peak_spilled_bytes, 0u);
  EXPECT_EQ(roomy.shed, 0u);
  EXPECT_EQ(Canon(roomy.out), Canon(reference.out));
}

TEST(SpillableJoin, SheddingIsOptInAndCountsAgain) {
  // Explicitly opting back into shedding restores the lossy behaviour —
  // exactly the combination lint rule P020 warns about.
  std::vector<StreamElement<std::int64_t>> left, right;
  for (std::int64_t i = 0; i < 200; ++i) {
    left.emplace_back(i, i, i + 60);
    right.emplace_back(i + 1, i, i + 60);
  }
  QueryGraph graph;
  auto& src_l = graph.Add<VectorSource<std::int64_t>>(left, "left");
  auto& src_r = graph.Add<VectorSource<std::int64_t>>(right, "right");
  auto& join = graph.Add(MakeSpillableHashJoin<std::int64_t, std::int64_t>(
      KeyMod8{}, KeyMod8{}, CombinePair{}, "join"));
  auto& sink = graph.Add<CountingSink<std::int64_t>>("sink");
  src_l.AddSubscriber(join.left());
  src_r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());

  // Descriptor before opt-in: spill-capable, shedding off (the default).
  EXPECT_TRUE(join.Describe().spill_capable);
  EXPECT_FALSE(join.Describe().shedding_enabled);

  join.set_shed_policy(ShedPolicy::kEvictFromLargerArea);
  join.SetDiskBudget(0);  // disk tier exhausted: pressure falls to shed
  join.SetMemoryLimit(2048);
  EXPECT_TRUE(join.Describe().shedding_enabled);

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
  EXPECT_GT(join.ShedCount(), 0u);
}

TEST(SpillableJoin, SnapshotReportsAndRoundTripsSpillFields) {
  const std::size_t tight = 2 * 400 * 56 / 10;
  const SpillJoinRun spilled = RunJoin(/*spillable=*/true, tight);

  // CaptureSnapshot happened after the drain; spilled runs may already be
  // purged by then, so capture mid-state instead: re-check via the node
  // fields recorded before capture when present, else skip.
  const metadata::NodeSnapshot* join_snap = spilled.snapshot.FindNode("join");
  ASSERT_NE(join_snap, nullptr);

  // JSON round-trip must preserve the spill fields exactly (whatever their
  // values), and documents without spill stay byte-identical to pre-spill
  // output: no "spilled_" keys appear when both fields are zero.
  const std::string json = metadata::ToJson(spilled.snapshot);
  auto parsed = metadata::SnapshotFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == spilled.snapshot);

  const SpillJoinRun clean =
      RunJoin(/*spillable=*/false, std::numeric_limits<std::size_t>::max());
  const std::string clean_json = metadata::ToJson(clean.snapshot);
  EXPECT_EQ(clean_json.find("spilled_bytes"), std::string::npos);
  EXPECT_EQ(clean_json.find("disk_budget_bytes"), std::string::npos);
  auto clean_parsed = metadata::SnapshotFromJson(clean_json);
  ASSERT_TRUE(clean_parsed.ok()) << clean_parsed.status().ToString();
  EXPECT_TRUE(clean_parsed.value() == clean.snapshot);
}

TEST(SpillableJoin, MidRunSnapshotShowsSpilledState) {
  // Step the scheduler partway so spilled runs are still live at capture
  // time, then check the snapshot surfaces them (node fields + DOT).
  std::vector<StreamElement<std::int64_t>> left, right;
  for (std::int64_t i = 0; i < 400; ++i) {
    left.emplace_back(i, i, i + 80);
    right.emplace_back(i + 1, i, i + 80);
  }
  QueryGraph graph;
  auto& src_l = graph.Add<VectorSource<std::int64_t>>(left, "left");
  auto& src_r = graph.Add<VectorSource<std::int64_t>>(right, "right");
  auto& join = graph.Add(MakeSpillableHashJoin<std::int64_t, std::int64_t>(
      KeyMod8{}, KeyMod8{}, CombinePair{}, "join"));
  auto& sink = graph.Add<CountingSink<std::int64_t>>("sink");
  src_l.AddSubscriber(join.left());
  src_r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  join.SetMemoryLimit(4096);

  // Step until the first spilled run exists (the watermark reaps cold runs
  // quickly, so capture must happen the moment one is live).
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  while (join.SpilledBytes() == 0 && driver.Step()) {
  }
  ASSERT_GT(join.SpilledBytes(), 0u);

  const metadata::MetricsSnapshot snap = metadata::CaptureSnapshot(graph);
  const metadata::NodeSnapshot* js = snap.FindNode("join");
  ASSERT_NE(js, nullptr);
  EXPECT_EQ(js->spilled_bytes, join.SpilledBytes());
  EXPECT_EQ(js->spilled_partitions, join.SpilledPartitions());
  EXPECT_GT(js->spilled_bytes, 0u);
  // RAM gauge stays RAM-only.
  EXPECT_EQ(js->memory_bytes, join.ApproxMemoryBytes());

  const std::string json = metadata::ToJson(snap);
  EXPECT_NE(json.find("\"spilled_bytes\""), std::string::npos);
  auto parsed = metadata::SnapshotFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value() == snap);

  const std::string dot = metadata::ToDot(snap);
  EXPECT_NE(dot.find("spill"), std::string::npos);

  driver.RunToCompletion();
}

}  // namespace
}  // namespace pipes::algebra

namespace pipes::memory {
namespace {

/// Scripted spill-capable user.
class FakeSpillUser : public MemoryUser {
 public:
  explicit FakeSpillUser(std::size_t disk_usage) : disk_(disk_usage) {}

  std::size_t MemoryUsage() const override { return 0; }
  void SetMemoryLimit(std::size_t) override {}
  bool SpillCapable() const override { return true; }
  std::size_t DiskUsage() const override { return disk_; }
  void SetDiskBudget(std::size_t bytes) override { disk_budget_ = bytes; }

  std::size_t disk_budget() const { return disk_budget_; }

 private:
  std::size_t disk_;
  std::size_t disk_budget_ = std::numeric_limits<std::size_t>::max();
};

/// Resident-only user: must never receive a disk budget call.
class ResidentUser : public MemoryUser {
 public:
  std::size_t MemoryUsage() const override { return 100; }
  void SetMemoryLimit(std::size_t) override {}
  void SetDiskBudget(std::size_t) override { ++disk_calls_; }

  int disk_calls() const { return disk_calls_; }

 private:
  int disk_calls_ = 0;
};

TEST(MemoryManagerDisk, UnlimitedByDefault) {
  MemoryManager manager(1 << 20, std::make_unique<UniformStrategy>());
  FakeSpillUser user(500);
  ASSERT_TRUE(manager.Register(user).ok());
  EXPECT_EQ(manager.disk_budget(), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(user.disk_budget(), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(manager.TotalDiskUsage(), 500u);
  EXPECT_EQ(manager.num_spill_capable_users(), 1u);
}

TEST(MemoryManagerDisk, BoundedBudgetSplitsByUsage) {
  MemoryManager manager(1 << 20, std::make_unique<UniformStrategy>());
  FakeSpillUser big(900), small(100);
  ResidentUser resident;
  ASSERT_TRUE(manager.Register(big).ok());
  ASSERT_TRUE(manager.Register(small).ok());
  ASSERT_TRUE(manager.Register(resident).ok());

  manager.set_disk_budget(10000);
  EXPECT_EQ(manager.TotalDiskUsage(), 1000u);
  // The heavy spiller gets the larger share; together they get the budget.
  EXPECT_GT(big.disk_budget(), small.disk_budget());
  EXPECT_LE(big.disk_budget() + small.disk_budget(), 10000u);
  EXPECT_GT(big.disk_budget() + small.disk_budget(), 9000u);
  // Non-spillable users are left out of disk arbitration entirely.
  EXPECT_EQ(resident.disk_calls(), 0);
}

TEST(MemoryManagerDisk, UnregisterLiftsDiskBudget) {
  MemoryManager manager(1 << 20, std::make_unique<UniformStrategy>());
  FakeSpillUser user(100);
  ASSERT_TRUE(manager.Register(user).ok());
  manager.set_disk_budget(4096);
  EXPECT_LT(user.disk_budget(), std::numeric_limits<std::size_t>::max());
  ASSERT_TRUE(manager.Unregister(user).ok());
  EXPECT_EQ(user.disk_budget(), std::numeric_limits<std::size_t>::max());
  EXPECT_EQ(manager.num_spill_capable_users(), 0u);
}

TEST(EngineDisk, OptionsWireIntoManagerAndStats) {
  engine::EngineOptions options;
  options.disk_budget_bytes = 12345;
  engine::Engine engine(options);
  EXPECT_EQ(engine.memory_manager().disk_budget(), 12345u);
  EXPECT_EQ(engine.stats().spilled_bytes, 0u);
}

}  // namespace
}  // namespace pipes::memory
