// Tests for the SweepArea framework and the multi-way join.

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/sweeparea/hash_sweep_area.h"
#include "src/sweeparea/list_sweep_area.h"
#include "src/sweeparea/multiway_join.h"
#include "src/sweeparea/tree_sweep_area.h"
#include "tests/snapshot_reference.h"

namespace pipes::sweeparea {
namespace {

template <typename SA, typename Probe>
std::vector<int> QueryPayloads(const SA& area, const Probe& probe) {
  std::vector<int> out;
  area.Query(probe, [&](const StreamElement<int>& e) {
    out.push_back(e.payload);
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ListSweepArea, InsertQueryPurge) {
  auto pred = [](int stored, int probe) { return stored < probe; };
  ListSweepArea<int, int, decltype(pred)> area(pred);
  area.Insert(StreamElement<int>(1, 0, 10));
  area.Insert(StreamElement<int>(5, 0, 20));
  area.Insert(StreamElement<int>(9, 0, 30));

  // Probe valid [5, 15): all intervals overlap; predicate keeps 1 and 5.
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(7, 5, 15)),
            (std::vector<int>{1, 5}));
  // Probe valid [25, 35): only the third element's interval overlaps.
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(100, 25, 35)),
            (std::vector<int>{9}));

  EXPECT_EQ(area.PurgeBefore(20), 2u);  // ends 10 and 20
  EXPECT_EQ(area.size(), 1u);
  EXPECT_EQ(area.PurgeBefore(20), 0u);  // min_end fast path
}

TEST(ListSweepArea, EvictOneRemovesOldest) {
  auto pred = [](int, int) { return true; };
  ListSweepArea<int, int, decltype(pred)> area(pred);
  EXPECT_FALSE(area.EvictOne());
  area.Insert(StreamElement<int>(1, 0, 10));
  area.Insert(StreamElement<int>(2, 1, 10));
  StreamElement<int> evicted;
  EXPECT_TRUE(area.EvictOne(&evicted));
  EXPECT_EQ(evicted.payload, 1);
  EXPECT_EQ(area.size(), 1u);
}

TEST(ListSweepArea, ByteAccountingTracksContent) {
  auto pred = [](int, int) { return true; };
  ListSweepArea<int, int, decltype(pred)> area(pred);
  EXPECT_EQ(area.ApproxBytes(), 0u);
  area.Insert(StreamElement<int>(1, 0, 10));
  const std::size_t one = area.ApproxBytes();
  EXPECT_GT(one, 0u);
  area.Insert(StreamElement<int>(2, 0, 10));
  EXPECT_EQ(area.ApproxBytes(), 2 * one);
  area.PurgeBefore(100);
  EXPECT_EQ(area.ApproxBytes(), 0u);
}

TEST(HashSweepArea, ProbesOnlyMatchingBucket) {
  auto key = [](int v) { return v % 10; };
  HashSweepArea<int, int, decltype(key), decltype(key)> area(key, key);
  area.Insert(StreamElement<int>(13, 0, 10));
  area.Insert(StreamElement<int>(23, 0, 10));
  area.Insert(StreamElement<int>(14, 0, 10));

  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(3, 5, 6)),
            (std::vector<int>{13, 23}));
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(4, 5, 6)),
            (std::vector<int>{14}));
  EXPECT_TRUE(QueryPayloads(area, StreamElement<int>(5, 5, 6)).empty());
}

TEST(HashSweepArea, ResidualPredicateFilters) {
  auto key = [](int v) { return v % 10; };
  auto residual = [](int stored, int probe) { return stored > probe; };
  HashSweepArea<int, int, decltype(key), decltype(key), decltype(residual)>
      area(key, key, residual);
  area.Insert(StreamElement<int>(13, 0, 10));
  area.Insert(StreamElement<int>(33, 0, 10));
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(23, 5, 6)),
            (std::vector<int>{33}));
}

TEST(HashSweepArea, PurgeDropsEmptyBucketsAndEvictTargetsLargestBucket) {
  auto key = [](int v) { return v % 10; };
  HashSweepArea<int, int, decltype(key), decltype(key)> area(key, key);
  area.Insert(StreamElement<int>(1, 0, 5));
  area.Insert(StreamElement<int>(11, 0, 5));
  area.Insert(StreamElement<int>(21, 0, 5));
  area.Insert(StreamElement<int>(2, 0, 50));
  EXPECT_EQ(area.size(), 4u);

  StreamElement<int> evicted;
  ASSERT_TRUE(area.EvictOne(&evicted));
  EXPECT_EQ(evicted.payload % 10, 1);  // largest bucket is key 1

  EXPECT_EQ(area.PurgeBefore(10), 2u);
  EXPECT_EQ(area.size(), 1u);
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(12, 1, 2)),
            std::vector<int>{2});
}

TEST(TreeSweepArea, RangeQueryScansBandOnly) {
  auto key = [](int v) { return v; };
  auto range = [](int probe) { return std::make_pair(probe - 2, probe + 2); };
  TreeSweepArea<int, int, decltype(key), decltype(range)> area(key, range);
  for (int v : {1, 4, 5, 6, 9}) {
    area.Insert(StreamElement<int>(v, 0, 10));
  }
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(5, 2, 3)),
            (std::vector<int>{4, 5, 6}));
  EXPECT_EQ(QueryPayloads(area, StreamElement<int>(0, 2, 3)),
            (std::vector<int>{1}));
}

TEST(TreeSweepArea, PurgeAndEvict) {
  auto key = [](int v) { return v; };
  auto range = [](int probe) { return std::make_pair(probe, probe); };
  TreeSweepArea<int, int, decltype(key), decltype(range)> area(key, range);
  area.Insert(StreamElement<int>(5, 0, 10));
  area.Insert(StreamElement<int>(3, 0, 20));
  EXPECT_EQ(area.PurgeBefore(15), 1u);
  EXPECT_EQ(area.size(), 1u);
  EXPECT_TRUE(area.EvictOne());
  EXPECT_EQ(area.size(), 0u);
}

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();
}

TEST(MultiwayJoin, ThreeWayEquiJoinSnapshotEquivalent) {
  Random rng(99);
  testing::RandomStreamOptions options;
  options.count = 60;
  options.payload_domain = 4;
  const auto a = testing::RandomIntStream(rng, options);
  const auto b = testing::RandomIntStream(rng, options);
  const auto c = testing::RandomIntStream(rng, options);

  QueryGraph graph;
  auto& sa = graph.Add<VectorSource<int>>(a);
  auto& sb = graph.Add<VectorSource<int>>(b);
  auto& sc = graph.Add<VectorSource<int>>(c);
  auto key = [](int v) { return v; };
  auto& join = graph.Add<MultiwayJoin<int, decltype(key)>>(3, key);
  auto& sink = graph.Add<CollectorSink<std::vector<int>>>();
  sa.AddSubscriber(join.input(0));
  sb.AddSubscriber(join.input(1));
  sc.AddSubscriber(join.input(2));
  join.AddSubscriber(sink.input());
  Drain(graph);

  // Reference: per critical instant, count key-equal triples.
  auto instants = testing::CriticalInstants<int>({&a, &b, &c});
  for (Timestamp t : instants) {
    auto snap_a = testing::SnapshotAt(a, t);
    auto snap_b = testing::SnapshotAt(b, t);
    auto snap_c = testing::SnapshotAt(c, t);
    std::vector<std::vector<int>> expected;
    for (int va : snap_a) {
      for (int vb : snap_b) {
        for (int vc : snap_c) {
          if (va == vb && vb == vc) expected.push_back({va, vb, vc});
        }
      }
    }
    auto actual = testing::SnapshotAt(sink.elements(), t);
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(actual, expected) << "t=" << t;
  }
}

TEST(MultiwayJoin, OutputIsStartOrderedAndPurges) {
  QueryGraph graph;
  std::vector<StreamElement<int>> s1, s2, s3;
  for (int i = 0; i < 50; ++i) {
    s1.push_back(StreamElement<int>(i % 3, i * 5, i * 5 + 10));
    s2.push_back(StreamElement<int>(i % 3, i * 5 + 1, i * 5 + 11));
    s3.push_back(StreamElement<int>(i % 3, i * 5 + 2, i * 5 + 12));
  }
  auto& a = graph.Add<VectorSource<int>>(s1);
  auto& b = graph.Add<VectorSource<int>>(s2);
  auto& c = graph.Add<VectorSource<int>>(s3);
  auto key = [](int v) { return v; };
  auto& join = graph.Add<MultiwayJoin<int, decltype(key)>>(3, key);
  auto& sink = graph.Add<CollectorSink<std::vector<int>>>();
  a.AddSubscriber(join.input(0));
  b.AddSubscriber(join.input(1));
  c.AddSubscriber(join.input(2));
  join.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (std::size_t i = 1; i < sink.elements().size(); ++i) {
    EXPECT_LE(sink.elements()[i - 1].start(), sink.elements()[i].start());
  }
  // With aligned progress the per-input state cannot hold the whole input.
  EXPECT_LT(join.state_size(), 3 * 50u);
}

TEST(MultiwayJoin, RejectsFewerThanTwoInputsByContract) {
  auto key = [](int v) { return v; };
  using JoinType = MultiwayJoin<int, decltype(key)>;
  EXPECT_DEATH(JoinType(1, key), "at least two");
}

}  // namespace
}  // namespace pipes::sweeparea
