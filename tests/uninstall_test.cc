// Tests for dynamic query removal: uninstalling continuous queries from a
// running graph with reference-counted shared subplans.

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cql/catalog.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"

namespace pipes::optimizer {
namespace {

using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

class UninstallTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<StreamElement<Tuple>> input;
    for (int i = 0; i < 20; ++i) {
      input.push_back(StreamElement<Tuple>::Point(
          Tuple{Value(static_cast<std::int64_t>(i % 4)),
                Value(static_cast<double>(i))},
          i * 100));
    }
    source_ = &graph_.Add<VectorSource<Tuple>>(input, "trades");
    ASSERT_TRUE(catalog_
                    .RegisterStream("trades",
                                    Schema({{"symbol", ValueType::kInt},
                                            {"price", ValueType::kDouble}}),
                                    source_)
                    .ok());
  }

  std::size_t GraphSize() const { return graph_.size(); }

  QueryGraph graph_;
  cql::Catalog catalog_;
  VectorSource<Tuple>* source_ = nullptr;
};

constexpr const char* kQueryA =
    "SELECT symbol, MAX(price) AS top FROM trades [RANGE 10 SECONDS] "
    "WHERE price > 2 GROUP BY symbol";
constexpr const char* kQueryB =
    "SELECT symbol, COUNT(*) AS n FROM trades [RANGE 10 SECONDS] "
    "WHERE price > 2 GROUP BY symbol";

TEST_F(UninstallTest, UninstallRemovesAllOperators) {
  PlanManager manager(&graph_, &catalog_);
  const std::size_t baseline = GraphSize();  // just the source
  auto query = manager.InstallQuery(kQueryA);
  ASSERT_TRUE(query.ok());
  EXPECT_GT(GraphSize(), baseline);
  EXPECT_EQ(manager.installed_queries(), 1u);

  ASSERT_TRUE(manager.UninstallQuery(query->query_id).ok());
  EXPECT_EQ(GraphSize(), baseline);
  EXPECT_EQ(manager.installed_queries(), 0u);
  EXPECT_EQ(manager.live_subplans(), 0u);
  // The source is untouched and has no leftover subscribers.
  EXPECT_TRUE(source_->downstream().empty());
}

TEST_F(UninstallTest, SharedSubplansSurviveUntilLastQueryLeaves) {
  PlanManager manager(&graph_, &catalog_);
  const std::size_t baseline = GraphSize();
  auto a = manager.InstallQuery(kQueryA);
  auto b = manager.InstallQuery(kQueryB);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(b->operators_reused, 0u);  // shares scan+window+filter

  const std::size_t with_both = GraphSize();
  ASSERT_TRUE(manager.UninstallQuery(a->query_id).ok());
  // B still runs: the shared prefix must remain.
  EXPECT_GT(GraphSize(), baseline);
  EXPECT_LT(GraphSize(), with_both);

  // B still produces results after A left.
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  b->output->AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler(graph_, strategy).RunToCompletion();
  EXPECT_FALSE(sink.elements().empty());

  // Detach the sink, then B can leave too; the graph returns to baseline
  // (plus the test's sink node).
  ASSERT_TRUE(b->output->UnsubscribeFrom(sink.input()).ok());
  ASSERT_TRUE(manager.UninstallQuery(b->query_id).ok());
  EXPECT_EQ(GraphSize(), baseline + 1);  // +1 = the detached sink
  EXPECT_TRUE(source_->downstream().empty());
}

TEST_F(UninstallTest, FailsWhileSinkStillSubscribed) {
  PlanManager manager(&graph_, &catalog_);
  auto query = manager.InstallQuery(kQueryA);
  ASSERT_TRUE(query.ok());
  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  query->output->AddSubscriber(sink.input());

  const std::size_t before = GraphSize();
  const Status status = manager.UninstallQuery(query->query_id);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(GraphSize(), before);  // nothing was modified

  ASSERT_TRUE(query->output->UnsubscribeFrom(sink.input()).ok());
  EXPECT_TRUE(manager.UninstallQuery(query->query_id).ok());
}

TEST_F(UninstallTest, UnknownIdAndDoubleUninstall) {
  PlanManager manager(&graph_, &catalog_);
  EXPECT_EQ(manager.UninstallQuery(999).code(), StatusCode::kNotFound);
  auto query = manager.InstallQuery(kQueryA);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(manager.UninstallQuery(query->query_id).ok());
  EXPECT_EQ(manager.UninstallQuery(query->query_id).code(),
            StatusCode::kNotFound);
}

TEST_F(UninstallTest, ReinstallAfterUninstallRebuilds) {
  PlanManager manager(&graph_, &catalog_);
  auto first = manager.InstallQuery(kQueryA);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(manager.UninstallQuery(first->query_id).ok());

  auto second = manager.InstallQuery(kQueryA);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->operators_reused, 0u);  // nothing left to share
  EXPECT_EQ(second->operators_created, first->operators_created);

  auto& sink = graph_.Add<CollectorSink<Tuple>>();
  second->output->AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler(graph_, strategy).RunToCompletion();
  EXPECT_FALSE(sink.elements().empty());
}

TEST_F(UninstallTest, NonSharingQueriesUninstallIndependently) {
  PlanManager manager(&graph_, &catalog_, /*sharing=*/false);
  const std::size_t baseline = GraphSize();
  auto a = manager.InstallQuery(kQueryA);
  auto b = manager.InstallQuery(kQueryA);  // identical text, separate plans
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->output, b->output);

  ASSERT_TRUE(manager.UninstallQuery(a->query_id).ok());
  EXPECT_GT(GraphSize(), baseline);  // b's operators remain
  ASSERT_TRUE(manager.UninstallQuery(b->query_id).ok());
  EXPECT_EQ(GraphSize(), baseline);
}

}  // namespace
}  // namespace pipes::optimizer
