// Tests for the workload query libraries: the traffic continuous queries
// (including the sustained-condition incident detector) and the NEXMark
// query fragments.

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/nexmark_queries.h"
#include "src/workloads/traffic_queries.h"

namespace pipes::workloads {
namespace {

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 512);
  driver.RunToCompletion();
}

// --- SustainedConditionDetector ------------------------------------------------

struct KeyOfPair {
  int operator()(const std::pair<int, double>& p) const { return p.first; }
};
struct BelowTen {
  bool operator()(const std::pair<int, double>& p) const {
    return p.second < 10.0;
  }
};
using PairDetector =
    SustainedConditionDetector<std::pair<int, double>, KeyOfPair, BelowTen>;

std::vector<StreamElement<std::pair<int, double>>> Segments(
    std::initializer_list<std::tuple<int, double, Timestamp, Timestamp>>
        rows) {
  std::vector<StreamElement<std::pair<int, double>>> out;
  for (const auto& [key, value, start, end] : rows) {
    out.push_back(StreamElement<std::pair<int, double>>(
        std::make_pair(key, value), start, end));
  }
  return out;
}

TEST(SustainedCondition, FiresOncePerLongEnoughRun) {
  QueryGraph graph;
  // Key 1: below threshold on [0,30) contiguously -> alarm at >= 20.
  // Key 2: below only [0,10), gap, below [20,30) -> never 20 long.
  auto& source = graph.Add<VectorSource<std::pair<int, double>>>(Segments({
      {1, 5.0, 0, 10},
      {2, 5.0, 0, 10},
      {1, 7.0, 10, 20},
      {2, 50.0, 10, 20},  // condition broken for key 2
      {1, 6.0, 20, 30},
      {2, 5.0, 20, 30},
  }));
  auto& detector = graph.Add<PairDetector>(KeyOfPair{}, BelowTen{},
                                           /*min_duration=*/20);
  auto& sink = graph.Add<CollectorSink<Sustained<int>>>();
  source.AddSubscriber(detector.input());
  detector.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].payload.key, 1);
  EXPECT_EQ(sink.elements()[0].payload.since, 0);
  EXPECT_GE(sink.elements()[0].payload.duration, 20);
}

TEST(SustainedCondition, GapResetsRunAndNewRunCanFire) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<std::pair<int, double>>>(Segments({
      {1, 5.0, 0, 10},
      {1, 5.0, 30, 45},  // gap: new run
      {1, 5.0, 45, 60},  // run [30,60) reaches 25 >= 20
  }));
  auto& detector = graph.Add<PairDetector>(KeyOfPair{}, BelowTen{}, 20);
  auto& sink = graph.Add<CollectorSink<Sustained<int>>>();
  source.AddSubscriber(detector.input());
  detector.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].payload.since, 30);
}

// --- Traffic query fragments ----------------------------------------------------

class TrafficQueriesTest : public ::testing::Test {
 protected:
  Source<TrafficReading>& MakeSource(QueryGraph& graph,
                                     TrafficOptions options) {
    auto generator = std::make_shared<TrafficGenerator>(std::move(options));
    return graph.Add<FunctionSource<TrafficReading>>(
        [generator]() -> std::optional<StreamElement<TrafficReading>> {
          auto reading = generator->Next();
          if (!reading.has_value()) return std::nullopt;
          return StreamElement<TrafficReading>::Point(*reading,
                                                      reading->timestamp);
        },
        "traffic");
  }

  TrafficOptions SmallOptions() {
    TrafficOptions options;
    options.num_detectors = 6;
    options.num_lanes = 3;
    options.duration_ms = 3600'000;  // one hour
    options.base_rate_per_s = 0.1;
    return options;
  }
};

TEST_F(TrafficQueriesTest, HovAverageGroupsByDirection) {
  QueryGraph graph;
  auto& source = MakeSource(graph, SmallOptions());
  auto& query = BuildHovAverageSpeedQuery(graph, source,
                                          /*range=*/600'000,
                                          /*slide=*/300'000);
  auto& sink = graph.Add<CollectorSink<std::pair<std::int32_t, double>>>();
  query.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  std::set<std::int32_t> directions;
  for (const auto& e : sink.elements()) {
    directions.insert(e.payload.first);
    // HOV speeds: base 100 + bonus 12 modulated by congestion and noise.
    EXPECT_GT(e.payload.second, 40.0);
    EXPECT_LT(e.payload.second, 180.0);
  }
  EXPECT_EQ(directions, (std::set<std::int32_t>{0, 1}));
}

TEST_F(TrafficQueriesTest, CongestionQueryFindsInjectedIncidentOnly) {
  TrafficOptions options = SmallOptions();
  TrafficIncident incident;
  incident.begin = 600'000;
  incident.end = 1'800'000;  // 20 minutes of jam
  incident.detector = 4;
  incident.direction = 0;
  incident.speed_factor = 0.2;
  incident.upstream_reach = 1;
  options.incidents = {incident};

  QueryGraph graph;
  auto& source = MakeSource(graph, options);
  auto& query = BuildCongestionQuery(graph, source, /*direction=*/0,
                                     /*avg_window=*/300'000,
                                     /*avg_slide=*/60'000,
                                     /*speed_threshold=*/40.0,
                                     /*min_duration=*/600'000);
  auto& sink = graph.Add<CollectorSink<Sustained<std::int32_t>>>();
  query.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    // Alarms only at the incident's detectors (4 and its neighbor 3) and
    // roughly within the incident window.
    EXPECT_GE(e.payload.key, 3);
    EXPECT_LE(e.payload.key, 4);
    EXPECT_GE(e.payload.since, incident.begin - 300'000);
    EXPECT_LE(e.payload.since + e.payload.duration,
              incident.end + 600'000);
  }
}

// --- NEXMark query fragments ------------------------------------------------------

Source<NexmarkEvent>& MakeNexmarkSource(QueryGraph& graph,
                                        std::size_t num_events) {
  NexmarkOptions options;
  options.num_events = num_events;
  auto generator = std::make_shared<NexmarkGenerator>(options);
  return graph.Add<FunctionSource<NexmarkEvent>>(
      [generator]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto event = generator->Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*event), t);
      },
      "nexmark");
}

TEST(NexmarkQueries, SplitStreamsPartitionTheEvents) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 1000);
  auto& bids = BuildBidStream(graph, events);
  auto& auctions = BuildAuctionStream(graph, events);
  auto& persons = BuildPersonStream(graph, events);
  auto& bid_sink = graph.Add<CountingSink<Bid>>();
  auto& auction_sink = graph.Add<CountingSink<Auction>>();
  auto& person_sink = graph.Add<CountingSink<Person>>();
  bids.AddSubscriber(bid_sink.input());
  auctions.AddSubscriber(auction_sink.input());
  persons.AddSubscriber(person_sink.input());
  Drain(graph);

  EXPECT_EQ(bid_sink.count() + auction_sink.count() + person_sink.count(),
            1000u);
  EXPECT_EQ(person_sink.count(), 20u);    // 1 in 50
  EXPECT_EQ(auction_sink.count(), 60u);   // 3 in 50
}

TEST(NexmarkQueries, CurrencyConversionScalesPrices) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 500);
  auto& bids = BuildBidStream(graph, events);
  auto& euros = BuildCurrencyConversion(graph, bids, 0.5);
  std::vector<double> original;
  std::vector<double> converted;
  auto& bid_sink = graph.Add<CallbackSink<Bid>>(
      [&](const StreamElement<Bid>& e) {
        original.push_back(e.payload.price);
      });
  auto& euro_sink = graph.Add<CallbackSink<Bid>>(
      [&](const StreamElement<Bid>& e) {
        converted.push_back(e.payload.price);
      });
  bids.AddSubscriber(bid_sink.input());
  euros.AddSubscriber(euro_sink.input());
  Drain(graph);

  ASSERT_EQ(original.size(), converted.size());
  ASSERT_FALSE(original.empty());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(converted[i], original[i] * 0.5);
  }
}

TEST(NexmarkQueries, HighestBidTumblesAndNeverDecreasesWithinWindow) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 5000);
  auto& bids = BuildBidStream(graph, events);
  auto& highest = BuildHighestBidQuery(graph, bids, /*period=*/10'000);
  auto& sink = graph.Add<CollectorSink<double>>();
  highest.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    // Tumbling windows: results live on period-aligned segments.
    EXPECT_EQ(e.start() % 10'000, 0);
    EXPECT_GT(e.payload, 0.0);
  }
}

TEST(NexmarkQueries, BidsPerAuctionCountsMatchManualCount) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 2000);
  auto& bids = BuildBidStream(graph, events);
  auto& counts = BuildBidsPerAuctionQuery(graph, bids, /*range=*/20'000,
                                          /*slide=*/20'000);
  auto& count_sink =
      graph.Add<CollectorSink<std::pair<std::int64_t, std::uint64_t>>>();
  std::map<std::pair<Timestamp, std::int64_t>, std::uint64_t> manual;
  auto& manual_sink = graph.Add<CallbackSink<Bid>>(
      [&](const StreamElement<Bid>& e) {
        // Tumbling bucket of this bid (aligned like the slide window).
        const Timestamp bucket = ((e.start() / 20'000) + 1) * 20'000;
        ++manual[{bucket, e.payload.auction}];
      });
  counts.AddSubscriber(count_sink.input());
  bids.AddSubscriber(manual_sink.input());
  Drain(graph);

  ASSERT_FALSE(count_sink.elements().empty());
  for (const auto& e : count_sink.elements()) {
    const auto key = std::make_pair(e.start(), e.payload.first);
    auto it = manual.find(key);
    // Every reported count matches the manual tumbling-bucket count.
    if (e.start() % 20'000 == 0 && it != manual.end()) {
      EXPECT_EQ(e.payload.second, it->second)
          << "auction " << e.payload.first << " at " << e.start();
    }
  }
}

TEST(NexmarkQueries, OpenAuctionJoinMatchesOnlyOpenAuctions) {
  QueryGraph graph;
  // Auction 1 open [0, 100); auction 2 open [50, 200).
  Auction a1;
  a1.id = 1;
  a1.open_time = 0;
  a1.expires = 100;
  Auction a2;
  a2.id = 2;
  a2.open_time = 50;
  a2.expires = 200;
  AuctionValidity validity;
  std::vector<StreamElement<Auction>> auctions = {
      StreamElement<Auction>(a1, validity(a1)),
      StreamElement<Auction>(a2, validity(a2))};
  auto& auction_source = graph.Add<VectorSource<Auction>>(auctions);

  auto make_bid = [](std::int64_t auction, Timestamp t) {
    Bid b;
    b.auction = auction;
    b.time = t;
    b.price = 10;
    return StreamElement<Bid>::Point(b, t);
  };
  std::vector<StreamElement<Bid>> bids = {
      make_bid(1, 10),    // auction 1 open -> match
      make_bid(2, 20),    // auction 2 not open yet -> no match
      make_bid(1, 150),   // auction 1 already closed -> no match
      make_bid(2, 150),   // auction 2 open -> match
  };
  auto& bid_source = graph.Add<VectorSource<Bid>>(bids);

  auto& join = BuildOpenAuctionJoin(graph, bid_source, auction_source);
  auto& sink = graph.Add<CollectorSink<BidWithAuction>>();
  join.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].payload.bid.time, 10);
  EXPECT_EQ(sink.elements()[0].payload.auction.id, 1);
  EXPECT_EQ(sink.elements()[1].payload.bid.time, 150);
  EXPECT_EQ(sink.elements()[1].payload.auction.id, 2);
}

TEST(NexmarkQueries, BidSelectionKeepsOnlyMatchingAuctions) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 1000);
  auto& bids = BuildBidStream(graph, events);
  auto& selected = BuildBidSelection(graph, bids, /*modulus=*/2);
  auto& sink = graph.Add<CallbackSink<Bid>>(
      [](const StreamElement<Bid>& e) {
        EXPECT_EQ(e.payload.auction % 2, 0);
      });
  selected.AddSubscriber(sink.input());
  Drain(graph);
}

// --- Output-shape contract for every registered query ----------------------
//
// Each workload query must (a) produce output at all on a default-ish feed
// and (b) keep the start-order invariant — its output watermark is
// monotone. A shape regression (wrong operator wiring, a stage dropping
// everything, disordered emission) fails loudly here.

/// Subscribes to `out`, records element starts, and asserts monotone
/// starts and non-emptiness after the drain.
template <typename T>
class ShapeProbe {
 public:
  ShapeProbe(QueryGraph& graph, Source<T>& out, std::string label)
      : label_(std::move(label)) {
    auto& sink = graph.Add<CallbackSink<T>>(
        [this](const StreamElement<T>& e) { starts_.push_back(e.start()); });
    out.AddSubscriber(sink.input());
  }

  void Check(bool expect_output = true) const {
    if (expect_output) {
      EXPECT_FALSE(starts_.empty()) << label_ << ": no output";
    }
    EXPECT_TRUE(std::is_sorted(starts_.begin(), starts_.end()))
        << label_ << ": output watermark regressed";
  }

 private:
  std::string label_;
  std::vector<Timestamp> starts_;
};

TEST(WorkloadShapes, EveryTrafficQueryEmitsMonotoneOutput) {
  // Column counts are part of the compiled shape: pin them so a silent
  // output-type change is a conscious one.
  static_assert(std::tuple_size_v<HovAverageSpeed::Output> == 2);
  static_assert(std::tuple_size_v<SegmentAverageSpeed::Output> == 2);

  TrafficOptions options;
  options.num_detectors = 6;
  options.num_lanes = 3;
  options.duration_ms = 3600'000;
  options.base_rate_per_s = 0.1;
  TrafficIncident incident;
  incident.begin = 600'000;
  incident.end = 1'800'000;
  incident.detector = 4;
  incident.speed_factor = 0.2;
  options.incidents = {incident};

  QueryGraph graph;
  auto& readings = AddTrafficSource(graph, options);
  ShapeProbe<TrafficReading> source_probe(graph, readings, "traffic-source");
  ShapeProbe<std::pair<std::int32_t, double>> hov_probe(
      graph, BuildHovAverageSpeedQuery(graph, readings, 600'000, 300'000),
      "hov-average");
  ShapeProbe<std::pair<std::int32_t, double>> segment_probe(
      graph,
      BuildSegmentAverageSpeedQuery(graph, readings, /*direction=*/0,
                                    300'000, 60'000),
      "segment-average");
  ShapeProbe<Sustained<std::int32_t>> congestion_probe(
      graph,
      BuildCongestionQuery(graph, readings, /*direction=*/0, 300'000,
                           60'000, /*speed_threshold=*/40.0,
                           /*min_duration=*/600'000),
      "congestion");
  Drain(graph);

  source_probe.Check();
  hov_probe.Check();
  segment_probe.Check();
  congestion_probe.Check();
}

TEST(WorkloadShapes, EveryNexmarkQueryEmitsMonotoneOutput) {
  static_assert(std::tuple_size_v<BidsPerAuction::Output> == 2);

  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 5000);
  ShapeProbe<NexmarkEvent> source_probe(graph, events, "nexmark-source");
  auto& bids = BuildBidStream(graph, events);
  ShapeProbe<Bid> bid_probe(graph, bids, "bid-stream");
  ShapeProbe<Auction> auction_probe(graph, BuildAuctionStream(graph, events),
                                    "auction-stream");
  ShapeProbe<Person> person_probe(graph, BuildPersonStream(graph, events),
                                  "person-stream");
  ShapeProbe<Bid> currency_probe(
      graph, BuildCurrencyConversion(graph, bids, 0.9), "currency");
  ShapeProbe<Bid> selection_probe(graph, BuildBidSelection(graph, bids, 2),
                                  "bid-selection");
  ShapeProbe<double> highest_probe(
      graph, BuildHighestBidQuery(graph, bids, 10'000), "highest-bid");
  ShapeProbe<std::pair<std::int64_t, std::uint64_t>> counts_probe(
      graph, BuildBidsPerAuctionQuery(graph, bids, 20'000, 20'000),
      "bids-per-auction");
  // The open-auction join needs [open, expires) validity on its build
  // side; replay the same generator's auctions with that validity.
  NexmarkOptions gen_options;
  gen_options.num_events = 5000;
  NexmarkGenerator generator(gen_options);
  AuctionValidity validity;
  std::vector<StreamElement<Auction>> open_auctions;
  while (auto e = generator.Next()) {
    if (e->kind == NexmarkKind::kAuction) {
      open_auctions.push_back(
          StreamElement<Auction>(e->auction, validity(e->auction)));
    }
  }
  auto& auction_source = graph.Add<VectorSource<Auction>>(
      std::move(open_auctions), "open-auctions");
  ShapeProbe<BidWithAuction> join_probe(
      graph, BuildOpenAuctionJoin(graph, bids, auction_source),
      "open-auction-join");
  Drain(graph);

  source_probe.Check();
  bid_probe.Check();
  auction_probe.Check();
  person_probe.Check();
  currency_probe.Check();
  selection_probe.Check();
  highest_probe.Check();
  counts_probe.Check();
  join_probe.Check();
}

}  // namespace
}  // namespace pipes::workloads
