// Tests for the workload query libraries: the traffic continuous queries
// (including the sustained-condition incident detector) and the NEXMark
// query fragments.

#include <map>
#include <optional>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/nexmark_queries.h"
#include "src/workloads/traffic_queries.h"

namespace pipes::workloads {
namespace {

void Drain(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 512);
  driver.RunToCompletion();
}

// --- SustainedConditionDetector ------------------------------------------------

struct KeyOfPair {
  int operator()(const std::pair<int, double>& p) const { return p.first; }
};
struct BelowTen {
  bool operator()(const std::pair<int, double>& p) const {
    return p.second < 10.0;
  }
};
using PairDetector =
    SustainedConditionDetector<std::pair<int, double>, KeyOfPair, BelowTen>;

std::vector<StreamElement<std::pair<int, double>>> Segments(
    std::initializer_list<std::tuple<int, double, Timestamp, Timestamp>>
        rows) {
  std::vector<StreamElement<std::pair<int, double>>> out;
  for (const auto& [key, value, start, end] : rows) {
    out.push_back(StreamElement<std::pair<int, double>>(
        std::make_pair(key, value), start, end));
  }
  return out;
}

TEST(SustainedCondition, FiresOncePerLongEnoughRun) {
  QueryGraph graph;
  // Key 1: below threshold on [0,30) contiguously -> alarm at >= 20.
  // Key 2: below only [0,10), gap, below [20,30) -> never 20 long.
  auto& source = graph.Add<VectorSource<std::pair<int, double>>>(Segments({
      {1, 5.0, 0, 10},
      {2, 5.0, 0, 10},
      {1, 7.0, 10, 20},
      {2, 50.0, 10, 20},  // condition broken for key 2
      {1, 6.0, 20, 30},
      {2, 5.0, 20, 30},
  }));
  auto& detector = graph.Add<PairDetector>(KeyOfPair{}, BelowTen{},
                                           /*min_duration=*/20);
  auto& sink = graph.Add<CollectorSink<Sustained<int>>>();
  source.AddSubscriber(detector.input());
  detector.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].payload.key, 1);
  EXPECT_EQ(sink.elements()[0].payload.since, 0);
  EXPECT_GE(sink.elements()[0].payload.duration, 20);
}

TEST(SustainedCondition, GapResetsRunAndNewRunCanFire) {
  QueryGraph graph;
  auto& source = graph.Add<VectorSource<std::pair<int, double>>>(Segments({
      {1, 5.0, 0, 10},
      {1, 5.0, 30, 45},  // gap: new run
      {1, 5.0, 45, 60},  // run [30,60) reaches 25 >= 20
  }));
  auto& detector = graph.Add<PairDetector>(KeyOfPair{}, BelowTen{}, 20);
  auto& sink = graph.Add<CollectorSink<Sustained<int>>>();
  source.AddSubscriber(detector.input());
  detector.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 1u);
  EXPECT_EQ(sink.elements()[0].payload.since, 30);
}

// --- Traffic query fragments ----------------------------------------------------

class TrafficQueriesTest : public ::testing::Test {
 protected:
  Source<TrafficReading>& MakeSource(QueryGraph& graph,
                                     TrafficOptions options) {
    auto generator = std::make_shared<TrafficGenerator>(std::move(options));
    return graph.Add<FunctionSource<TrafficReading>>(
        [generator]() -> std::optional<StreamElement<TrafficReading>> {
          auto reading = generator->Next();
          if (!reading.has_value()) return std::nullopt;
          return StreamElement<TrafficReading>::Point(*reading,
                                                      reading->timestamp);
        },
        "traffic");
  }

  TrafficOptions SmallOptions() {
    TrafficOptions options;
    options.num_detectors = 6;
    options.num_lanes = 3;
    options.duration_ms = 3600'000;  // one hour
    options.base_rate_per_s = 0.1;
    return options;
  }
};

TEST_F(TrafficQueriesTest, HovAverageGroupsByDirection) {
  QueryGraph graph;
  auto& source = MakeSource(graph, SmallOptions());
  auto& query = BuildHovAverageSpeedQuery(graph, source,
                                          /*range=*/600'000,
                                          /*slide=*/300'000);
  auto& sink = graph.Add<CollectorSink<std::pair<std::int32_t, double>>>();
  query.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  std::set<std::int32_t> directions;
  for (const auto& e : sink.elements()) {
    directions.insert(e.payload.first);
    // HOV speeds: base 100 + bonus 12 modulated by congestion and noise.
    EXPECT_GT(e.payload.second, 40.0);
    EXPECT_LT(e.payload.second, 180.0);
  }
  EXPECT_EQ(directions, (std::set<std::int32_t>{0, 1}));
}

TEST_F(TrafficQueriesTest, CongestionQueryFindsInjectedIncidentOnly) {
  TrafficOptions options = SmallOptions();
  TrafficIncident incident;
  incident.begin = 600'000;
  incident.end = 1'800'000;  // 20 minutes of jam
  incident.detector = 4;
  incident.direction = 0;
  incident.speed_factor = 0.2;
  incident.upstream_reach = 1;
  options.incidents = {incident};

  QueryGraph graph;
  auto& source = MakeSource(graph, options);
  auto& query = BuildCongestionQuery(graph, source, /*direction=*/0,
                                     /*avg_window=*/300'000,
                                     /*avg_slide=*/60'000,
                                     /*speed_threshold=*/40.0,
                                     /*min_duration=*/600'000);
  auto& sink = graph.Add<CollectorSink<Sustained<std::int32_t>>>();
  query.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    // Alarms only at the incident's detectors (4 and its neighbor 3) and
    // roughly within the incident window.
    EXPECT_GE(e.payload.key, 3);
    EXPECT_LE(e.payload.key, 4);
    EXPECT_GE(e.payload.since, incident.begin - 300'000);
    EXPECT_LE(e.payload.since + e.payload.duration,
              incident.end + 600'000);
  }
}

// --- NEXMark query fragments ------------------------------------------------------

Source<NexmarkEvent>& MakeNexmarkSource(QueryGraph& graph,
                                        std::size_t num_events) {
  NexmarkOptions options;
  options.num_events = num_events;
  auto generator = std::make_shared<NexmarkGenerator>(options);
  return graph.Add<FunctionSource<NexmarkEvent>>(
      [generator]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto event = generator->Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*event), t);
      },
      "nexmark");
}

TEST(NexmarkQueries, SplitStreamsPartitionTheEvents) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 1000);
  auto& bids = BuildBidStream(graph, events);
  auto& auctions = BuildAuctionStream(graph, events);
  auto& persons = BuildPersonStream(graph, events);
  auto& bid_sink = graph.Add<CountingSink<Bid>>();
  auto& auction_sink = graph.Add<CountingSink<Auction>>();
  auto& person_sink = graph.Add<CountingSink<Person>>();
  bids.AddSubscriber(bid_sink.input());
  auctions.AddSubscriber(auction_sink.input());
  persons.AddSubscriber(person_sink.input());
  Drain(graph);

  EXPECT_EQ(bid_sink.count() + auction_sink.count() + person_sink.count(),
            1000u);
  EXPECT_EQ(person_sink.count(), 20u);    // 1 in 50
  EXPECT_EQ(auction_sink.count(), 60u);   // 3 in 50
}

TEST(NexmarkQueries, CurrencyConversionScalesPrices) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 500);
  auto& bids = BuildBidStream(graph, events);
  auto& euros = BuildCurrencyConversion(graph, bids, 0.5);
  std::vector<double> original;
  std::vector<double> converted;
  auto& bid_sink = graph.Add<CallbackSink<Bid>>(
      [&](const StreamElement<Bid>& e) {
        original.push_back(e.payload.price);
      });
  auto& euro_sink = graph.Add<CallbackSink<Bid>>(
      [&](const StreamElement<Bid>& e) {
        converted.push_back(e.payload.price);
      });
  bids.AddSubscriber(bid_sink.input());
  euros.AddSubscriber(euro_sink.input());
  Drain(graph);

  ASSERT_EQ(original.size(), converted.size());
  ASSERT_FALSE(original.empty());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(converted[i], original[i] * 0.5);
  }
}

TEST(NexmarkQueries, HighestBidTumblesAndNeverDecreasesWithinWindow) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 5000);
  auto& bids = BuildBidStream(graph, events);
  auto& highest = BuildHighestBidQuery(graph, bids, /*period=*/10'000);
  auto& sink = graph.Add<CollectorSink<double>>();
  highest.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_FALSE(sink.elements().empty());
  for (const auto& e : sink.elements()) {
    // Tumbling windows: results live on period-aligned segments.
    EXPECT_EQ(e.start() % 10'000, 0);
    EXPECT_GT(e.payload, 0.0);
  }
}

TEST(NexmarkQueries, BidsPerAuctionCountsMatchManualCount) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 2000);
  auto& bids = BuildBidStream(graph, events);
  auto& counts = BuildBidsPerAuctionQuery(graph, bids, /*range=*/20'000,
                                          /*slide=*/20'000);
  auto& count_sink =
      graph.Add<CollectorSink<std::pair<std::int64_t, std::uint64_t>>>();
  std::map<std::pair<Timestamp, std::int64_t>, std::uint64_t> manual;
  auto& manual_sink = graph.Add<CallbackSink<Bid>>(
      [&](const StreamElement<Bid>& e) {
        // Tumbling bucket of this bid (aligned like the slide window).
        const Timestamp bucket = ((e.start() / 20'000) + 1) * 20'000;
        ++manual[{bucket, e.payload.auction}];
      });
  counts.AddSubscriber(count_sink.input());
  bids.AddSubscriber(manual_sink.input());
  Drain(graph);

  ASSERT_FALSE(count_sink.elements().empty());
  for (const auto& e : count_sink.elements()) {
    const auto key = std::make_pair(e.start(), e.payload.first);
    auto it = manual.find(key);
    // Every reported count matches the manual tumbling-bucket count.
    if (e.start() % 20'000 == 0 && it != manual.end()) {
      EXPECT_EQ(e.payload.second, it->second)
          << "auction " << e.payload.first << " at " << e.start();
    }
  }
}

TEST(NexmarkQueries, OpenAuctionJoinMatchesOnlyOpenAuctions) {
  QueryGraph graph;
  // Auction 1 open [0, 100); auction 2 open [50, 200).
  Auction a1;
  a1.id = 1;
  a1.open_time = 0;
  a1.expires = 100;
  Auction a2;
  a2.id = 2;
  a2.open_time = 50;
  a2.expires = 200;
  AuctionValidity validity;
  std::vector<StreamElement<Auction>> auctions = {
      StreamElement<Auction>(a1, validity(a1)),
      StreamElement<Auction>(a2, validity(a2))};
  auto& auction_source = graph.Add<VectorSource<Auction>>(auctions);

  auto make_bid = [](std::int64_t auction, Timestamp t) {
    Bid b;
    b.auction = auction;
    b.time = t;
    b.price = 10;
    return StreamElement<Bid>::Point(b, t);
  };
  std::vector<StreamElement<Bid>> bids = {
      make_bid(1, 10),    // auction 1 open -> match
      make_bid(2, 20),    // auction 2 not open yet -> no match
      make_bid(1, 150),   // auction 1 already closed -> no match
      make_bid(2, 150),   // auction 2 open -> match
  };
  auto& bid_source = graph.Add<VectorSource<Bid>>(bids);

  auto& join = BuildOpenAuctionJoin(graph, bid_source, auction_source);
  auto& sink = graph.Add<CollectorSink<BidWithAuction>>();
  join.AddSubscriber(sink.input());
  Drain(graph);

  ASSERT_EQ(sink.elements().size(), 2u);
  EXPECT_EQ(sink.elements()[0].payload.bid.time, 10);
  EXPECT_EQ(sink.elements()[0].payload.auction.id, 1);
  EXPECT_EQ(sink.elements()[1].payload.bid.time, 150);
  EXPECT_EQ(sink.elements()[1].payload.auction.id, 2);
}

TEST(NexmarkQueries, BidSelectionKeepsOnlyMatchingAuctions) {
  QueryGraph graph;
  auto& events = MakeNexmarkSource(graph, 1000);
  auto& bids = BuildBidStream(graph, events);
  auto& selected = BuildBidSelection(graph, bids, /*modulus=*/2);
  auto& sink = graph.Add<CallbackSink<Bid>>(
      [](const StreamElement<Bid>& e) {
        EXPECT_EQ(e.payload.auction % 2, 0);
      });
  selected.AddSubscriber(sink.input());
  Drain(graph);
}

}  // namespace
}  // namespace pipes::workloads
