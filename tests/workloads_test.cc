// Tests for the demo workload generators: FSP-style traffic and NEXMark.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/workloads/nexmark.h"
#include "src/workloads/traffic.h"

namespace pipes::workloads {
namespace {

TrafficOptions SmallTraffic() {
  TrafficOptions options;
  options.num_detectors = 4;
  options.num_lanes = 3;
  options.duration_ms = 60 * 1000;  // one minute
  options.base_rate_per_s = 2.0;
  return options;
}

TEST(Traffic, ProducesOrderedReadingsWithinBounds) {
  TrafficGenerator gen(SmallTraffic());
  Timestamp last = 0;
  int count = 0;
  while (auto reading = gen.Next()) {
    ++count;
    EXPECT_GE(reading->timestamp, last);
    last = reading->timestamp;
    EXPECT_GE(reading->detector, 0);
    EXPECT_LT(reading->detector, 4);
    EXPECT_GE(reading->lane, 0);
    EXPECT_LT(reading->lane, 3);
    EXPECT_GE(reading->direction, 0);
    EXPECT_LE(reading->direction, 1);
    EXPECT_LT(reading->timestamp, 60 * 1000);
    EXPECT_GT(reading->speed_kmh, 0);
    EXPECT_GT(reading->length_m, 3.0);
  }
  // 4 detectors x 3 lanes x 2 directions x ~2/s x 60 s ~= 2880.
  EXPECT_GT(count, 1000);
  EXPECT_LT(count, 10000);
}

TEST(Traffic, DeterministicForSameSeed) {
  TrafficGenerator a(SmallTraffic());
  TrafficGenerator b(SmallTraffic());
  for (int i = 0; i < 100; ++i) {
    auto ra = a.Next();
    auto rb = b.Next();
    ASSERT_TRUE(ra.has_value() && rb.has_value());
    EXPECT_EQ(*ra, *rb);
  }
}

TEST(Traffic, RushHourRaisesRate) {
  TrafficOptions options = SmallTraffic();
  options.duration_ms = 24ll * 3600 * 1000;
  TrafficGenerator gen(options);
  const Timestamp hour = 3600 * 1000;
  // 8:00 is a rush peak; 3:00 is off-peak.
  EXPECT_GT(gen.RateMultiplier(8 * hour), 2.5);
  EXPECT_NEAR(gen.RateMultiplier(3 * hour), 1.0, 0.1);
}

TEST(Traffic, IncidentCollapsesSpeedUpstream) {
  TrafficOptions options = SmallTraffic();
  TrafficIncident incident;
  incident.begin = 10000;
  incident.end = 50000;
  incident.detector = 3;
  incident.direction = 0;
  incident.speed_factor = 0.2;
  incident.upstream_reach = 2;
  options.incidents = {incident};
  TrafficGenerator gen(options);

  EXPECT_TRUE(gen.IncidentActive(3, 0, 20000));
  EXPECT_TRUE(gen.IncidentActive(1, 0, 20000));   // upstream within reach
  EXPECT_FALSE(gen.IncidentActive(0, 0, 20000));  // beyond reach
  EXPECT_FALSE(gen.IncidentActive(3, 1, 20000));  // other direction
  EXPECT_FALSE(gen.IncidentActive(3, 0, 60000));  // after clearance

  // Measured speeds at affected detectors during the incident drop well
  // below the unaffected ones.
  std::map<bool, std::pair<double, int>> speed_sum;  // affected -> (sum, n)
  while (auto r = gen.Next()) {
    if (r->direction != 0) continue;
    const bool affected = gen.IncidentActive(r->detector, 0, r->timestamp);
    speed_sum[affected].first += r->speed_kmh;
    speed_sum[affected].second += 1;
  }
  ASSERT_GT(speed_sum[true].second, 10);
  ASSERT_GT(speed_sum[false].second, 10);
  const double affected_avg =
      speed_sum[true].first / speed_sum[true].second;
  const double normal_avg =
      speed_sum[false].first / speed_sum[false].second;
  EXPECT_LT(affected_avg, 0.5 * normal_avg);
}

TEST(Nexmark, EventMixMatchesBenchmarkRatios) {
  NexmarkOptions options;
  options.num_events = 5000;
  NexmarkGenerator gen(options);
  std::map<NexmarkKind, int> counts;
  Timestamp last = 0;
  while (auto event = gen.Next()) {
    ++counts[event->kind];
    EXPECT_GE(event->time, last);
    last = event->time;
  }
  EXPECT_EQ(counts[NexmarkKind::kPerson], 100);
  EXPECT_EQ(counts[NexmarkKind::kAuction], 300);
  EXPECT_EQ(counts[NexmarkKind::kBid], 4600);
}

TEST(Nexmark, BidsReferenceExistingEntitiesAndRaisePrices) {
  NexmarkOptions options;
  options.num_events = 2000;
  NexmarkGenerator gen(options);
  std::map<std::int64_t, double> last_price;
  while (auto event = gen.Next()) {
    if (event->kind != NexmarkKind::kBid) continue;
    const Bid& bid = event->bid;
    EXPECT_GE(bid.auction, 0);
    EXPECT_LT(bid.auction, gen.auctions_generated());
    EXPECT_GE(bid.bidder, 0);
    EXPECT_LT(bid.bidder, gen.persons_generated());
    auto it = last_price.find(bid.auction);
    if (it != last_price.end()) {
      EXPECT_GT(bid.price, it->second);  // prices only rise
    }
    last_price[bid.auction] = bid.price;
  }
}

TEST(Nexmark, SkewPrefersRecentAuctions) {
  NexmarkOptions options;
  options.num_events = 20000;
  options.auction_zipf_theta = 1.0;
  NexmarkGenerator gen(options);
  std::int64_t recent_hits = 0;
  std::int64_t total = 0;
  std::vector<NexmarkEvent> events;
  while (auto event = gen.Next()) events.push_back(*event);
  std::int64_t auctions_so_far = 1;
  for (const auto& event : events) {
    if (event.kind == NexmarkKind::kAuction) {
      ++auctions_so_far;
    } else if (event.kind == NexmarkKind::kBid) {
      ++total;
      // "Recent" = newest 20% of auctions at bid time.
      if (event.bid.auction >= auctions_so_far * 4 / 5) ++recent_hits;
    }
  }
  // Under uniform choice the newest 20% would receive ~20% of the bids;
  // skew must push this way up.
  EXPECT_GT(static_cast<double>(recent_hits) / static_cast<double>(total),
            0.4);
}

TEST(Nexmark, DeterministicForSameSeed) {
  NexmarkOptions options;
  options.num_events = 500;
  NexmarkGenerator a(options);
  NexmarkGenerator b(options);
  while (true) {
    auto ea = a.Next();
    auto eb = b.Next();
    ASSERT_EQ(ea.has_value(), eb.has_value());
    if (!ea.has_value()) break;
    EXPECT_EQ(ea->kind, eb->kind);
    EXPECT_EQ(ea->time, eb->time);
    if (ea->kind == NexmarkKind::kBid) {
      EXPECT_EQ(ea->bid, eb->bid);
    }
  }
}

}  // namespace
}  // namespace pipes::workloads
